//! The execution engine: model threads as step-wise coroutines.
//!
//! Each model thread is a real OS thread, but only one runs at a time: every
//! instrumented shared-memory access ([`crate::Atomic`] operations,
//! [`crate::Arena::alloc`]) parks the thread at a *yield point* and waits for
//! the controller to grant it the next step. One scheduling decision
//! therefore equals "this thread performs its next shared-memory operation
//! (and whatever thread-local code follows it)" — the granularity at which
//! interleavings of CAS loops differ.
//!
//! Thread-local code before a thread's first yield point runs unscheduled;
//! by construction it cannot touch shared state (all sharing goes through
//! the instrumented cells), so it cannot introduce nondeterminism.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Maximum model threads per execution. Exploration cost is exponential in
/// thread count; this is a sanity rail, not a tuning knob.
pub const MAX_THREADS: usize = 8;

/// The memory model an execution runs under.
///
/// Under [`MemoryMode::Sc`] (the default) every instrumented operation takes
/// effect at its scheduled step — sequential consistency, the model PR 2
/// shipped. Under [`MemoryMode::StoreBuffer`] each thread owns a FIFO store
/// buffer in the style of TSO/PSO hardware: `Relaxed` and `Release` stores
/// (made through the `_ord` operations of [`crate::Atomic`]) are *buffered*
/// at their step and become globally visible only when a separate **flush**
/// step commits them. Flushes are ordinary scheduling decisions, so the
/// explorer enumerates exactly which reorderings other threads can observe:
///
/// * per-location coherence always holds (stores to one location commit in
///   program order);
/// * a `Relaxed` store may commit *before* an older buffered store to a
///   different location — the store–store reordering that breaks
///   publish-before-initialize bugs loose;
/// * a `Release` store commits only once the issuing thread's buffer holds
///   nothing older, so everything written before it is visible first;
/// * `SeqCst` stores, read-modify-writes with a `Release`-or-stronger
///   success ordering, and `Release`-or-stronger fences drain the issuing
///   thread's buffer at their step (hardware RMWs and SC fences do not
///   overtake the store buffer), while a `Relaxed`/`Acquire` RMW leaves
///   older stores to *other* locations buffered;
/// * loads forward from the issuing thread's own newest buffered store to
///   that location (store-to-load forwarding), and other threads never see
///   buffered values.
///
/// Load–load reordering is **not** modeled by [`MemoryMode::StoreBuffer`]
/// (see DESIGN.md §6b): that mode catches the store-side ordering bugs
/// (`Relaxed` publication), not missing-`Acquire` loads.
///
/// [`MemoryMode::Relaxed`] closes that gap with an ARM/POWER-class model: it
/// keeps the TSO/PSO store buffers above and *additionally* gives every
/// location a bounded history of superseded values (`window` deep) from
/// which a `Relaxed` load may read — the operational analogue of an
/// invalidate queue that has not yet been processed. Each stale read is its
/// own explorer-chosen decision (ids ≥ [`REORDER_BASE`]), so schedules stay
/// deterministic and replayable:
///
/// * per-location coherence still holds: each thread tracks a monotone
///   *floor* per location (the newest version it has observed) and never
///   reads older than its floor — reads of one location never go backwards,
///   and a thread always sees its own committed stores;
/// * a `Relaxed` load may return any value between its floor and the
///   current value, at most `window` versions old — modeling the load–load
///   and load–store reorderings TSO forbids;
/// * an `Acquire` (or `SeqCst`) load, `Acquire`-class fence, or
///   `Acquire`-class RMW outcome *drains the stale set*: every location's
///   floor rises to its current version, so nothing older is observable
///   afterwards — the invalidate-queue drain a real acquire performs;
/// * read-modify-writes always act on the latest value (hardware RMWs are
///   coherent), and store-to-load forwarding still wins over staleness;
/// * `Release` stores keep their store-buffer semantics (commit only from
///   the front of the buffer), so everything written before them is
///   globally visible first.
///
/// The acquire model is deliberately a *strengthening*: an `Acquire` load
/// reads the newest committed value rather than merely a
/// release-synchronized one, so some real ARM outcomes are not explored
/// (IRIW / multi-copy-atomicity is out of scope; see DESIGN.md §6b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryMode {
    /// Sequentially consistent: every step takes effect immediately.
    Sc,
    /// TSO/PSO-style per-thread store buffers with explicit flush steps.
    StoreBuffer {
        /// Maximum buffered stores per thread; a store issued against a full
        /// buffer commits the oldest entry as part of its own step.
        bound: usize,
    },
    /// ARM/POWER-class: store buffers *plus* stale `Relaxed` loads drawn
    /// from a bounded per-location version history, each an explicit
    /// reorder decision (ids ≥ [`REORDER_BASE`]).
    Relaxed {
        /// Store-buffer depth, as in [`MemoryMode::StoreBuffer`].
        bound: usize,
        /// How many superseded values per location stay readable. `0`
        /// degenerates to [`MemoryMode::StoreBuffer`] behavior.
        window: usize,
    },
}

impl MemoryMode {
    /// The default store-buffer depth used by
    /// [`crate::Config::store_buffer`].
    pub const DEFAULT_BOUND: usize = 4;
    /// The default stale-value window used by [`crate::Config::relaxed`]:
    /// two versions deep, enough to read past a full seqlock-style
    /// odd/even version bump.
    pub const DEFAULT_WINDOW: usize = 2;
}

/// Scheduling-decision ids at or above this value denote *flush* steps, not
/// thread steps: `FLUSH_BASE + tid * FLUSH_STRIDE + loc` commits thread
/// `tid`'s oldest buffered store to location `loc`. Thread ids stay below
/// [`MAX_THREADS`], so the two ranges never collide and schedule strings
/// remain plain dot-joined numbers that replay byte-for-byte.
pub const FLUSH_BASE: usize = 100;
/// Stride between threads in the flush-id encoding; also the per-execution
/// cap on distinct buffered locations.
pub const FLUSH_STRIDE: usize = 100;

fn encode_flush(tid: usize, loc: usize) -> usize {
    assert!(
        loc < FLUSH_STRIDE,
        "model uses more than {FLUSH_STRIDE} buffered atomic locations"
    );
    FLUSH_BASE + tid * FLUSH_STRIDE + loc
}

fn decode_flush(id: usize) -> (usize, usize) {
    debug_assert!((FLUSH_BASE..REORDER_BASE).contains(&id));
    (
        (id - FLUSH_BASE) / FLUSH_STRIDE,
        (id - FLUSH_BASE) % FLUSH_STRIDE,
    )
}

/// Scheduling-decision ids at or above this value denote *stale-read* steps
/// under [`MemoryMode::Relaxed`]: `REORDER_BASE + tid * REORDER_STRIDE +
/// age` grants thread `tid` its pending `Relaxed` load, reading the value
/// `age` versions older than the location's current one (`age` ≥ 1; the
/// plain thread id remains the fresh-read decision). Flush ids top out at
/// `FLUSH_BASE + MAX_THREADS * FLUSH_STRIDE`, far below this base, so all
/// three id ranges stay disjoint and schedule strings remain plain
/// dot-joined numbers.
pub const REORDER_BASE: usize = 10_000;
/// Stride between threads in the reorder-id encoding; also the cap on the
/// stale-value window.
pub const REORDER_STRIDE: usize = 100;

fn encode_reorder(tid: usize, age: usize) -> usize {
    debug_assert!((1..REORDER_STRIDE).contains(&age));
    REORDER_BASE + tid * REORDER_STRIDE + age
}

fn decode_reorder(id: usize) -> (usize, usize) {
    debug_assert!(id >= REORDER_BASE);
    (
        (id - REORDER_BASE) / REORDER_STRIDE,
        (id - REORDER_BASE) % REORDER_STRIDE,
    )
}

/// The model thread a decision id grants a step to: the id itself for a
/// thread step, the issuing thread for a stale-read (reorder) decision, and
/// `None` for a flush (performed by the controller). Used by the CHESS
/// preemption accounting: continuing the last-run thread via a stale read
/// is not a preemption, while a flush taken where that thread could have
/// continued is.
pub(crate) fn decision_thread(id: usize) -> Option<usize> {
    if id < FLUSH_BASE {
        Some(id)
    } else if id >= REORDER_BASE {
        Some(decode_reorder(id).0)
    } else {
        None
    }
}

/// Distinguishes executions so an [`crate::Atomic`]'s cached location id is
/// never reused across runs.
static RUN_COUNTER: AtomicU64 = AtomicU64::new(1);

/// One store sitting in a thread's buffer: enough metadata to decide when it
/// may commit, plus the type-erased commit action (the typed value lives in
/// the owning `Atomic`'s own pending queue).
struct BufferedStore {
    loc: usize,
    /// `Release`-or-stronger: may only commit from the front of the buffer.
    release: bool,
    commit: Box<dyn FnOnce() + Send>,
}

struct WeakState {
    bound: usize,
    /// Stale-value window depth; `0` under [`MemoryMode::StoreBuffer`]
    /// (no load reordering — exactly the pre-Relaxed behavior).
    window: usize,
    next_loc: usize,
    pending: Vec<VecDeque<BufferedStore>>,
    /// Per location: how many stores have committed to it this execution
    /// (the location's current *version*; the initial value is version 0).
    latest: Vec<u64>,
    /// Per thread, per location: the newest version that thread has
    /// observed — the coherence *floor* below which it may not read.
    /// Monotone; raised by fresh reads, own commits, and acquire drains.
    floors: Vec<Vec<u64>>,
    /// Per thread: the location of a `Relaxed` load the thread is parked
    /// on, eligible for stale-read (reorder) decisions.
    pending_load: Vec<Option<usize>>,
}

/// One execution of a concurrency scenario: the model threads to run and an
/// optional single-threaded post-condition check.
///
/// Built fresh by the scenario factory for every explored interleaving, so
/// each execution starts from identical initial state.
#[derive(Default)]
pub struct Plan {
    pub(crate) threads: Vec<Box<dyn FnOnce() + Send>>,
    pub(crate) check: Option<Box<dyn FnOnce()>>,
}

impl Plan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a model thread. Threads get ids `0, 1, ...` in registration
    /// order; those ids appear in [`crate::Schedule`] strings.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_THREADS`] threads are registered.
    #[must_use]
    pub fn thread(mut self, body: impl FnOnce() + Send + 'static) -> Self {
        assert!(
            self.threads.len() < MAX_THREADS,
            "at most {MAX_THREADS} model threads per plan"
        );
        self.threads.push(Box::new(body));
        self
    }

    /// Registers a post-condition: runs single-threaded on the controller
    /// after every model thread has finished. Panic here fails the execution
    /// exactly like a panic inside a model thread.
    #[must_use]
    pub fn check(mut self, check: impl FnOnce() + 'static) -> Self {
        self.check = Some(Box::new(check));
        self
    }
}

/// How one execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Outcome {
    /// All threads completed and the post-check passed.
    Ok,
    /// A model thread or the post-check panicked.
    Failed(String),
    /// All unfinished threads were spin-parked with nobody left to make
    /// progress: a livelock under this schedule.
    Livelock,
    /// The per-execution step budget ran out — an unfair schedule (e.g. a
    /// reader spinning against a paused writer); pruned, not a failure.
    Pruned,
}

/// The result of running one interleaving.
pub(crate) struct RunResult {
    pub outcome: Outcome,
    /// One entry per scheduling decision, in order. The explorer rebuilds
    /// schedules from its own DFS stack; this trace exists for the runtime's
    /// tests and debugging.
    #[cfg_attr(not(test), allow(dead_code))]
    pub decisions: Vec<Decision>,
}

/// One scheduling decision: which thread stepped, out of which enabled set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Decision {
    pub chosen: usize,
    pub enabled: Vec<usize>,
}

/// What the pending operation at a yield point does to shared state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum StepKind {
    /// Pure observation (`load`): cannot unblock a spinning thread.
    Read,
    /// Mutation (`store`, `swap`, CAS, `fetch_add`, arena alloc).
    Write,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// Spawned; running toward its first yield point.
    Launching,
    /// Parked at a yield point, eligible for the next grant.
    Parked(StepKind),
    /// Parked after [`spin_hint`]: disabled until another thread performs a
    /// *write* step. Under the sequentially-consistent model, nothing a
    /// spinner re-reads can change until someone writes, so read steps
    /// leave spinners disabled — otherwise two spinning readers could
    /// re-enable each other with pure loads forever, making the schedule
    /// tree infinite.
    Spinning,
    /// Granted; executing its step and trailing local code.
    Running,
    /// Returned or unwound.
    Done,
}

struct RtState {
    status: Vec<Status>,
    /// The thread currently allowed to run, if any.
    granted: Option<usize>,
    /// When the grant came from a reorder decision: how many versions stale
    /// the granted thread's pending `Relaxed` load must read. Consumed by
    /// the thread as it wakes.
    granted_stale: Option<usize>,
    /// Set when an execution must unwind early (panic, livelock, prune).
    abort: bool,
    /// First real panic message observed, if any.
    failure: Option<String>,
}

struct Runtime {
    state: Mutex<RtState>,
    cv: Condvar,
    /// Store-buffer bookkeeping; `None` under [`MemoryMode::Sc`].
    weak: Option<Mutex<WeakState>>,
    /// Unique per execution; guards cached location ids in `Atomic`s.
    run_id: u64,
}

/// Panic payload used to unwind model threads when an execution aborts.
/// Filtered out of panic reporting; never treated as a model failure.
struct AbortToken;

thread_local! {
    /// `(runtime, thread id)` of the model thread running on this OS thread.
    static CURRENT: RefCell<Option<(Arc<Runtime>, usize)>> = const { RefCell::new(None) };
}

/// Ignore mutex poisoning: the runtime's own invariants never break on a
/// model-thread panic (we abort and unwind deliberately).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Installs (once per process) a panic hook that silences the expected
/// panics of exploration — [`AbortToken`] unwinds and model-thread failures,
/// which the explorer reports itself with a schedule attached — and forwards
/// everything else to the previous hook.
fn install_panic_filter() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let in_model = CURRENT
                .try_with(|c| c.try_borrow().map(|b| b.is_some()).unwrap_or(true))
                .unwrap_or(false);
            if !in_model && info.payload().downcast_ref::<AbortToken>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Read yield point: called by instrumented loads *before* they read shared
/// state. No-op outside a model execution.
pub(crate) fn step_read() {
    if let Some((rt, tid)) = current() {
        rt.arrive(tid, Some(StepKind::Read));
    }
}

/// Write yield point: called by instrumented mutations (`store`, `swap`,
/// CAS, `fetch_add`, arena allocation) *before* they touch shared state.
/// No-op outside a model execution.
pub(crate) fn step_write() {
    if let Some((rt, tid)) = current() {
        rt.arrive(tid, Some(StepKind::Write));
    }
}

/// Declares that this thread cannot make progress until *another* thread
/// writes shared state — the model analogue of `std::hint::spin_loop()` in a
/// retry loop that waits out a concurrent in-flight operation (e.g. an NBW
/// reader seeing an odd version).
///
/// Under exploration the thread is disabled until some other thread performs
/// a write step, which (a) keeps the schedule tree finite — read steps can't
/// wake a spinner, so spinners can't ping-pong each other — and (b) lets the
/// explorer report a *livelock* when every unfinished thread is spin-parked
/// with no writer left to wake it. No-op outside a model execution.
pub fn spin_hint() {
    if let Some((rt, tid)) = current() {
        rt.arrive(tid, None);
    }
}

fn current() -> Option<(Arc<Runtime>, usize)> {
    CURRENT
        .try_with(|c| c.try_borrow().ok().and_then(|b| b.clone()))
        .ok()
        .flatten()
}

impl Runtime {
    fn new(threads: usize, memory: MemoryMode) -> Self {
        let weak_state = |bound: usize, window: usize| {
            assert!(
                window < REORDER_STRIDE,
                "stale-value window must stay below {REORDER_STRIDE}"
            );
            Mutex::new(WeakState {
                bound: bound.max(1),
                window,
                next_loc: 0,
                pending: (0..threads).map(|_| VecDeque::new()).collect(),
                latest: Vec::new(),
                floors: (0..threads).map(|_| Vec::new()).collect(),
                pending_load: vec![None; threads],
            })
        };
        Self {
            state: Mutex::new(RtState {
                status: vec![Status::Launching; threads],
                granted: None,
                granted_stale: None,
                abort: false,
                failure: None,
            }),
            cv: Condvar::new(),
            weak: match memory {
                MemoryMode::Sc => None,
                MemoryMode::StoreBuffer { bound } => Some(weak_state(bound, 0)),
                MemoryMode::Relaxed { bound, window } => Some(weak_state(bound, window)),
            },
            run_id: RUN_COUNTER.fetch_add(1, AtomicOrdering::Relaxed),
        }
    }

    /// The flush decisions currently available: for each thread and each
    /// location, the oldest buffered store that per-location FIFO and the
    /// release-from-front rule allow to commit. Sorted, so the enabled set
    /// handed to the scheduler is deterministic.
    fn flushable(&self) -> Vec<usize> {
        let Some(weak) = &self.weak else {
            return Vec::new();
        };
        let weak = lock(weak);
        let mut out = Vec::new();
        for (tid, queue) in weak.pending.iter().enumerate() {
            let mut seen = Vec::new();
            for (i, entry) in queue.iter().enumerate() {
                let blocked = seen.contains(&entry.loc) || (entry.release && i != 0);
                if !blocked {
                    out.push(encode_flush(tid, entry.loc));
                }
                seen.push(entry.loc);
            }
        }
        out.sort_unstable();
        out
    }

    /// The stale-read decisions currently available: for each thread parked
    /// on a `Relaxed` load, one decision per readable older version of the
    /// loaded location — ages `1..=k` where `k` is bounded by the window
    /// depth and the thread's coherence floor. Sorted, like [`flushable`].
    ///
    /// [`flushable`]: Runtime::flushable
    fn reorderable(&self) -> Vec<usize> {
        let Some(weak) = &self.weak else {
            return Vec::new();
        };
        let weak = lock(weak);
        if weak.window == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (tid, pending) in weak.pending_load.iter().enumerate() {
            let Some(loc) = *pending else { continue };
            let latest = weak.latest[loc];
            let oldest = weak.floors[tid][loc].max(latest.saturating_sub(weak.window as u64));
            for age in 1..=(latest - oldest) as usize {
                out.push(encode_reorder(tid, age));
            }
        }
        out.sort_unstable();
        out
    }

    /// Records that a store just became globally visible at `loc`, issued by
    /// `tid`: the location's version advances and the writer's floor rises
    /// to it (a thread always reads its own committed stores). No-op when
    /// the mode keeps no version history.
    fn committed(&self, tid: usize, loc: usize) {
        let Some(weak) = &self.weak else { return };
        let mut weak = lock(weak);
        if weak.window == 0 {
            return;
        }
        weak.latest[loc] += 1;
        let v = weak.latest[loc];
        weak.floors[tid][loc] = v;
    }

    /// Raises `tid`'s floor at `loc` to the current version: the thread just
    /// observed the latest value (fresh read, RMW, or CAS failure load).
    fn observed_latest(&self, tid: usize, loc: usize) {
        let Some(weak) = &self.weak else { return };
        let mut weak = lock(weak);
        if weak.window == 0 {
            return;
        }
        let v = weak.latest[loc];
        let floor = &mut weak.floors[tid][loc];
        *floor = (*floor).max(v);
    }

    /// Acquire drain: raises every floor of `tid` to the current version of
    /// its location — the model's invalidate-queue flush. Nothing stale is
    /// observable by `tid` afterwards.
    fn drain_stale(&self, tid: usize) {
        let Some(weak) = &self.weak else { return };
        let mut weak = lock(weak);
        if weak.window == 0 {
            return;
        }
        let latest = std::mem::take(&mut weak.latest);
        for (floor, v) in weak.floors[tid].iter_mut().zip(latest.iter()) {
            *floor = (*floor).max(*v);
        }
        weak.latest = latest;
    }

    /// Commits the buffered store named by an encoded flush decision: the
    /// oldest entry of that thread for that location. Performed by the
    /// controller between grants; wakes spin-parked threads, since global
    /// memory just changed.
    fn perform_flush(&self, id: usize) {
        let (tid, loc) = decode_flush(id);
        let commit = {
            let weak = self.weak.as_ref().expect("flush decision under SC mode");
            let mut weak = lock(weak);
            let queue = &mut weak.pending[tid];
            let pos = queue
                .iter()
                .position(|e| e.loc == loc)
                .unwrap_or_else(|| panic!("no buffered store for flush decision {id}"));
            queue.remove(pos).expect("position just found").commit
        };
        commit();
        self.committed(tid, loc);
        let mut st = lock(&self.state);
        for s in st.status.iter_mut() {
            if *s == Status::Spinning {
                *s = Status::Parked(StepKind::Read);
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Commits every buffered store of `tid` in program order. Used by
    /// `SeqCst`/`Release`-class operations (which do not overtake the store
    /// buffer) and when a thread finishes (joining a thread synchronizes
    /// with everything it did).
    fn drain_thread(&self, tid: usize) -> usize {
        let Some(weak) = &self.weak else {
            return 0;
        };
        let mut drained = 0;
        loop {
            let entry = {
                let mut weak = lock(weak);
                weak.pending[tid].pop_front()
            };
            match entry {
                Some(e) => {
                    let loc = e.loc;
                    (e.commit)();
                    self.committed(tid, loc);
                    drained += 1;
                }
                None => return drained,
            }
        }
    }

    /// Commits `tid`'s buffered stores *to one location* in program order —
    /// per-location coherence for a `Relaxed`/`Acquire` RMW, which acts on
    /// coherent memory without draining stores to other locations.
    fn drain_location(&self, tid: usize, loc: usize) {
        let Some(weak) = &self.weak else {
            return;
        };
        loop {
            let entry = {
                let mut weak = lock(weak);
                let queue = &mut weak.pending[tid];
                match queue.iter().position(|e| e.loc == loc) {
                    Some(pos) => queue.remove(pos),
                    None => None,
                }
            };
            match entry {
                Some(e) => {
                    (e.commit)();
                    self.committed(tid, loc);
                }
                None => return,
            }
        }
    }

    /// Buffers one store of `tid`, committing the oldest entry first if the
    /// buffer is at its bound (so a runaway writer cannot grow state
    /// unboundedly — mirroring a finite hardware buffer).
    fn buffer_store(
        &self,
        tid: usize,
        loc: usize,
        release: bool,
        commit: Box<dyn FnOnce() + Send>,
    ) {
        let weak = self.weak.as_ref().expect("buffer_store under SC mode");
        loop {
            let evicted = {
                let mut weak = lock(weak);
                if weak.pending[tid].len() < weak.bound {
                    weak.pending[tid].push_back(BufferedStore {
                        loc,
                        release,
                        commit,
                    });
                    return;
                }
                weak.pending[tid].pop_front().expect("bound is at least 1")
            };
            let evicted_loc = evicted.loc;
            (evicted.commit)();
            self.committed(tid, evicted_loc);
        }
    }

    /// Commits every thread's remaining buffered stores, program order per
    /// thread, ascending tid. Used only past the decision budget, where the
    /// commit order is no longer being explored.
    fn drain_all(&self) {
        let Some(weak) = &self.weak else {
            return;
        };
        let threads = lock(weak).pending.len();
        for tid in 0..threads {
            self.drain_thread(tid);
        }
    }

    fn alloc_loc(&self) -> usize {
        let weak = self.weak.as_ref().expect("alloc_loc under SC mode");
        let mut weak = lock(weak);
        let loc = weak.next_loc;
        weak.next_loc += 1;
        weak.latest.push(0);
        for floors in weak.floors.iter_mut() {
            floors.push(0);
        }
        loc
    }

    /// Parks the calling model thread at a yield point and blocks until the
    /// controller grants it the next step (or the execution aborts).
    /// `kind` is the pending operation's effect, or `None` for a spin park.
    /// Returns the stale-read age when the grant came from a reorder
    /// decision (`None` for ordinary grants).
    fn arrive(&self, tid: usize, kind: Option<StepKind>) -> Option<usize> {
        let mut st = lock(&self.state);
        if st.granted == Some(tid) {
            st.granted = None;
        }
        st.status[tid] = match kind {
            Some(k) => Status::Parked(k),
            None => Status::Spinning,
        };
        self.cv.notify_all();
        loop {
            if st.abort {
                drop(st);
                std::panic::panic_any(AbortToken);
            }
            if st.granted == Some(tid) {
                st.status[tid] = Status::Running;
                return st.granted_stale.take();
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Marks `tid` finished; a non-[`AbortToken`] panic aborts the execution
    /// and records the first message. Buffered stores of the finished thread
    /// deliberately stay buffered: a hardware store buffer drains
    /// asynchronously, so a store issued by a thread's *last* instruction
    /// can still be reordered against other threads' observations. The
    /// controller keeps offering them as flush decisions and commits any
    /// remainder before the post-check (joining synchronizes with the
    /// execution as a whole).
    fn finish(&self, tid: usize, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut st = lock(&self.state);
        if st.granted == Some(tid) {
            st.granted = None;
        }
        st.status[tid] = Status::Done;
        if let Some(payload) = panic {
            if payload.downcast_ref::<AbortToken>().is_none() {
                st.abort = true;
                if st.failure.is_none() {
                    st.failure = Some(panic_message(&payload));
                }
            }
        }
        self.cv.notify_all();
    }

    /// Blocks until every thread is parked or done (no one launching or
    /// running, nothing granted). Returns the enabled set and whether any
    /// thread is spin-parked, or `None` once all threads are done.
    fn await_quiescent(&self) -> Option<(Vec<usize>, bool)> {
        let mut st = lock(&self.state);
        loop {
            let busy = st.granted.is_some()
                || st
                    .status
                    .iter()
                    .any(|s| matches!(s, Status::Launching | Status::Running));
            if !busy {
                if st.status.iter().all(|s| *s == Status::Done) {
                    return None;
                }
                if st.abort {
                    // Aborting: parked threads will unwind on wake-up.
                    self.cv.notify_all();
                } else {
                    let enabled: Vec<usize> = st
                        .status
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| matches!(s, Status::Parked(_)))
                        .map(|(i, _)| i)
                        .collect();
                    let spinning = st.status.contains(&Status::Spinning);
                    return Some((enabled, spinning));
                }
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Grants the next step to `tid`. When the pending step is a write, the
    /// shared state is about to change, so spin-parked threads are
    /// re-enabled (their next re-check happens strictly after the write —
    /// grants are serialized). Read grants leave spinners disabled: nothing
    /// they could re-observe has changed. `stale` carries the age of a
    /// reorder decision — the granted thread's pending `Relaxed` load reads
    /// that many versions behind (always a read step).
    fn grant(&self, tid: usize, stale: Option<usize>) {
        let mut st = lock(&self.state);
        let kind = match st.status[tid] {
            Status::Parked(kind) => kind,
            other => unreachable!("granting thread {tid} in state {other:?}"),
        };
        if kind == StepKind::Write {
            for s in st.status.iter_mut() {
                if *s == Status::Spinning {
                    *s = Status::Parked(StepKind::Read);
                }
            }
        }
        st.granted = Some(tid);
        st.granted_stale = stale;
        self.cv.notify_all();
    }

    /// Aborts the execution: all parked threads unwind with [`AbortToken`].
    fn abort(&self) {
        let mut st = lock(&self.state);
        st.abort = true;
        self.cv.notify_all();
    }

    /// Blocks until every model thread has finished.
    fn await_all_done(&self) {
        let mut st = lock(&self.state);
        while !st.status.iter().all(|s| *s == Status::Done) {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Handle that lets an [`crate::Atomic`] talk to the store-buffer machinery
/// of the model execution running on this OS thread. Obtainable only inside
/// a model thread of a [`MemoryMode::StoreBuffer`] execution — `None`
/// everywhere else, so SC runs and plain (un-modeled) usage pay nothing.
pub(crate) struct WeakSession {
    rt: Arc<Runtime>,
    tid: usize,
}

/// The store-buffer session of the calling model thread, if any.
pub(crate) fn weak_session() -> Option<WeakSession> {
    let (rt, tid) = current()?;
    rt.weak.as_ref()?;
    Some(WeakSession { rt, tid })
}

impl WeakSession {
    /// The model-thread id this session belongs to.
    pub(crate) fn tid(&self) -> usize {
        self.tid
    }

    /// Resolves the stable per-execution location id for an atomic cell,
    /// allocating one on first use. The cell-side cache is keyed by run id so
    /// an id from a previous execution is never reused.
    pub(crate) fn loc(&self, cache: &Mutex<Option<(u64, usize)>>) -> usize {
        let mut cached = lock(cache);
        match *cached {
            Some((run, loc)) if run == self.rt.run_id => loc,
            _ => {
                let loc = self.rt.alloc_loc();
                *cached = Some((self.rt.run_id, loc));
                loc
            }
        }
    }

    /// Buffers a store of the calling thread; `release` stores only ever
    /// commit from the front of the buffer.
    pub(crate) fn buffer_store(&self, loc: usize, release: bool, commit: Box<dyn FnOnce() + Send>) {
        self.rt.buffer_store(self.tid, loc, release, commit);
    }

    /// Commits every buffered store of the calling thread, in program order.
    pub(crate) fn drain(&self) {
        self.rt.drain_thread(self.tid);
    }

    /// Commits the calling thread's buffered stores to one location only.
    pub(crate) fn drain_location(&self, loc: usize) {
        self.rt.drain_location(self.tid, loc);
    }

    /// The stale-value window of the execution's memory mode (`0` unless
    /// running under [`MemoryMode::Relaxed`] with a nonzero window).
    pub(crate) fn window(&self) -> usize {
        self.rt.weak.as_ref().map_or(0, |w| lock(w).window)
    }

    /// Parks the calling thread on a `Relaxed` load of `loc`, offering the
    /// explorer stale-read decisions alongside the fresh one. Returns the
    /// chosen stale age (`None` = fresh), with the thread's coherence floor
    /// already raised to the version it is about to observe.
    pub(crate) fn relaxed_load(&self, loc: usize) -> Option<usize> {
        let weak = self.rt.weak.as_ref().expect("relaxed_load under SC mode");
        lock(weak).pending_load[self.tid] = Some(loc);
        let stale = self.rt.arrive(self.tid, Some(StepKind::Read));
        let mut st = lock(weak);
        st.pending_load[self.tid] = None;
        let observed = st.latest[loc] - stale.unwrap_or(0) as u64;
        let floor = &mut st.floors[self.tid][loc];
        *floor = (*floor).max(observed);
        stale
    }

    /// Records a store of the calling thread becoming globally visible at
    /// `loc` outside the flush path (`SeqCst` stores, RMW commits).
    pub(crate) fn committed(&self, loc: usize) {
        self.rt.committed(self.tid, loc);
    }

    /// Raises the calling thread's floor at `loc` to the current version
    /// (it just observed the latest value, e.g. through a failed CAS).
    pub(crate) fn observed_latest(&self, loc: usize) {
        self.rt.observed_latest(self.tid, loc);
    }

    /// Acquire drain: nothing stale stays observable by the calling thread.
    pub(crate) fn drain_stale(&self) {
        self.rt.drain_stale(self.tid);
    }
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked with a non-string payload".to_string()
    }
}

/// Runs one execution of `plan` under the scheduling decisions of `choose`.
///
/// `choose(enabled, last)` is called at each quiescent point with the sorted
/// enabled decision ids — thread ids, plus encoded flush ids (≥
/// [`FLUSH_BASE`]) when `memory` buffers stores, plus encoded stale-read ids
/// (≥ [`REORDER_BASE`]) when it keeps a version window — and the previously
/// chosen thread; it must return a member of `enabled`. `max_steps` bounds
/// the number of decisions; beyond it the execution is pruned as unfair.
pub(crate) fn run_once(
    plan: Plan,
    max_steps: usize,
    memory: MemoryMode,
    choose: &mut dyn FnMut(&[usize], Option<usize>) -> usize,
) -> RunResult {
    install_panic_filter();
    let n = plan.threads.len();
    let rt = Arc::new(Runtime::new(n, memory));
    let mut decisions = Vec::new();
    let mut outcome: Option<Outcome> = None;

    std::thread::scope(|scope| {
        for (tid, body) in plan.threads.into_iter().enumerate() {
            let rt = Arc::clone(&rt);
            scope.spawn(move || {
                CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&rt), tid)));
                let result = catch_unwind(AssertUnwindSafe(body));
                CURRENT.with(|c| *c.borrow_mut() = None);
                rt.finish(tid, result.err());
            });
        }

        let mut last: Option<usize> = None;
        loop {
            let quiescent = rt.await_quiescent();
            let (mut enabled, spinning) = quiescent.clone().unwrap_or((Vec::new(), false));
            if quiescent.is_none() && outcome.is_some() {
                // Aborted (livelock/prune) and every thread has unwound:
                // discard whatever is still buffered, nobody observes it.
                break;
            }
            // Pending flushes are decisions too: committing a buffered store
            // is exactly the visibility choice weak hardware makes for us.
            // They remain on offer after their thread finishes — and once
            // *all* threads are done, they are the only decisions left, so
            // the final commit order is explored rather than assumed.
            // Stale-read (reorder) decisions follow: a thread parked on a
            // Relaxed load may be granted an older readable version instead
            // of the fresh one. Ids are disjoint and each range is sorted,
            // so the combined enabled set stays sorted and deterministic.
            enabled.extend(rt.flushable());
            enabled.extend(rt.reorderable());
            if enabled.is_empty() {
                if quiescent.is_none() {
                    break; // all threads done, all stores committed
                }
                // Every unfinished thread is spin-parked, no store is waiting
                // to commit, and nobody can unblock them: livelock.
                debug_assert!(spinning);
                outcome = Some(Outcome::Livelock);
                rt.abort();
                continue;
            }
            if decisions.len() >= max_steps {
                if quiescent.is_none() {
                    // Only flushes remain; committing them cannot spin.
                    // Flush in program order without recording decisions so
                    // an execution at its budget still terminates.
                    rt.drain_all();
                    break;
                }
                outcome = Some(Outcome::Pruned);
                rt.abort();
                continue;
            }
            let chosen = choose(&enabled, last);
            assert!(
                enabled.contains(&chosen),
                "scheduler chose thread {chosen} outside enabled set {enabled:?}"
            );
            decisions.push(Decision { chosen, enabled });
            if chosen >= REORDER_BASE {
                // A stale read: grant the issuing thread its pending Relaxed
                // load at the decoded age. It is that thread's step, so the
                // default continuation keeps preferring it.
                let (tid, age) = decode_reorder(chosen);
                last = Some(tid);
                rt.grant(tid, Some(age));
            } else if chosen >= FLUSH_BASE {
                // A flush is performed by the controller; `last` keeps
                // pointing at the previously running thread so the default
                // continuation still prefers it.
                rt.perform_flush(chosen);
            } else {
                last = Some(chosen);
                rt.grant(chosen, None);
            }
        }
        rt.await_all_done();
    });

    let failure = lock(&rt.state).failure.take();
    let outcome = match (failure, outcome) {
        // A real panic wins over livelock/prune bookkeeping.
        (Some(msg), _) => Outcome::Failed(msg),
        (None, Some(o)) => o,
        (None, None) => match plan.check {
            Some(check) => match catch_unwind(AssertUnwindSafe(check)) {
                Ok(()) => Outcome::Ok,
                Err(payload) => Outcome::Failed(panic_message(&payload)),
            },
            None => Outcome::Ok,
        },
    };
    RunResult { outcome, decisions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::Atomic;
    use std::sync::Arc as StdArc;

    /// Scheduler: always pick the lowest enabled tid.
    fn lowest(enabled: &[usize], _last: Option<usize>) -> usize {
        enabled[0]
    }

    #[test]
    fn single_thread_runs_to_completion() {
        let cell = StdArc::new(Atomic::new(0u64));
        let c = StdArc::clone(&cell);
        let plan = Plan::new().thread(move || {
            c.store(1);
            c.store(2);
        });
        let result = run_once(plan, 100, MemoryMode::Sc, &mut lowest);
        assert_eq!(result.outcome, Outcome::Ok);
        assert_eq!(result.decisions.len(), 2);
        assert_eq!(cell.load(), 2);
    }

    #[test]
    fn decisions_record_enabled_sets() {
        let cell = StdArc::new(Atomic::new(0u64));
        let mk = |c: StdArc<Atomic<u64>>| move || c.store(1);
        let plan = Plan::new()
            .thread(mk(StdArc::clone(&cell)))
            .thread(mk(StdArc::clone(&cell)));
        let result = run_once(plan, 100, MemoryMode::Sc, &mut lowest);
        assert_eq!(result.outcome, Outcome::Ok);
        assert_eq!(result.decisions.len(), 2);
        assert_eq!(result.decisions[0].enabled, vec![0, 1]);
        assert_eq!(result.decisions[0].chosen, 0);
        assert_eq!(result.decisions[1].enabled, vec![1]);
    }

    #[test]
    fn panic_in_model_thread_fails_with_message() {
        let cell = StdArc::new(Atomic::new(0u64));
        let c = StdArc::clone(&cell);
        let c2 = StdArc::clone(&cell);
        let plan = Plan::new()
            .thread(move || {
                c.store(1);
                panic!("seeded failure");
            })
            .thread(move || {
                // This thread gets aborted mid-run without failing the test
                // runner.
                c2.store(2);
                c2.store(3);
                c2.store(4);
            });
        let result = run_once(plan, 100, MemoryMode::Sc, &mut lowest);
        assert_eq!(result.outcome, Outcome::Failed("seeded failure".into()));
    }

    #[test]
    fn check_runs_after_threads_and_can_fail() {
        let cell = StdArc::new(Atomic::new(0u64));
        let c = StdArc::clone(&cell);
        let c2 = StdArc::clone(&cell);
        let plan = Plan::new()
            .thread(move || c.store(7))
            .check(move || assert_eq!(c2.load(), 8, "post-check sees 7"));
        let result = run_once(plan, 100, MemoryMode::Sc, &mut lowest);
        match result.outcome {
            Outcome::Failed(msg) => assert!(msg.contains("post-check sees 7"), "{msg}"),
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn spin_only_threads_report_livelock() {
        let cell = StdArc::new(Atomic::new(0u64));
        let c = StdArc::clone(&cell);
        let plan = Plan::new().thread(move || loop {
            if c.load() == 1 {
                return;
            }
            spin_hint();
        });
        let result = run_once(plan, 100, MemoryMode::Sc, &mut lowest);
        assert_eq!(result.outcome, Outcome::Livelock);
    }

    #[test]
    fn step_budget_prunes_unfair_schedules() {
        let cell = StdArc::new(Atomic::new(0u64));
        let c = StdArc::clone(&cell);
        // A retry loop without spin_hint: the budget backstop catches it.
        let plan = Plan::new().thread(move || while c.load() != 1 {});
        let result = run_once(plan, 50, MemoryMode::Sc, &mut lowest);
        assert_eq!(result.outcome, Outcome::Pruned);
    }
}
