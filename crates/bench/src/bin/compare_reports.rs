//! **The CI perf-regression gate.** Diffs a fresh report document against
//! the committed baseline and exits non-zero when a gated metric regressed
//! past the threshold (see [`lfrt_bench::gate`] for which metrics and why).
//!
//! Typical CI invocation, after `paper_all --quick --json report.json`:
//!
//! ```text
//! compare_reports --report report.json
//! ```
//!
//! Re-baselining (after an intentional perf change; commit the result):
//!
//! ```text
//! compare_reports --report report.json --write-baseline
//! ```
//!
//! `--scale F` multiplies every fresh metric by `F` before comparing. It
//! exists to prove the gate fires: `--scale 2` simulates an across-the-board
//! 2x regression and must exit 1 (exercised in EXPERIMENTS.md and by the
//! `gate` unit tests).
//!
//! Usage: `cargo run -p lfrt-bench --release --bin compare_reports --
//! --report <path> [--baseline BENCH_baseline.json] [--threshold 0.15]
//! [--scale 1.0] [--write-baseline]`

use std::path::PathBuf;

use lfrt_bench::gate;
use lfrt_bench::json;
use lfrt_bench::Args;

fn load(path: &PathBuf, what: &str) -> json::Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {what} {}: {e}", path.display()));
    json::parse(&text).unwrap_or_else(|e| panic!("parse {what} {}: {e}", path.display()))
}

fn main() {
    let args = Args::from_env();
    let report_path = PathBuf::from(args.get_str("report", "report.json"));
    let baseline_path = PathBuf::from(args.get_str("baseline", "BENCH_baseline.json"));
    let threshold = args.get_f64("threshold", gate::DEFAULT_THRESHOLD);
    let scale = args.get_f64("scale", 1.0);

    let report = load(&report_path, "report");
    let mut fresh = gate::extract(&report);
    assert!(
        !fresh.is_empty(),
        "{}: no gated metrics found — did the run include uncontended_ops and churn_footprint?",
        report_path.display()
    );
    if scale != 1.0 {
        println!("# injecting synthetic regression: all fresh metrics x{scale}");
        for (_, v) in &mut fresh {
            *v *= scale;
        }
    }

    if args.get_bool("write-baseline") {
        let doc = gate::baseline_document(&fresh, &json::git_rev(), args.threads(), args.quick());
        std::fs::write(&baseline_path, doc.to_string_pretty())
            .unwrap_or_else(|e| panic!("write {}: {e}", baseline_path.display()));
        println!(
            "wrote baseline with {} metric(s) to {}",
            fresh.len(),
            baseline_path.display()
        );
        return;
    }

    let baseline_doc = load(&baseline_path, "baseline");
    let baseline = gate::baseline_metrics(&baseline_doc)
        .unwrap_or_else(|e| panic!("{}: {e}", baseline_path.display()));
    let outcome = gate::compare(&baseline, &fresh, threshold);

    println!(
        "# perf gate: {} vs {} (threshold {:.0}%)",
        report_path.display(),
        baseline_path.display(),
        threshold * 100.0
    );
    println!(
        "{:<45} {:>12} {:>12} {:>8}",
        "metric", "baseline", "fresh", "delta"
    );
    for row in &outcome.rows {
        println!(
            "{:<45} {:>12.1} {:>12.1} {:>+7.1}% {}",
            row.key,
            row.baseline,
            row.fresh,
            row.delta * 100.0,
            if row.regressed { "REGRESSED" } else { "ok" }
        );
    }
    for key in &outcome.unbaselined {
        println!(
            "{key:<45} {:>12} (new metric — re-baseline to start gating it)",
            "-"
        );
    }

    if outcome.failures.is_empty() {
        println!("PASS: no gated metric regressed past the threshold");
    } else {
        for failure in &outcome.failures {
            eprintln!("FAIL: {failure}");
        }
        std::process::exit(1);
    }
}
