use crate::ids::{JobId, ObjectId};

/// The state of all sequentially-shared objects in a simulation.
///
/// Under lock-based sharing, each object carries a holder set bounded by its
/// *capacity* and a waiter list. The default capacity is 1 — plain mutual
/// exclusion; larger capacities model the *multiunit resources* of RUA's
/// origin paper (Wu et al., RTCSA'04: "arbitrary time/utility functions and
/// multiunit resource constraints"), i.e. counting semaphores.
///
/// Under lock-free sharing, each object carries a *version* counter that a
/// committed write bumps — an in-flight access whose start version no longer
/// matches must retry, which is exactly the interference pattern bounded by
/// the paper's Theorem 2.
#[derive(Debug, Clone)]
pub struct ObjectTable {
    objects: Vec<ObjectState>,
}

#[derive(Debug, Clone)]
struct ObjectState {
    holders: Vec<JobId>,
    capacity: u32,
    waiters: Vec<JobId>,
    version: u64,
}

impl Default for ObjectState {
    fn default() -> Self {
        Self {
            holders: Vec::new(),
            capacity: 1,
            waiters: Vec::new(),
            version: 0,
        }
    }
}

impl ObjectTable {
    /// Creates a table of `count` unlocked, capacity-1, version-zero
    /// objects.
    pub fn new(count: usize) -> Self {
        Self {
            objects: vec![ObjectState::default(); count],
        }
    }

    /// Sets per-object capacities (units of the counting semaphore);
    /// objects beyond the slice keep capacity 1, and zero entries are
    /// clamped to 1.
    pub fn set_capacities(&mut self, capacities: &[u32]) {
        for (state, &cap) in self.objects.iter_mut().zip(capacities) {
            state.capacity = cap.max(1);
        }
    }

    /// The capacity (concurrent holders allowed) of `object`.
    pub fn capacity(&self, object: ObjectId) -> u32 {
        self.objects[object.index()].capacity
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the table holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The current lock holders of `object`, in acquisition order.
    pub fn holders(&self, object: ObjectId) -> &[JobId] {
        &self.objects[object.index()].holders
    }

    /// The first current holder of `object`, if any — the dependency target
    /// a blocked job's chain follows (with multiunit objects this is one of
    /// possibly several holders; the chain picks the senior one).
    pub fn owner(&self, object: ObjectId) -> Option<JobId> {
        self.objects[object.index()].holders.first().copied()
    }

    /// Jobs currently blocked on `object`, in blocking order.
    pub fn waiters(&self, object: ObjectId) -> &[JobId] {
        &self.objects[object.index()].waiters
    }

    /// Attempts to take one unit of `object` for `job`. On failure the job
    /// is appended to the waiter list and `false` is returned.
    pub fn try_lock(&mut self, object: ObjectId, job: JobId) -> bool {
        let state = &mut self.objects[object.index()];
        if state.holders.contains(&job) {
            return true; // re-request within a segment
        }
        if (state.holders.len() as u32) < state.capacity {
            state.holders.push(job);
            true
        } else {
            if !state.waiters.contains(&job) {
                state.waiters.push(job);
            }
            false
        }
    }

    /// Releases `job`'s unit of `object`, returning the jobs that were
    /// waiting on it (they become ready and will re-request when
    /// dispatched).
    ///
    /// # Panics
    ///
    /// Panics if `job` does not hold the object — releasing another job's
    /// unit is a simulator bug.
    pub fn unlock(&mut self, object: ObjectId, job: JobId) -> Vec<JobId> {
        let state = &mut self.objects[object.index()];
        let before = state.holders.len();
        state.holders.retain(|&h| h != job);
        assert_eq!(
            state.holders.len(),
            before - 1,
            "{job} released {object} without holding it"
        );
        std::mem::take(&mut state.waiters)
    }

    /// Removes `job` from the waiter list of `object` (e.g. on abort).
    pub fn remove_waiter(&mut self, object: ObjectId, job: JobId) {
        self.objects[object.index()].waiters.retain(|&w| w != job);
    }

    /// The lock-free version counter of `object`.
    pub fn version(&self, object: ObjectId) -> u64 {
        self.objects[object.index()].version
    }

    /// Records a committed write: bumps the version so in-flight accesses to
    /// the same object observe interference and retry.
    pub fn commit_write(&mut self, object: ObjectId) {
        self.objects[object.index()].version += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(i: usize) -> ObjectId {
        ObjectId::new(i)
    }
    fn j(i: usize) -> JobId {
        JobId::new(i)
    }

    #[test]
    fn lock_grant_and_block() {
        let mut t = ObjectTable::new(2);
        assert!(t.try_lock(o(0), j(1)));
        assert_eq!(t.owner(o(0)), Some(j(1)));
        assert!(!t.try_lock(o(0), j(2)));
        assert_eq!(t.waiters(o(0)), &[j(2)]);
        // Other object unaffected.
        assert!(t.try_lock(o(1), j(2)));
    }

    #[test]
    fn re_request_by_holder_succeeds_without_duplication() {
        let mut t = ObjectTable::new(1);
        assert!(t.try_lock(o(0), j(1)));
        assert!(t.try_lock(o(0), j(1)));
        assert!(t.waiters(o(0)).is_empty());
        assert_eq!(t.holders(o(0)), &[j(1)]);
    }

    #[test]
    fn duplicate_waiters_not_recorded() {
        let mut t = ObjectTable::new(1);
        t.try_lock(o(0), j(1));
        t.try_lock(o(0), j(2));
        t.try_lock(o(0), j(2));
        assert_eq!(t.waiters(o(0)), &[j(2)]);
    }

    #[test]
    fn unlock_wakes_waiters() {
        let mut t = ObjectTable::new(1);
        t.try_lock(o(0), j(1));
        t.try_lock(o(0), j(2));
        t.try_lock(o(0), j(3));
        let woken = t.unlock(o(0), j(1));
        assert_eq!(woken, vec![j(2), j(3)]);
        assert_eq!(t.owner(o(0)), None);
        assert!(t.waiters(o(0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "without holding it")]
    fn unlock_by_non_holder_panics() {
        let mut t = ObjectTable::new(1);
        t.try_lock(o(0), j(1));
        t.unlock(o(0), j(2));
    }

    #[test]
    fn versions_count_committed_writes() {
        let mut t = ObjectTable::new(2);
        assert_eq!(t.version(o(0)), 0);
        t.commit_write(o(0));
        t.commit_write(o(0));
        assert_eq!(t.version(o(0)), 2);
        assert_eq!(t.version(o(1)), 0);
    }

    #[test]
    fn remove_waiter_on_abort() {
        let mut t = ObjectTable::new(1);
        t.try_lock(o(0), j(1));
        t.try_lock(o(0), j(2));
        t.remove_waiter(o(0), j(2));
        assert!(t.waiters(o(0)).is_empty());
    }

    #[test]
    fn multiunit_object_admits_capacity_holders() {
        let mut t = ObjectTable::new(1);
        t.set_capacities(&[2]);
        assert_eq!(t.capacity(o(0)), 2);
        assert!(t.try_lock(o(0), j(1)));
        assert!(t.try_lock(o(0), j(2)), "second unit available");
        assert!(!t.try_lock(o(0), j(3)), "third requester blocks");
        assert_eq!(t.holders(o(0)), &[j(1), j(2)]);
        let woken = t.unlock(o(0), j(1));
        assert_eq!(woken, vec![j(3)]);
        assert_eq!(t.holders(o(0)), &[j(2)]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut t = ObjectTable::new(1);
        t.set_capacities(&[0]);
        assert_eq!(t.capacity(o(0)), 1);
    }

    #[test]
    fn capacities_beyond_slice_stay_one() {
        let mut t = ObjectTable::new(3);
        t.set_capacities(&[4]);
        assert_eq!(t.capacity(o(0)), 4);
        assert_eq!(t.capacity(o(1)), 1);
        assert_eq!(t.capacity(o(2)), 1);
    }
}
