//! Source loading and lexical cleaning.
//!
//! The scanners work on a *cleaned* copy of each file in which every
//! comment, string literal, and char literal has been blanked out with
//! spaces, byte for byte. Blanking (instead of removing) keeps every byte
//! offset and line number identical between the raw and cleaned text, so
//! findings anchor to real `file:line` positions while the pattern matching
//! never trips over `".load("` inside a string or a doc comment.

use std::fmt;

/// One workspace source file, raw and cleaned.
pub struct SourceFile {
    /// Path relative to the scan root, with `/` separators.
    pub rel_path: String,
    /// The original text.
    pub raw: String,
    /// Same length as `raw`, with comments and string/char literals
    /// (including their delimiters) replaced by spaces. Newlines survive.
    pub clean: String,
    line_starts: Vec<usize>,
}

impl SourceFile {
    /// Cleans `raw` and indexes its lines.
    pub fn new(rel_path: impl Into<String>, raw: impl Into<String>) -> Self {
        let raw = raw.into();
        let clean = blank(&raw);
        debug_assert_eq!(raw.len(), clean.len(), "blanking must preserve offsets");
        let mut line_starts = vec![0];
        line_starts.extend(
            raw.bytes()
                .enumerate()
                .filter(|&(_, b)| b == b'\n')
                .map(|(i, _)| i + 1),
        );
        Self {
            rel_path: rel_path.into(),
            raw,
            clean,
            line_starts,
        }
    }

    /// 1-based line number of byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= offset)
    }
}

impl fmt::Debug for SourceFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SourceFile")
            .field("rel_path", &self.rel_path)
            .field("bytes", &self.raw.len())
            .finish()
    }
}

#[derive(PartialEq)]
enum State {
    Normal,
    LineComment,
    /// Nesting depth (Rust block comments nest).
    BlockComment(u32),
    Str,
    /// Number of `#`s in the `r#...#"` opener.
    RawStr(u32),
    CharLit,
}

/// Replaces comments and string/char literals with spaces, preserving byte
/// offsets and newlines. Lifetimes (`'a`) are kept; raw strings, byte
/// strings, nested block comments, and escapes are handled.
///
/// Byte strings (`b"..."`) process `\"` escapes exactly like ordinary
/// strings; only the `r"..."` / `r#"..."#` / `br"..."` forms are raw
/// (escapes inert, closing decided by the quote-and-hashes sequence).
pub fn blank(src: &str) -> String {
    let mut out = Vec::with_capacity(src.len());
    let mut state = State::Normal;
    let chars: Vec<(usize, char)> = src.char_indices().collect();
    let mut i = 0;
    // Emits `ch` either verbatim or as an equal number of spaces.
    fn emit(out: &mut Vec<u8>, ch: char, keep: bool) {
        if keep || ch == '\n' {
            let mut buf = [0u8; 4];
            out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
        } else {
            out.extend(std::iter::repeat_n(b' ', ch.len_utf8()));
        }
    }
    while i < chars.len() {
        let (_, ch) = chars[i];
        let next = chars.get(i + 1).map(|&(_, c)| c);
        match state {
            State::Normal => match ch {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    emit(&mut out, ch, false);
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    emit(&mut out, ch, false);
                    emit(&mut out, '*', false);
                    i += 1;
                }
                '"' => {
                    state = State::Str;
                    emit(&mut out, ch, false);
                }
                'r' | 'b' if !prev_is_ident(&chars, i) => {
                    // Possible raw/byte string prefix: r", r#", br", b"...
                    // Only prefixes containing `r` are *raw*; a plain `b"`
                    // opens an ordinary (escape-processing) string body.
                    let mut j = i + 1;
                    let mut is_raw = ch == 'r';
                    if ch == 'b' && chars.get(j).map(|&(_, c)| c) == Some('r') {
                        is_raw = true;
                        j += 1;
                    }
                    let mut hashes = 0;
                    if is_raw {
                        while chars.get(j).map(|&(_, c)| c) == Some('#') {
                            hashes += 1;
                            j += 1;
                        }
                    }
                    if chars.get(j).map(|&(_, c)| c) == Some('"') {
                        for &(_, c) in &chars[i..=j] {
                            emit(&mut out, c, false);
                        }
                        i = j;
                        state = if is_raw {
                            State::RawStr(hashes)
                        } else {
                            State::Str
                        };
                    } else if ch == 'b' && chars.get(i + 1).map(|&(_, c)| c) == Some('\'') {
                        emit(&mut out, ch, false);
                        emit(&mut out, '\'', false);
                        i += 1;
                        state = State::CharLit;
                    } else {
                        emit(&mut out, ch, true);
                    }
                }
                '\'' => {
                    // Char literal vs lifetime: a literal is '<escape>' or
                    // '<char>' (closing quote two ahead); otherwise 'ident.
                    let is_literal =
                        next == Some('\\') || chars.get(i + 2).map(|&(_, c)| c) == Some('\'');
                    if is_literal && !prev_is_ident(&chars, i) {
                        state = State::CharLit;
                        emit(&mut out, ch, false);
                    } else {
                        emit(&mut out, ch, true);
                    }
                }
                _ => emit(&mut out, ch, true),
            },
            State::LineComment => {
                if ch == '\n' {
                    state = State::Normal;
                }
                emit(&mut out, ch, false);
            }
            State::BlockComment(depth) => {
                if ch == '*' && next == Some('/') {
                    emit(&mut out, ch, false);
                    emit(&mut out, '/', false);
                    i += 1;
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                } else if ch == '/' && next == Some('*') {
                    emit(&mut out, ch, false);
                    emit(&mut out, '*', false);
                    i += 1;
                    state = State::BlockComment(depth + 1);
                } else {
                    emit(&mut out, ch, false);
                }
            }
            State::Str => {
                if ch == '\\' {
                    emit(&mut out, ch, false);
                    if let Some(n) = next {
                        emit(&mut out, n, false);
                        i += 1;
                    }
                } else {
                    if ch == '"' {
                        state = State::Normal;
                    }
                    emit(&mut out, ch, false);
                }
            }
            State::RawStr(hashes) => {
                if ch == '"' {
                    let closed = (1..=hashes as usize)
                        .all(|k| chars.get(i + k).map(|&(_, c)| c) == Some('#'));
                    emit(&mut out, ch, false);
                    if closed {
                        for _ in 0..hashes {
                            i += 1;
                            emit(&mut out, '#', false);
                        }
                        state = State::Normal;
                    }
                } else {
                    emit(&mut out, ch, false);
                }
            }
            State::CharLit => {
                if ch == '\\' {
                    emit(&mut out, ch, false);
                    if let Some(n) = next {
                        emit(&mut out, n, false);
                        i += 1;
                    }
                } else {
                    if ch == '\'' {
                        state = State::Normal;
                    }
                    emit(&mut out, ch, false);
                }
            }
        }
        i += 1;
    }
    String::from_utf8(out).expect("blanking only replaces chars with ASCII spaces")
}

fn prev_is_ident(chars: &[(usize, char)], i: usize) -> bool {
    i > 0 && {
        let c = chars[i - 1].1;
        c.is_alphanumeric() || c == '_'
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = 1; // a.load(Relaxed)\nlet s = \".store(SeqCst)\"; /* fence( */ y";
        let clean = blank(src);
        assert_eq!(clean.len(), src.len());
        assert!(!clean.contains("Relaxed"));
        assert!(!clean.contains("SeqCst"));
        assert!(!clean.contains("fence"));
        assert!(clean.contains("let x = 1;"));
        assert!(clean.ends_with('y'));
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let src = "/* outer /* inner */ still */ keep r#\"raw .load( \"# after b\"bytes\" end";
        let clean = blank(src);
        assert!(clean.contains("keep"));
        assert!(clean.contains("after"));
        assert!(clean.contains("end"));
        assert!(!clean.contains("inner"));
        assert!(!clean.contains(".load("));
        assert!(!clean.contains("bytes"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }";
        let clean = blank(src);
        assert!(clean.contains("<'a>"));
        assert!(clean.contains("&'a str"));
        assert!(!clean.contains("'x'"));
        assert!(!clean.contains("\\n"));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let src = r#"let s = "a\"b.load(Acquire)"; tail"#;
        let clean = blank(src);
        assert!(!clean.contains("Acquire"));
        assert!(clean.contains("tail"));
    }

    #[test]
    fn line_numbers_match_offsets() {
        let sf = SourceFile::new("x.rs", "a\nbb\nccc\n");
        assert_eq!(sf.line_of(0), 1);
        assert_eq!(sf.line_of(2), 2);
        assert_eq!(sf.line_of(3), 2);
        assert_eq!(sf.line_of(5), 3);
        assert_eq!(sf.line_of(8), 3);
    }

    #[test]
    fn multibyte_chars_keep_byte_alignment() {
        let src = "// em—dash comment\nlet x = 1;";
        let clean = blank(src);
        assert_eq!(clean.len(), src.len());
        assert!(clean.contains("let x = 1;"));
    }

    // Regression: byte strings are NOT raw strings. The pre-extraction
    // blanker routed `b"..."` into the raw-string state, so an escaped
    // `\"` inside one terminated the literal early and the trailing real
    // quote re-opened a phantom string — desynchronizing every site after
    // it in the file.
    #[test]
    fn escaped_quote_in_byte_string_does_not_desync() {
        let src = "let v = b\"x\\\"y\"; real.load(Acquire); tail";
        let clean = blank(src);
        assert_eq!(clean.len(), src.len());
        assert!(
            clean.contains("real.load(Acquire)"),
            "code after the byte string must survive blanking: {clean:?}"
        );
        assert!(!clean.contains('x'), "byte-string body must be blanked");
        assert!(clean.contains("tail"));
    }

    // Regression companion: a lone `"` inside a hashed raw string must not
    // close it, and the `"#` terminator must.
    #[test]
    fn quote_inside_hashed_raw_string_does_not_close_it() {
        let src = "let s = r#\"has \" quote .load(SeqCst) \"# ; live.store(1, Release); end";
        let clean = blank(src);
        assert_eq!(clean.len(), src.len());
        assert!(!clean.contains("SeqCst"));
        assert!(clean.contains("live.store(1, Release)"));
        assert!(clean.contains("end"));
    }

    // `br"..."` stays raw: backslashes are inert, the quote closes it.
    #[test]
    fn raw_byte_string_backslash_is_inert() {
        let src = "let v = br\"a\\\"; after.load(AcqRel); end";
        let clean = blank(src);
        assert_eq!(clean.len(), src.len());
        assert!(clean.contains("after.load(AcqRel)"));
        assert!(clean.contains("end"));
    }
}
