/// A multi-producer/multi-consumer FIFO queue shareable across threads.
///
/// Implemented by the lock-free [`LockFreeQueue`](crate::LockFreeQueue) and
/// the mutual-exclusion [`LockedQueue`](crate::LockedQueue), so benchmarks
/// and applications can swap synchronization disciplines behind one
/// interface — the comparison at the heart of the paper's Section 5.
pub trait ConcurrentQueue<T>: Send + Sync {
    /// Appends `value` at the tail.
    fn enqueue(&self, value: T);

    /// Removes and returns the head element, or `None` if empty.
    fn dequeue(&self) -> Option<T>;

    /// Whether the queue is observed empty (a racy snapshot).
    fn is_empty(&self) -> bool;
}

/// A multi-producer/multi-consumer LIFO stack shareable across threads.
///
/// Implemented by [`TreiberStack`](crate::TreiberStack) and
/// [`LockedStack`](crate::LockedStack).
pub trait ConcurrentStack<T>: Send + Sync {
    /// Pushes `value` on top.
    fn push(&self, value: T);

    /// Pops the top element, or `None` if empty.
    fn pop(&self) -> Option<T>;

    /// Whether the stack is observed empty (a racy snapshot).
    fn is_empty(&self) -> bool;
}
