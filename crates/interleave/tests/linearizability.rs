//! Linearizability of every mirrored model: each scenario explores the
//! schedule tree while recording a [`History`], and the post-check of every
//! execution searches for a Wing–Gong sequential witness against the
//! matching reference spec. A single interleaving with no witness fails the
//! exploration with a replayable schedule.

use std::sync::Arc;

use lfrt_interleave::linear::assert_linearizable;
use lfrt_interleave::models::buggy::RacyStack;
use lfrt_interleave::models::{
    ModelCasRegister, ModelMpmcQueue, ModelMsQueue, ModelNbw, ModelSpscRing, ModelTreiberStack,
};
use lfrt_interleave::spec::{
    BoundedOp, BoundedQueueSpec, BoundedRet, PairOp, PairRet, PairSpec, QueueOp, QueueRet,
    QueueSpec, RegisterOp, RegisterRet, RegisterSpec, StackOp, StackRet, StackSpec,
};
use lfrt_interleave::{explore, Config, History, Plan};

#[test]
fn ms_queue_linearizes_under_bounded_preemption() {
    explore(&Config::preemptions("lin-ms-queue", 3), || {
        let queue = Arc::new(ModelMsQueue::new());
        let history: Arc<History<QueueOp, QueueRet>> = Arc::new(History::new());
        let (q0, h0) = (Arc::clone(&queue), Arc::clone(&history));
        let (q1, h1) = (Arc::clone(&queue), Arc::clone(&history));
        Plan::new()
            .thread(move || {
                for v in [1, 2] {
                    let t = h0.begin(0, QueueOp::Enqueue(v));
                    q0.enqueue(v);
                    h0.end(t, QueueRet::Pushed);
                }
            })
            .thread(move || {
                for _ in 0..2 {
                    let t = h1.begin(1, QueueOp::Dequeue);
                    let got = q1.dequeue();
                    h1.end(t, QueueRet::Popped(got));
                }
            })
            .check(move || assert_linearizable(&QueueSpec::new(), &history.completed()))
    })
    .assert_ok();
}

#[test]
fn treiber_stack_linearizes_under_bounded_preemption() {
    explore(&Config::preemptions("lin-treiber", 3), || {
        let stack = Arc::new(ModelTreiberStack::new());
        let history: Arc<History<StackOp, StackRet>> = Arc::new(History::new());
        let mk = |tid: usize, value: u64, s: Arc<ModelTreiberStack>, h: Arc<History<_, _>>| {
            move || {
                let t = h.begin(tid, StackOp::Push(value));
                s.push(value);
                h.end(t, StackRet::Pushed);
                let t = h.begin(tid, StackOp::Pop);
                let got = s.pop();
                h.end(t, StackRet::Popped(got));
            }
        };
        let plan = Plan::new()
            .thread(mk(0, 1, Arc::clone(&stack), Arc::clone(&history)))
            .thread(mk(1, 2, Arc::clone(&stack), Arc::clone(&history)));
        plan.check(move || assert_linearizable(&StackSpec::new(), &history.completed()))
    })
    .assert_ok();
}

#[test]
fn cas_register_linearizes_exhaustively() {
    explore(&Config::exhaustive("lin-register"), || {
        let reg = Arc::new(ModelCasRegister::new(0));
        let history: Arc<History<RegisterOp, RegisterRet>> = Arc::new(History::new());
        let mk_add = |tid: usize, k: u64, r: Arc<ModelCasRegister>, h: Arc<History<_, _>>| {
            move || {
                let t = h.begin(tid, RegisterOp::Add(k));
                let prev = r.update(|v| v + k);
                h.end(t, RegisterRet::Replaced(prev));
            }
        };
        let (r2, h2) = (Arc::clone(&reg), Arc::clone(&history));
        Plan::new()
            .thread(mk_add(0, 1, Arc::clone(&reg), Arc::clone(&history)))
            .thread(mk_add(1, 2, Arc::clone(&reg), Arc::clone(&history)))
            .thread(move || {
                let t = h2.begin(2, RegisterOp::Load);
                let v = r2.load();
                h2.end(t, RegisterRet::Value(v));
            })
            .check(move || assert_linearizable(&RegisterSpec::new(0), &history.completed()))
    })
    .assert_ok();
}

#[test]
fn bounded_mpmc_linearizes_under_bounded_preemption() {
    explore(&Config::preemptions("lin-mpmc", 3), || {
        // Internal capacity 2 (the algorithm's minimum); the spec matches.
        let queue = Arc::new(ModelMpmcQueue::new(2));
        let history: Arc<History<BoundedOp, BoundedRet>> = Arc::new(History::new());
        let (q0, h0) = (Arc::clone(&queue), Arc::clone(&history));
        let (q1, h1) = (Arc::clone(&queue), Arc::clone(&history));
        Plan::new()
            .thread(move || {
                for v in [1, 2] {
                    let t = h0.begin(0, BoundedOp::Push(v));
                    let fit = q0.push(v).is_ok();
                    h0.end(t, BoundedRet::Pushed(fit));
                }
            })
            .thread(move || {
                for _ in 0..2 {
                    let t = h1.begin(1, BoundedOp::Pop);
                    let got = q1.pop();
                    h1.end(t, BoundedRet::Popped(got));
                }
            })
            .check(move || assert_linearizable(&BoundedQueueSpec::new(2), &history.completed()))
    })
    .assert_ok();
}

#[test]
fn spsc_ring_linearizes_exhaustively() {
    explore(&Config::exhaustive("lin-spsc-ring"), || {
        let ring = Arc::new(ModelSpscRing::new(1));
        let history: Arc<History<BoundedOp, BoundedRet>> = Arc::new(History::new());
        let (producer, hp) = (Arc::clone(&ring), Arc::clone(&history));
        let (consumer, hc) = (Arc::clone(&ring), Arc::clone(&history));
        Plan::new()
            .thread(move || {
                for v in [1, 2] {
                    let t = hp.begin(0, BoundedOp::Push(v));
                    let fit = producer.push(v).is_ok();
                    hp.end(t, BoundedRet::Pushed(fit));
                }
            })
            .thread(move || {
                for _ in 0..2 {
                    let t = hc.begin(1, BoundedOp::Pop);
                    let got = consumer.pop();
                    hc.end(t, BoundedRet::Popped(got));
                }
            })
            .check(move || assert_linearizable(&BoundedQueueSpec::new(1), &history.completed()))
    })
    .assert_ok();
}

#[test]
fn nbw_register_linearizes_as_atomic_pair() {
    // pb=2 keeps the 3-thread tree tractable: both readers can still fully
    // overlap the write (one preemption into it, one out). The torn-read bug
    // class itself is covered exhaustively with 2 threads in explorer.rs.
    explore(&Config::preemptions("lin-nbw", 2), || {
        let reg = Arc::new(ModelNbw::new(0, 0));
        let history: Arc<History<PairOp, PairRet>> = Arc::new(History::new());
        let (w, hw) = (Arc::clone(&reg), Arc::clone(&history));
        let mk_reader = |tid: usize, r: Arc<ModelNbw>, h: Arc<History<_, _>>| {
            move || {
                let t = h.begin(tid, PairOp::Read);
                let (a, b) = r.read();
                h.end(t, PairRet::Pair(a, b));
            }
        };
        Plan::new()
            .thread(move || {
                let t = hw.begin(0, PairOp::Write(1, 2));
                w.write(1, 2);
                hw.end(t, PairRet::Written);
            })
            .thread(mk_reader(1, Arc::clone(&reg), Arc::clone(&history)))
            .thread(mk_reader(2, Arc::clone(&reg), Arc::clone(&history)))
            .check(move || assert_linearizable(&PairSpec::new(0, 0), &history.completed()))
    })
    .assert_ok();
}

/// The checker is not a rubber stamp: the racy stack's duplicated pop has no
/// sequential witness, and the exploration reports the schedule that did it.
#[test]
fn racy_stack_history_has_no_witness() {
    let report = explore(&Config::exhaustive("lin-racy-stack"), || {
        let stack = Arc::new(RacyStack::new());
        stack.push(1);
        stack.push(2);
        let history: Arc<History<StackOp, StackRet>> = Arc::new(History::new());
        let mk = |tid: usize, s: Arc<RacyStack>, h: Arc<History<_, _>>| {
            move || {
                let t = h.begin(tid, StackOp::Pop);
                let got = s.pop();
                h.end(t, StackRet::Popped(got));
            }
        };
        Plan::new()
            .thread(mk(0, Arc::clone(&stack), Arc::clone(&history)))
            .thread(mk(1, Arc::clone(&stack), Arc::clone(&history)))
            .check(move || {
                // Seed the spec with the setup pushes so only the concurrent
                // part of the history is checked.
                let mut spec = StackSpec::new();
                use lfrt_interleave::SeqSpec;
                spec.apply(&StackOp::Push(1));
                spec.apply(&StackOp::Push(2));
                assert_linearizable(&spec, &history.completed());
            })
    });
    let failure = report.assert_fails();
    assert!(failure.message.contains("NOT linearizable"), "{failure:?}");
}
