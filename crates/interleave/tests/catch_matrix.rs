//! The cross-mode catch matrix: one table-driven suite asserting, for every
//! seeded-bug model × {Sc, StoreBuffer, Relaxed}, the *exact* expected
//! outcome — so the mode hierarchy (each mode catches everything the weaker
//! ones catch, plus its own row of bugs) is pinned as a single artifact
//! rather than scattered across suites. For every Caught cell the failing
//! schedule is additionally re-replayed in-test under the producing mode
//! (same panic must reproduce) and offered to every weaker mode (a schedule
//! bearing decisions the weaker mode cannot honor must be *refused*, not
//! silently diverge).
//!
//! The matrix, in table form (P = passes exhaustively within the row's
//! bounds, C = caught with a deterministically replayable schedule):
//!
//! | model                    | Sc | StoreBuffer | Relaxed |
//! |--------------------------|----|-------------|---------|
//! | `TornNbw`                | C  | C           | C       |
//! | `RelaxedPubStack` (bug)  | P  | C           | C       |
//! | `FencelessNbw` (bug)     | P  | C           | C       |
//! | `MsgPassing` (bug)       | P  | P           | C       |
//! | `StaleNbwReader` (bug)   | P  | P           | C       |
//! | `StalePubRing` (bug)     | P  | P           | C       |
//! | every fixed counterpart  | P  | P           | P       |

use std::sync::Arc;

use lfrt_interleave::models::buggy::{
    FencelessNbw, MsgPassing, RelaxedPubStack, StaleNbwReader, StalePubRing, TornNbw, MSG,
};
use lfrt_interleave::{
    explore, replay_in, Config, MemoryMode, Plan, Schedule, FLUSH_BASE, REORDER_BASE,
};

/// Expected outcome of one (model, mode) cell.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Cell {
    /// Every schedule within the row's bounds passes.
    P,
    /// At least one schedule fails, with the row's panic message.
    C,
}
use Cell::{C, P};

/// One row of the matrix: a scenario factory, the panic message its seeded
/// bug produces, a CHESS bound shared by *all three* modes (so the cells
/// are comparable), and the expected outcome per mode.
struct Row {
    name: &'static str,
    scenario: fn() -> Plan,
    needle: &'static str,
    bound: Option<usize>,
    /// Expected outcomes in mode order: [Sc, StoreBuffer, Relaxed].
    expect: [Cell; 3],
}

fn modes() -> [(&'static str, MemoryMode); 3] {
    [
        ("sc", MemoryMode::Sc),
        (
            "tso",
            MemoryMode::StoreBuffer {
                bound: MemoryMode::DEFAULT_BOUND,
            },
        ),
        (
            "relaxed",
            MemoryMode::Relaxed {
                bound: MemoryMode::DEFAULT_BOUND,
                window: MemoryMode::DEFAULT_WINDOW,
            },
        ),
    ]
}

// --- Scenario factories (self-contained so they can be plain fn items) ---

fn torn_nbw() -> Plan {
    let reg = Arc::new(TornNbw::new(0, 0));
    let w = Arc::clone(&reg);
    let r = Arc::clone(&reg);
    Plan::new().thread(move || w.write(1, 2)).thread(move || {
        let got = r.read();
        assert!(got == (0, 0) || got == (1, 2), "torn read: {got:?}");
    })
}

fn pub_stack(make: fn(usize) -> RelaxedPubStack) -> Plan {
    let stack = Arc::new(make(1));
    let producer = Arc::clone(&stack);
    let reader = Arc::clone(&stack);
    Plan::new()
        .thread(move || producer.push(0, 42))
        .thread(move || {
            let seen = reader.peek();
            assert!(
                seen.is_none() || seen == Some(42),
                "dereferenced a published but uninitialized node: {seen:?}"
            );
        })
}
fn pub_stack_bug() -> Plan {
    pub_stack(RelaxedPubStack::relaxed)
}
fn pub_stack_fixed() -> Plan {
    pub_stack(RelaxedPubStack::release)
}

fn fenceless_nbw(fenced: bool) -> Plan {
    let nbw = Arc::new(if fenced {
        FencelessNbw::fixed(0, 0)
    } else {
        FencelessNbw::new(0, 0)
    });
    let w = Arc::clone(&nbw);
    let r = Arc::clone(&nbw);
    Plan::new().thread(move || w.write(1, 2)).thread(move || {
        let got = r.read();
        assert!(got == (0, 0) || got == (1, 2), "torn NBW read: {got:?}");
    })
}
fn fenceless_nbw_bug() -> Plan {
    fenceless_nbw(false)
}
fn fenceless_nbw_fixed() -> Plan {
    fenceless_nbw(true)
}

fn msg_passing(make: fn() -> MsgPassing) -> Plan {
    let mp = Arc::new(make());
    let producer = Arc::clone(&mp);
    let consumer = Arc::clone(&mp);
    Plan::new()
        .thread(move || producer.publish())
        .thread(move || {
            if let Some(got) = consumer.consume() {
                assert_eq!(got, MSG, "flag visible but message incomplete: {got}");
            }
        })
}
fn msg_passing_bug() -> Plan {
    msg_passing(MsgPassing::relaxed)
}
fn msg_passing_fixed() -> Plan {
    msg_passing(MsgPassing::acquire)
}

fn stale_nbw(fenced: bool) -> Plan {
    let nbw = Arc::new(if fenced {
        StaleNbwReader::fixed(0, 0)
    } else {
        StaleNbwReader::new(0, 0)
    });
    let w = Arc::clone(&nbw);
    let r = Arc::clone(&nbw);
    Plan::new().thread(move || w.write(1, 1)).thread(move || {
        let got = r.read();
        assert!(got == (0, 0) || got == (1, 1), "torn NBW read: {got:?}");
    })
}
fn stale_nbw_bug() -> Plan {
    stale_nbw(false)
}
fn stale_nbw_fixed() -> Plan {
    stale_nbw(true)
}

fn pub_ring(make: fn() -> StalePubRing) -> Plan {
    let ring = Arc::new(make());
    let producer = Arc::clone(&ring);
    let consumer = Arc::clone(&ring);
    Plan::new()
        .thread(move || producer.produce())
        .thread(move || {
            for (i, v) in consumer.consume().into_iter().enumerate() {
                assert_ne!(v, 0, "published slot {i} read as sentinel");
            }
        })
}
fn pub_ring_bug() -> Plan {
    pub_ring(StalePubRing::relaxed)
}
fn pub_ring_fixed() -> Plan {
    pub_ring(StalePubRing::acquire)
}

/// The bound the NBW-shaped rows need: their reader retry loops make
/// exhaustive weak exploration explode, and `tests/weak_memory.rs` /
/// `tests/relaxed_memory.rs` establish 3 preemptions reach every seeded
/// reordering for this shape.
const NBW_BOUND: Option<usize> = Some(3);

fn matrix() -> Vec<Row> {
    vec![
        Row {
            name: "torn-nbw",
            scenario: torn_nbw,
            needle: "torn read",
            bound: None,
            expect: [C, C, C],
        },
        Row {
            name: "relaxed-pub-stack",
            scenario: pub_stack_bug,
            needle: "uninitialized node",
            bound: None,
            expect: [P, C, C],
        },
        Row {
            name: "fenceless-nbw",
            scenario: fenceless_nbw_bug,
            needle: "torn NBW read",
            bound: NBW_BOUND,
            expect: [P, C, C],
        },
        Row {
            name: "msg-passing",
            scenario: msg_passing_bug,
            needle: "message incomplete",
            bound: None,
            expect: [P, P, C],
        },
        Row {
            name: "stale-nbw-reader",
            scenario: stale_nbw_bug,
            needle: "torn NBW read",
            bound: NBW_BOUND,
            expect: [P, P, C],
        },
        Row {
            name: "stale-pub-ring",
            scenario: pub_ring_bug,
            needle: "read as sentinel",
            bound: None,
            expect: [P, P, C],
        },
        Row {
            name: "release-pub-stack-fixed",
            scenario: pub_stack_fixed,
            needle: "",
            bound: None,
            expect: [P, P, P],
        },
        Row {
            name: "fenced-nbw-fixed",
            scenario: fenceless_nbw_fixed,
            needle: "",
            bound: NBW_BOUND,
            expect: [P, P, P],
        },
        Row {
            name: "acquire-msg-passing-fixed",
            scenario: msg_passing_fixed,
            needle: "",
            bound: None,
            expect: [P, P, P],
        },
        Row {
            name: "fenced-nbw-reader-fixed",
            scenario: stale_nbw_fixed,
            needle: "",
            bound: NBW_BOUND,
            expect: [P, P, P],
        },
        Row {
            name: "acquire-pub-ring-fixed",
            scenario: pub_ring_fixed,
            needle: "",
            bound: None,
            expect: [P, P, P],
        },
    ]
}

/// Replays `schedule` under `mode` expecting the row's panic to reproduce.
fn assert_reproduces(mode: MemoryMode, schedule: &Schedule, needle: &str, scenario: fn() -> Plan) {
    let err = std::panic::catch_unwind(|| replay_in(mode, schedule, scenario))
        .expect_err("replay under the producing mode must reproduce the failure");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains(needle),
        "replay produced a different panic: {msg}"
    );
}

/// Offers `schedule` to a weaker `mode`: if it bears decisions the mode
/// cannot honor it must be refused with a message naming them; otherwise it
/// must reproduce the same failure (a pure-preemption schedule means the
/// bug does not need the stronger mode at all, which would falsify the
/// matrix row — the caller only gets here for Caught cells whose weaker
/// cells pass, so decision-free schedules are asserted away).
fn assert_weaker_mode_refuses(mode: MemoryMode, schedule: &Schedule, scenario: fn() -> Plan) {
    let has_reorder = schedule.steps().iter().any(|&id| id >= REORDER_BASE);
    let has_flush = schedule
        .steps()
        .iter()
        .any(|&id| (FLUSH_BASE..REORDER_BASE).contains(&id));
    let windowless = !matches!(mode, MemoryMode::Relaxed { window, .. } if window > 0);
    let bufferless = matches!(mode, MemoryMode::Sc);
    let expected_refusal = if has_flush && bufferless {
        // Flush decisions are rejected first, whatever else the schedule
        // carries.
        "flush decision"
    } else if has_reorder && windowless {
        "stale-read decision"
    } else {
        panic!(
            "matrix violation: schedule {schedule} caught under a stronger mode \
             carries no decision the weaker {mode:?} lacks"
        );
    };
    let err = std::panic::catch_unwind(|| replay_in(mode, schedule, scenario))
        .expect_err("a weaker mode must refuse the schedule");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains(expected_refusal),
        "expected a refusal naming the {expected_refusal}, got: {msg}"
    );
}

#[test]
fn every_cell_of_the_catch_matrix_holds() {
    for row in matrix() {
        let mode_list = modes();
        for (i, (mode_name, mode)) in mode_list.iter().enumerate() {
            let config = Config {
                memory: *mode,
                preemption_bound: row.bound,
                // Static str leak: one tiny allocation per (row, mode), test
                // process only — Config wants a 'static name.
                ..Config::exhaustive(Box::leak(
                    format!("matrix-{}-{}", row.name, mode_name).into_boxed_str(),
                ))
            };
            let report = explore(&config, row.scenario);
            match row.expect[i] {
                P => report.assert_ok(),
                C => {
                    let failure = report.assert_fails();
                    assert!(
                        failure.message.contains(row.needle),
                        "{}/{}: wrong failure: {:?}",
                        row.name,
                        mode_name,
                        failure
                    );
                    // The caught schedule replays deterministically under
                    // the mode that produced it...
                    assert_reproduces(*mode, &failure.schedule, row.needle, row.scenario);
                    // ...and every weaker mode whose cell is P refuses it.
                    for (j, (_, weaker)) in mode_list.iter().enumerate().take(i) {
                        if row.expect[j] == P {
                            assert_weaker_mode_refuses(*weaker, &failure.schedule, row.scenario);
                        }
                    }
                }
            }
        }
    }
}
