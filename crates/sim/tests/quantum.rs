//! Quantum-based scheduling (§1.1's reference \[2\], Anderson et al.):
//! the scheduler additionally fires at every quantum boundary, enabling
//! round-robin-style sharing — and with object accesses shorter than the
//! quantum, contended lock-free accesses retry at most once each.

use lfrt_sim::{
    AccessKind, Decision, Engine, JobId, ObjectId, SchedulerContext, Segment, SharingMode,
    SimConfig, TaskSpec, UaScheduler,
};
use lfrt_tuf::Tuf;
use lfrt_uam::{ArrivalTrace, Uam};

/// Round-robin: rotates the dispatch order one position per invocation —
/// only meaningful when something (the quantum) invokes it periodically.
struct RoundRobin {
    turn: usize,
}

impl RoundRobin {
    fn new() -> Self {
        Self { turn: 0 }
    }
}

impl UaScheduler for RoundRobin {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        let mut order: Vec<JobId> = ctx.jobs.iter().map(|j| j.id).collect();
        order.sort_unstable();
        if !order.is_empty() {
            self.turn = (self.turn + 1) % order.len();
            order.rotate_left(self.turn);
        }
        let ops = order.len() as u64;
        Decision {
            order,
            ops,
            ..Decision::default()
        }
    }
}

fn task(name: &str, critical: u64, segments: Vec<Segment>) -> TaskSpec {
    TaskSpec::builder(name)
        .tuf(Tuf::step(1.0, critical).expect("valid tuf"))
        .uam(Uam::periodic(critical.max(1)))
        .segments(segments)
        .build()
        .expect("valid task")
}

#[test]
fn quantum_time_slices_equal_jobs() {
    // Two identical long jobs; without a quantum, round-robin is never
    // re-invoked mid-run, so the first job runs to completion. With a 100
    // tick quantum they interleave.
    let mk = || {
        (
            vec![
                task("a", 50_000, vec![Segment::Compute(1_000)]),
                task("b", 50_000, vec![Segment::Compute(1_000)]),
            ],
            vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![0])],
        )
    };
    let (tasks, traces) = mk();
    let plain = Engine::new(tasks, traces, SimConfig::new(SharingMode::Ideal))
        .expect("valid engine")
        .run(RoundRobin::new());
    let (tasks, traces) = mk();
    let sliced = Engine::new(
        tasks,
        traces,
        SimConfig::new(SharingMode::Ideal).quantum(100),
    )
    .expect("valid engine")
    .run(RoundRobin::new());
    assert_eq!(plain.metrics.completed(), 2);
    assert_eq!(sliced.metrics.completed(), 2);
    assert_eq!(
        plain.metrics.preemptions(),
        0,
        "nothing interrupts the first job"
    );
    assert!(
        sliced.metrics.preemptions() >= 8,
        "quantum boundaries force interleaving (got {})",
        sliced.metrics.preemptions()
    );
    // Interleaving equalizes completion times: both finish within one
    // quantum of each other instead of 1000 ticks apart.
    let ends: Vec<u64> = sliced.records.iter().map(|r| r.resolved_at).collect();
    assert!(ends[0].abs_diff(ends[1]) <= 200, "{ends:?}");
}

#[test]
fn short_accesses_retry_at_most_once_per_success_under_quantum() {
    // Anderson et al.'s regime: object accesses (s = 20) much shorter than
    // the quantum (200). A preempted access can be invalidated and retried,
    // but the retried attempt fits comfortably inside the next quantum, so
    // retries never chain: retries ≤ successful accesses.
    let access = Segment::Access {
        object: ObjectId::new(0),
        kind: AccessKind::Write,
    };
    let mk_task = |i: usize| task(&format!("t{i}"), 1_000_000, vec![access; 10]);
    let tasks: Vec<TaskSpec> = (0..3).map(mk_task).collect();
    let traces = (0..3).map(|i| ArrivalTrace::new(vec![i * 7])).collect();
    let outcome = Engine::new(
        tasks,
        traces,
        SimConfig::new(SharingMode::LockFree { access_ticks: 20 }).quantum(200),
    )
    .expect("valid engine")
    .run(RoundRobin::new());
    assert_eq!(outcome.metrics.completed(), 3);
    let successful_accesses = 3 * 10;
    assert!(
        outcome.metrics.retries() <= successful_accesses,
        "retries ({}) must not exceed one per successful access ({successful_accesses})",
        outcome.metrics.retries()
    );
}

#[test]
fn quantum_does_not_fire_when_idle() {
    // A single short job: after it completes, quantum boundaries must not
    // keep the simulation (or scheduler) alive.
    let t = task("a", 10_000, vec![Segment::Compute(50)]);
    let outcome = Engine::new(
        vec![t],
        vec![ArrivalTrace::new(vec![0])],
        SimConfig::new(SharingMode::Ideal).quantum(100),
    )
    .expect("valid engine")
    .run(RoundRobin::new());
    assert_eq!(outcome.metrics.completed(), 1);
    // Scheduler fired at arrival, completion, and at most one boundary.
    assert!(outcome.metrics.sched_invocations <= 4);
}
