//! End-to-end test of the experiment runner's JSON output: spawns the real
//! `fig10_13_aur_cmr` binary in `--quick` mode and checks that the report
//! round-trips, carries the expected shape, and is independent of the
//! worker-thread count.

use std::path::PathBuf;
use std::process::Command;

use lfrt_bench::json::{self, Json};

/// Runs the figure 10 sweep with the given worker count and returns the
/// parsed report document.
fn run_quick_sweep(threads: usize, out: &PathBuf) -> Json {
    let status = Command::new(env!("CARGO_BIN_EXE_fig10_13_aur_cmr"))
        .args(["--quick", "--load", "0.4", "--tufs", "step"])
        .args(["--threads", &threads.to_string()])
        .arg("--json")
        .arg(out)
        .status()
        .expect("launch fig10_13_aur_cmr");
    assert!(status.success(), "sweep binary failed");
    let text = std::fs::read_to_string(out).expect("report written");
    json::parse(&text).expect("report parses")
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lfrt_json_report_{}_{name}", std::process::id()))
}

#[test]
fn quick_sweep_json_round_trips_with_expected_shape() {
    let path = scratch("shape.json");
    let doc = run_quick_sweep(2, &path);

    // Envelope.
    assert_eq!(doc.get("schema_version").and_then(Json::as_f64), Some(1.0));
    let meta = doc.get("meta").expect("meta object");
    assert_eq!(
        meta.get("generator").and_then(Json::as_str),
        Some("lfrt-bench")
    );
    assert_eq!(meta.get("threads").and_then(Json::as_f64), Some(2.0));
    assert_eq!(meta.get("quick"), Some(&Json::Bool(true)));

    // Exactly one experiment: figure 10 (load 0.4, step TUFs).
    let experiments = doc
        .get("experiments")
        .and_then(Json::as_array)
        .expect("experiments");
    assert_eq!(experiments.len(), 1);
    let exp = &experiments[0];
    assert_eq!(
        exp.get("experiment").and_then(Json::as_str),
        Some("fig10_13_aur_cmr")
    );
    assert_eq!(exp.get("figure").and_then(Json::as_str), Some("10"));
    assert_eq!(
        exp.get("config")
            .and_then(|c| c.get("load"))
            .and_then(Json::as_f64),
        Some(0.4)
    );

    // Quick mode sweeps objects [1, 4, 10] × 2 seeds.
    let points = exp.get("points").and_then(Json::as_array).expect("points");
    let objects: Vec<f64> = points
        .iter()
        .map(|p| {
            p.get("params")
                .unwrap()
                .get("objects")
                .unwrap()
                .as_f64()
                .unwrap()
        })
        .collect();
    assert_eq!(objects, vec![1.0, 4.0, 10.0]);
    for point in points {
        // Seeds are listed ascending and match the sample count.
        let seeds: Vec<f64> = point
            .get("seeds")
            .and_then(Json::as_array)
            .expect("seeds")
            .iter()
            .map(|s| s.as_f64().expect("numeric seed"))
            .collect();
        assert_eq!(seeds, vec![0.0, 1.0], "seeds must be ascending");
        let metrics = point.get("metrics").expect("metrics");
        for key in [
            "aur_lock_free",
            "aur_lock_based",
            "cmr_lock_free",
            "cmr_lock_based",
        ] {
            let summary = metrics.get(key).unwrap_or_else(|| panic!("metric {key}"));
            let n = summary.get("n").and_then(Json::as_f64).expect("n");
            assert_eq!(n, seeds.len() as f64, "{key}: n must equal the seed count");
            let samples = summary
                .get("samples")
                .and_then(Json::as_array)
                .expect("seed-ordered samples");
            assert_eq!(samples.len(), seeds.len());
            let mean = summary.get("mean").and_then(Json::as_f64).expect("mean");
            let expected: f64 =
                samples.iter().map(|s| s.as_f64().unwrap()).sum::<f64>() / samples.len() as f64;
            assert!(
                (mean - expected).abs() < 1e-9,
                "{key}: mean must match samples"
            );
        }
    }

    // Round trip: parse(print(x)) is identity and printing is canonical.
    let text = doc.to_string_pretty();
    let reparsed = json::parse(&text).expect("round trip");
    assert_eq!(reparsed, doc);
    assert_eq!(reparsed.to_string_pretty(), text);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn payload_is_independent_of_thread_count() {
    let path_serial = scratch("t1.json");
    let path_parallel = scratch("t8.json");
    let serial = run_quick_sweep(1, &path_serial);
    let parallel = run_quick_sweep(8, &path_parallel);

    // The full documents differ (meta.threads, duration), but the
    // deterministic payload must be byte-identical.
    assert_ne!(serial, parallel, "meta must reflect the actual run");
    assert_eq!(
        json::payload(&serial).to_string_pretty(),
        json::payload(&parallel).to_string_pretty(),
        "deterministic payload must not depend on --threads"
    );

    let _ = std::fs::remove_file(&path_serial);
    let _ = std::fs::remove_file(&path_parallel);
}
