//! Epoch-style tagged atomic pointers (see the crate docs for the
//! reclamation policy of this stand-in).

use std::marker::PhantomData;
use std::mem;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of low pointer bits available for tags, from `T`'s alignment.
const fn low_bits<T>() -> usize {
    mem::align_of::<T>() - 1
}

fn decompose<T>(data: usize) -> (*mut T, usize) {
    ((data & !low_bits::<T>()) as *mut T, data & low_bits::<T>())
}

/// A pinned-region token.
///
/// In real crossbeam a `Guard` keeps the current epoch pinned so deferred
/// destructions can eventually run; here destruction is deferred forever, so
/// the guard only serves to scope [`Shared`] lifetimes exactly like the real
/// API does.
#[derive(Debug)]
pub struct Guard {
    _private: (),
}

impl Guard {
    /// Schedules `ptr`'s pointee for destruction once no thread can hold a
    /// reference.
    ///
    /// This stand-in never destroys: the allocation is intentionally leaked
    /// (type-stable-pool semantics; see the crate docs).
    ///
    /// # Safety
    ///
    /// `ptr` must point to a live allocation created through [`Owned`] that
    /// is no longer reachable by new loads.
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        let _ = ptr;
    }
}

/// Pins the current thread and returns a guard scoping loaded pointers.
pub fn pin() -> Guard {
    Guard { _private: () }
}

/// Returns a guard usable without pinning.
///
/// # Safety
///
/// Callers must guarantee exclusive access to the data structure (e.g. from
/// `Drop` via `&mut self`, or before the structure is shared).
pub unsafe fn unprotected() -> &'static Guard {
    static UNPROTECTED: Guard = Guard { _private: () };
    &UNPROTECTED
}

/// An owned, heap-allocated pointer, analogous to `Box<T>`.
pub struct Owned<T> {
    data: usize,
    _marker: PhantomData<Box<T>>,
}

impl<T> Owned<T> {
    /// Allocates `value` on the heap.
    ///
    /// # Panics
    ///
    /// Panics if `T` is a zero-sized type (unsupported by this stand-in).
    pub fn new(value: T) -> Self {
        assert!(mem::size_of::<T>() != 0, "ZSTs are not supported");
        let ptr = Box::into_raw(Box::new(value));
        Self {
            data: ptr as usize,
            _marker: PhantomData,
        }
    }

    /// Converts into a [`Shared`] scoped by `guard`, giving up ownership.
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        let data = self.data;
        mem::forget(self);
        Shared {
            data,
            _marker: PhantomData,
        }
    }

    fn into_usize(self) -> usize {
        let data = self.data;
        mem::forget(self);
        data
    }

    unsafe fn from_usize(data: usize) -> Self {
        Self {
            data,
            _marker: PhantomData,
        }
    }
}

impl<T> std::ops::Deref for Owned<T> {
    type Target = T;

    fn deref(&self) -> &T {
        let (ptr, _) = decompose::<T>(self.data);
        // SAFETY: an `Owned` always holds a live, exclusively owned
        // allocation created in `Owned::new`.
        unsafe { &*ptr }
    }
}

impl<T> std::ops::DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        let (ptr, _) = decompose::<T>(self.data);
        // SAFETY: as in `deref`, plus `&mut self` gives uniqueness.
        unsafe { &mut *ptr }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        let (ptr, _) = decompose::<T>(self.data);
        // SAFETY: the allocation is exclusively owned and was created by
        // `Box::new` in `Owned::new`.
        drop(unsafe { Box::from_raw(ptr) });
    }
}

/// A tagged pointer valid for the guard lifetime `'g`.
pub struct Shared<'g, T> {
    data: usize,
    _marker: PhantomData<(&'g (), *const T)>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Shared<'_, T> {}

impl<T> PartialEq for Shared<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl<T> Eq for Shared<'_, T> {}

impl<T> std::fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (ptr, tag) = decompose::<T>(self.data);
        f.debug_struct("Shared")
            .field("ptr", &ptr)
            .field("tag", &tag)
            .finish()
    }
}

impl<'g, T> Shared<'g, T> {
    /// The null pointer (tag 0).
    pub fn null() -> Self {
        Self {
            data: 0,
            _marker: PhantomData,
        }
    }

    /// Whether the pointer part (ignoring the tag) is null.
    pub fn is_null(&self) -> bool {
        let (ptr, _) = decompose::<T>(self.data);
        ptr.is_null()
    }

    /// The raw, untagged pointer.
    pub fn as_raw(&self) -> *const T {
        let (ptr, _) = decompose::<T>(self.data);
        ptr
    }

    /// The tag packed into the pointer's low bits.
    pub fn tag(&self) -> usize {
        let (_, tag) = decompose::<T>(self.data);
        tag
    }

    /// The same pointer with its tag replaced by `tag` (masked to fit).
    pub fn with_tag(&self, tag: usize) -> Self {
        let (ptr, _) = decompose::<T>(self.data);
        Self {
            data: ptr as usize | (tag & low_bits::<T>()),
            _marker: PhantomData,
        }
    }

    /// Dereferences the pointer.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and the pointee live for `'g`.
    pub unsafe fn deref(&self) -> &'g T {
        &*self.as_raw()
    }

    /// Dereferences if non-null.
    ///
    /// # Safety
    ///
    /// If non-null, the pointee must be live for `'g`.
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        self.as_raw().as_ref()
    }

    /// Reclaims ownership of the allocation.
    ///
    /// # Safety
    ///
    /// The caller must have exclusive access to the pointee (no concurrent
    /// readers or writers), and the pointer must be non-null.
    pub unsafe fn into_owned(self) -> Owned<T> {
        debug_assert!(!self.is_null(), "into_owned on null Shared");
        Owned::from_usize(self.as_raw() as usize)
    }

    fn into_usize(self) -> usize {
        self.data
    }

    unsafe fn from_usize(data: usize) -> Self {
        Self {
            data,
            _marker: PhantomData,
        }
    }
}

/// Sealed conversion between pointer flavours and their packed form, so
/// [`Atomic::compare_exchange`] can accept either [`Owned`] or [`Shared`]
/// as the replacement value and hand it back intact on failure.
pub trait Pointer<T> {
    /// Packs into the tagged-pointer word.
    fn into_usize(self) -> usize;

    /// Unpacks from the tagged-pointer word.
    ///
    /// # Safety
    ///
    /// `data` must have come from `into_usize` of the same flavour.
    unsafe fn from_usize(data: usize) -> Self;
}

impl<T> Pointer<T> for Owned<T> {
    fn into_usize(self) -> usize {
        Owned::into_usize(self)
    }

    unsafe fn from_usize(data: usize) -> Self {
        Owned::from_usize(data)
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_usize(self) -> usize {
        Shared::into_usize(self)
    }

    unsafe fn from_usize(data: usize) -> Self {
        Shared::from_usize(data)
    }
}

/// The error of a failed [`Atomic::compare_exchange`].
pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
    /// The value the atomic actually held.
    pub current: Shared<'g, T>,
    /// The proposed replacement, handed back to the caller.
    pub new: P,
}

/// An atomic tagged pointer to `T`.
pub struct Atomic<T> {
    data: AtomicUsize,
    _marker: PhantomData<*mut T>,
}

// SAFETY: an `Atomic` is a word-sized pointer cell; all access goes through
// atomic operations, so it moves and shares across threads exactly when the
// pointee does.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
// SAFETY: as above.
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// The null pointer.
    pub fn null() -> Self {
        Self {
            data: AtomicUsize::new(0),
            _marker: PhantomData,
        }
    }

    /// Allocates `value` and points at it.
    pub fn new(value: T) -> Self {
        Self {
            data: AtomicUsize::new(Owned::new(value).into_usize()),
            _marker: PhantomData,
        }
    }

    /// Loads the current pointer, scoped by `guard`.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        // SAFETY: the word was stored by `store`/`compare_exchange` from a
        // valid packed pointer.
        unsafe { Shared::from_usize(self.data.load(ord)) }
    }

    /// Stores `new` (a [`Shared`]; this stand-in has no owned-store caller).
    pub fn store(&self, new: Shared<'_, T>, ord: Ordering) {
        self.data.store(new.into_usize(), ord);
    }

    /// Single compare-and-swap: replaces `current` with `new`, returning the
    /// stored pointer on success and the observed one (plus `new`, returned
    /// to the caller) on failure.
    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'_, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let new_data = new.into_usize();
        match self
            .data
            .compare_exchange(current.into_usize(), new_data, success, failure)
        {
            // SAFETY: round-trip of packed words produced by this module.
            Ok(_) => Ok(unsafe { Shared::from_usize(new_data) }),
            // SAFETY: as above; `new` is handed back untouched.
            Err(observed) => Err(CompareExchangeError {
                current: unsafe { Shared::from_usize(observed) },
                new: unsafe { P::from_usize(new_data) },
            }),
        }
    }
}

impl<T> std::fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (ptr, tag) = decompose::<T>(self.data.load(Ordering::Relaxed));
        f.debug_struct("Atomic")
            .field("ptr", &ptr)
            .field("tag", &tag)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};

    #[test]
    fn owned_round_trip_and_drop() {
        let guard = pin();
        let shared = Owned::new(41u64).into_shared(&guard);
        // SAFETY: just created, exclusively ours.
        assert_eq!(unsafe { *shared.deref() }, 41);
        drop(unsafe { shared.into_owned() });
    }

    #[test]
    fn tags_pack_into_alignment_bits() {
        let guard = pin();
        let a: Atomic<u64> = Atomic::new(7);
        let p = a.load(Acquire, &guard);
        assert_eq!(p.tag(), 0);
        let marked = p.with_tag(1);
        assert_eq!(marked.tag(), 1);
        assert_eq!(marked.as_raw(), p.as_raw());
        assert_eq!(marked.with_tag(0), p);
        drop(unsafe { p.into_owned() });
    }

    #[test]
    fn compare_exchange_success_and_failure() {
        let guard = pin();
        let a: Atomic<u64> = Atomic::null();
        let first = Owned::new(1u64);
        let won = a.compare_exchange(Shared::null(), first, Release, Relaxed, &guard);
        assert!(won.is_ok());
        let lost = a.compare_exchange(Shared::null(), Owned::new(2u64), Release, Relaxed, &guard);
        let Err(err) = lost else {
            panic!("CAS against stale value must fail")
        };
        assert_eq!(unsafe { *err.current.deref() }, 1);
        drop(err.new); // handed back, freed normally
        drop(unsafe { a.load(Acquire, &guard).into_owned() });
    }

    #[test]
    fn null_is_null_regardless_of_tag() {
        let p: Shared<'_, u64> = Shared::null().with_tag(1);
        assert!(p.is_null());
        assert_eq!(p.tag(), 1);
    }
}
