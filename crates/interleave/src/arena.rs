//! An append-only node arena: the model analogue of epoch-based reclamation.
//!
//! The real queue/stack implementations lean on `crossbeam`'s epoch scheme
//! for one guarantee: *a node is never reused while any thread may still
//! hold a reference to it* — the property that rules out ABA. An append-only
//! arena provides the same guarantee trivially (nodes are simply never
//! reused within one execution), so the mirrored models inherit exactly the
//! safety the epochs give the real code. The seeded-bug models in
//! [`crate::models::buggy`] demonstrate what happens without it.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::runtime::step_write;

/// Sentinel index standing in for a null pointer.
pub const NIL: usize = usize::MAX;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Append-only storage for model nodes, addressed by index ("pointer").
pub struct Arena<T> {
    nodes: Mutex<Vec<Arc<T>>>,
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Self {
            nodes: Mutex::new(Vec::new()),
        }
    }

    /// Allocates a node and returns its index. One scheduling step: it
    /// mirrors the allocation at the head of the real push/enqueue, and
    /// keeping it scheduled makes index assignment deterministic under
    /// replay.
    pub fn alloc(&self, node: T) -> usize {
        step_write();
        let mut nodes = lock(&self.nodes);
        nodes.push(Arc::new(node));
        nodes.len() - 1
    }

    /// Dereferences an index. Not a step: following a pointer you already
    /// hold is not a shared-memory *access point* in the mirrored
    /// algorithms — the fields behind it are themselves instrumented.
    ///
    /// # Panics
    ///
    /// Panics on [`NIL`] or an out-of-range index — a model bug akin to a
    /// null/dangling dereference.
    pub fn get(&self, index: usize) -> Arc<T> {
        let nodes = lock(&self.nodes);
        assert!(index != NIL, "model dereferenced NIL");
        Arc::clone(&nodes[index])
    }

    /// Number of nodes ever allocated.
    pub fn len(&self) -> usize {
        lock(&self.nodes).len()
    }

    /// Whether no node was ever allocated.
    pub fn is_empty(&self) -> bool {
        lock(&self.nodes).is_empty()
    }
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_sequential_indices() {
        let arena = Arena::new();
        assert_eq!(arena.alloc("a"), 0);
        assert_eq!(arena.alloc("b"), 1);
        assert_eq!(*arena.get(0), "a");
        assert_eq!(*arena.get(1), "b");
        assert_eq!(arena.len(), 2);
    }

    #[test]
    #[should_panic(expected = "model dereferenced NIL")]
    fn nil_dereference_panics() {
        let arena: Arena<u8> = Arena::new();
        let _ = arena.get(NIL);
    }
}
