/// Inputs to the paper's Theorem 3: lock-based versus lock-free worst-case
/// sojourn times for one job `J_i`.
///
/// Both disciplines share the pure-compute time `u_i` and the interference
/// time `I_i`; they differ only in the shared-object terms:
///
/// * lock-based: `r·m_i + B_i` with `B_i = r·min(m_i, n_i)`;
/// * lock-free: `s·m_i + R_i` with `R_i = s·f_i` and
///   `f_i ≤ 3a_i + 2x_i` (Theorem 2).
///
/// Lock-free wins exactly when the lock-based extra exceeds the lock-free
/// extra.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SojournComparison {
    /// `r`: lock-based object access time (critical-section cost), ticks.
    pub lock_based_access: f64,
    /// `s`: lock-free object access time (per attempt), ticks.
    pub lock_free_access: f64,
    /// `m_i`: shared-object accesses per job.
    pub accesses: u64,
    /// `n_i`: number of jobs that could block `J_i`.
    pub blockers: u64,
    /// `a_i`: the job's own task's per-window arrival maximum.
    pub own_max_arrivals: u32,
    /// `x_i = Σ_{j≠i} a_j(⌈C_i/W_j⌉+1)` — see
    /// [`RetryBoundInput::interference_x`](crate::RetryBoundInput::interference_x).
    pub interference_x: u64,
}

impl SojournComparison {
    /// The worst-case shared-object overhead under lock-based sharing:
    /// `r·m_i + r·min(m_i, n_i)`.
    pub fn lock_based_extra(&self) -> f64 {
        self.lock_based_access * (self.accesses + self.accesses.min(self.blockers)) as f64
    }

    /// The Theorem 2 retry bound `f_i = 3a_i + 2x_i`.
    pub fn retry_bound(&self) -> u64 {
        3 * u64::from(self.own_max_arrivals) + 2 * self.interference_x
    }

    /// The worst-case shared-object overhead under lock-free sharing:
    /// `s·m_i + s·f_i`.
    pub fn lock_free_extra(&self) -> f64 {
        self.lock_free_access * (self.accesses + self.retry_bound()) as f64
    }

    /// Whether the worst-case sojourn time is strictly shorter under
    /// lock-free sharing (the exact comparison `X > Y` of the proof).
    pub fn lock_free_wins(&self) -> bool {
        self.lock_based_extra() > self.lock_free_extra()
    }

    /// The exact threshold on `s/r` below which lock-free wins:
    /// `(m_i + min(m_i, n_i)) / (m_i + f_i)`.
    pub fn ratio_threshold(&self) -> f64 {
        let numerator = (self.accesses + self.accesses.min(self.blockers)) as f64;
        let denominator = (self.accesses + self.retry_bound()) as f64;
        if denominator == 0.0 {
            return f64::INFINITY;
        }
        numerator / denominator
    }

    /// The paper's *sufficient* condition for the case `m_i ≤ n_i`:
    /// `s/r < 2/3` (equivalently `r/s > 3/2`).
    pub fn sufficient_condition_m_le_n(&self) -> bool {
        self.lock_free_access / self.lock_based_access < 2.0 / 3.0
    }

    /// The paper's condition for the case `m_i > n_i`:
    /// `s/r < (m_i + n_i) / (m_i + 3a_i + 2x_i)`.
    pub fn condition_m_gt_n(&self) -> bool {
        let ratio = self.lock_free_access / self.lock_based_access;
        ratio < (self.accesses + self.blockers) as f64 / (self.accesses + self.retry_bound()) as f64
    }

    /// The actual ratio `s/r`.
    pub fn ratio(&self) -> f64 {
        self.lock_free_access / self.lock_based_access
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SojournComparison {
        SojournComparison {
            lock_based_access: 100.0,
            lock_free_access: 10.0,
            accesses: 4,
            blockers: 6,
            own_max_arrivals: 1,
            interference_x: 5,
        }
    }

    #[test]
    fn extras_match_hand_computation() {
        let c = base();
        // lock-based: 100 · (4 + min(4,6)) = 800.
        assert_eq!(c.lock_based_extra(), 800.0);
        // f = 3 + 10 = 13; lock-free: 10 · (4 + 13) = 170.
        assert_eq!(c.retry_bound(), 13);
        assert_eq!(c.lock_free_extra(), 170.0);
        assert!(c.lock_free_wins());
    }

    #[test]
    fn threshold_separates_winners() {
        let c = base();
        let threshold = c.ratio_threshold();
        // Just below the threshold lock-free wins…
        let mut winner = c;
        winner.lock_free_access = c.lock_based_access * (threshold - 1e-6);
        assert!(winner.lock_free_wins());
        // …just above, it loses.
        let mut loser = c;
        loser.lock_free_access = c.lock_based_access * (threshold + 1e-6);
        assert!(!loser.lock_free_wins());
    }

    #[test]
    fn equal_access_times_favor_lock_based() {
        // With s == r, retries outnumber blockings, so lock-based wins —
        // the `s/r < 1` necessity in the theorem.
        let mut c = base();
        c.lock_free_access = c.lock_based_access;
        assert!(!c.lock_free_wins());
    }

    #[test]
    fn sufficient_condition_is_conservative() {
        // Whenever m ≤ n and s/r < 2/3 does NOT imply a win in general —
        // the 2/3 bound is sufficient only against the worst-case m; for the
        // exact inputs the threshold may be tighter. Verify the implication
        // that holds: winning is implied by the exact threshold, and the
        // exact threshold never exceeds 1.
        for accesses in [1u64, 2, 5, 20] {
            for blockers in [0u64, 1, 10] {
                for x in [0u64, 3, 12] {
                    // The model bounds n_i by the jobs that can coexist with
                    // J_i: n_i ≤ 2a_i + x_i (used in the Theorem 3 proof).
                    let own_max_arrivals = 2u32;
                    let blockers = blockers.min(2 * u64::from(own_max_arrivals) + x);
                    let c = SojournComparison {
                        lock_based_access: 50.0,
                        lock_free_access: 5.0,
                        accesses,
                        blockers,
                        own_max_arrivals,
                        interference_x: x,
                    };
                    assert!(c.ratio_threshold() <= 1.0 + 1e-12);
                    if c.ratio() < c.ratio_threshold() {
                        assert!(c.lock_free_wins());
                    } else {
                        assert!(!c.lock_free_wins());
                    }
                }
            }
        }
    }

    #[test]
    fn theorem_case_split_matches_exact_comparison_when_m_gt_n() {
        // For m > n the paper's condition is exact (min(m,n) = n).
        let c = SojournComparison {
            lock_based_access: 80.0,
            lock_free_access: 8.0,
            accesses: 10,
            blockers: 3,
            own_max_arrivals: 1,
            interference_x: 4,
        };
        assert!(c.accesses > c.blockers);
        assert_eq!(c.condition_m_gt_n(), c.lock_free_wins());
    }
}
