//! **Theorem 3 audit** — the lock-based/lock-free sojourn-time crossover as
//! a function of the access-time ratio `s/r`.
//!
//! Theorem 3 predicts a threshold on `s/r` below which a job's *worst-case*
//! sojourn time is shorter under lock-free sharing. This binary fixes `r`
//! and sweeps `s`, measuring the worst observed sojourn of the most
//! contended task under both disciplines on the same workload, and prints
//! the analytic threshold alongside — the measured crossover should sit at
//! or above the analytic one (the analysis is worst-case, so lock-free may
//! win even past the analytic threshold, never the other way below it).
//!
//! Usage: `cargo run -p lfrt-bench --release --bin sojourn_crossover --
//! [--r 400] [--seed 3] [--json <path>] [--threads N] [--quick]`

use lfrt_analysis::{RetryBoundInput, SojournComparison};
use lfrt_bench::json::{self, Point, Report};
use lfrt_bench::runner::Sweep;
use lfrt_bench::{table, Args};
use lfrt_core::{RuaLockBased, RuaLockFree};
use lfrt_sim::workload::{ArrivalStyle, TufClass, WorkloadSpec};
use lfrt_sim::{Engine, SharingMode, SimConfig, UaScheduler};
use lfrt_uam::Uam;

fn main() {
    let started = std::time::Instant::now();
    let args = Args::from_env();
    let trace = lfrt_bench::trace::Session::from_args(&args, "sojourn_crossover");
    let quick = args.quick();
    let r = args.get_u64("r", 400);
    let seed = args.get_u64("seed", 3);
    let horizon = args.get_u64("horizon", if quick { 500_000 } else { 2_000_000 });
    let ratios: Vec<u64> = if quick {
        vec![5, 20, 50, 80, 120]
    } else {
        vec![5, 10, 20, 30, 40, 50, 67, 80, 100, 120]
    };

    let spec = WorkloadSpec {
        num_tasks: 6,
        num_objects: 2,
        accesses_per_job: 4,
        tuf_class: TufClass::Step,
        target_load: 0.6,
        window_range: (30_000, 60_000),
        max_burst: 2,
        critical_time_frac: 0.9,
        arrival_style: ArrivalStyle::RandomUam { intensity: 3.0 },
        horizon,
        read_fraction: 0.0,
        seed,
    };
    let (tasks, traces) = spec.build().expect("valid workload");
    let params: Vec<(Uam, u64)> = tasks
        .iter()
        .map(|t| (*t.uam(), t.tuf().critical_time()))
        .collect();

    // Analytic inputs for task 0.
    let bound_input = RetryBoundInput::for_task(&params, 0);
    let x = bound_input.interference_x();
    let m = tasks[0].access_count() as u64;
    let n = x + 2 * u64::from(tasks[0].uam().max_arrivals()); // n_i ≤ 2a_i + x_i
    println!("# Theorem 3 audit: sojourn crossover (r = {r} µs fixed, s swept)");
    println!(
        "# task 0: m = {m}, n ≤ {n}, a = {}, x = {x}",
        tasks[0].uam().max_arrivals()
    );

    let lb_outcome = run(
        tasks.clone(),
        traces.clone(),
        SharingMode::LockBased { access_ticks: r },
        RuaLockBased::new(),
    );
    let lb_worst = worst_sojourn(&lb_outcome, 0);

    // One lock-free simulation per swept ratio; the fixed lock-based run
    // above is shared by every row.
    let lf_worsts = Sweep::new("theorem3", ratios.clone())
        .threads(args.threads())
        .run(|&ratio_pct| {
            let s = (r * ratio_pct / 100).max(1);
            let lf_outcome = run(
                tasks.clone(),
                traces.clone(),
                SharingMode::LockFree { access_ticks: s },
                RuaLockFree::new(),
            );
            worst_sojourn(&lf_outcome, 0)
        });

    let mut report = Report::new(
        "sojourn_crossover",
        "table:theorem3",
        "Theorem 3 sojourn crossover",
    )
    .config("r_ticks", r)
    .config("seed", seed)
    .config("horizon", horizon)
    .config("accesses_m", m)
    .config("blockers_n", n)
    .config("interference_x", x)
    .config("lb_worst_sojourn", lb_worst);

    let mut rows = Vec::new();
    for (&ratio_pct, &lf_worst) in ratios.iter().zip(&lf_worsts) {
        let s = (r * ratio_pct / 100).max(1);
        let comparison = SojournComparison {
            lock_based_access: r as f64,
            lock_free_access: s as f64,
            accesses: m,
            blockers: n,
            own_max_arrivals: tasks[0].uam().max_arrivals(),
            interference_x: x,
        };
        rows.push(vec![
            format!("{:.2}", comparison.ratio()),
            format!("{:.2}", comparison.ratio_threshold()),
            if comparison.lock_free_wins() {
                "lock-free".into()
            } else {
                "lock-based".into()
            },
            lf_worst.to_string(),
            lb_worst.to_string(),
            if lf_worst <= lb_worst {
                "lock-free".into()
            } else {
                "lock-based".into()
            },
        ]);
        report.points.push(Point {
            params: vec![
                ("ratio_pct".into(), ratio_pct.into()),
                ("s_ticks".into(), s.into()),
            ],
            seeds: vec![seed],
            metrics: vec![
                ("ratio".into(), comparison.ratio().into()),
                (
                    "analytic_threshold".into(),
                    comparison.ratio_threshold().into(),
                ),
                (
                    "analytic_lock_free_wins".into(),
                    comparison.lock_free_wins().into(),
                ),
                ("lf_worst_sojourn".into(), lf_worst.into()),
                ("lb_worst_sojourn".into(), lb_worst.into()),
                (
                    "measured_lock_free_wins".into(),
                    (lf_worst <= lb_worst).into(),
                ),
            ],
            timing: Vec::new(),
        });
    }
    table::print(
        "Theorem 3: analytic vs measured winner as s/r grows",
        &[
            "s/r",
            "analytic threshold",
            "analytic winner (worst-case)",
            "measured worst LF sojourn",
            "measured worst LB sojourn",
            "measured winner",
        ],
        &rows,
    );
    println!("\nshape check: below the analytic threshold lock-free must also win empirically.");

    if let Some(path) = args.json_path() {
        let meta = json::RunMeta::capture(args.threads(), quick);
        json::write_reports(&path, &[report], meta, started).expect("write JSON report");
    }
    trace.finish(args.threads(), args.quick());
}

fn worst_sojourn(outcome: &lfrt_sim::SimOutcome, task: usize) -> u64 {
    outcome
        .records
        .iter()
        .filter(|r| r.task.index() == task)
        .map(|r| r.sojourn())
        .max()
        .unwrap_or(0)
}

fn run<S: UaScheduler>(
    tasks: Vec<lfrt_sim::TaskSpec>,
    traces: Vec<lfrt_uam::ArrivalTrace>,
    sharing: SharingMode,
    scheduler: S,
) -> lfrt_sim::SimOutcome {
    Engine::new(tasks, traces, SimConfig::new(sharing))
        .expect("valid engine")
        .run(scheduler)
}
