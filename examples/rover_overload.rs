//! A planetary-rover scenario (the paper's other motivating system is
//! NASA/JPL's Mars Rover [10]): hazard avoidance, locomotion, and science
//! activities with context-dependent execution times share telemetry
//! queues. When terrain gets rough, hazard jobs take longer and the system
//! overloads — exactly the regime where utility-accrual scheduling must
//! shed low-importance science work while keeping hazard responses on time.
//!
//! The example runs a calm phase and a rough-terrain phase and shows how
//! lock-free RUA degrades gracefully (science sheds, hazard holds) while
//! EDF thrashes under the same overload.
//!
//! Run with: `cargo run --release --example rover_overload`

use lockfree_rt::core::{Edf, RuaLockFree};
use lockfree_rt::sim::{
    AccessKind, Engine, ObjectId, Segment, SharingMode, SimConfig, SimOutcome, TaskSpec,
    UaScheduler,
};
use lockfree_rt::tuf::Tuf;
use lockfree_rt::uam::{ArrivalGenerator, ArrivalTrace, RandomUamArrivals, Uam};

const HORIZON: u64 = 3_000_000; // 3 s (1 tick = 1 µs)

fn telemetry(object: usize) -> Segment {
    Segment::Access {
        object: ObjectId::new(object),
        kind: AccessKind::Write,
    }
}

/// `hazard_compute` models context-dependent execution time: calm terrain
/// needs 2 ms per hazard scan, rough terrain 9 ms.
fn build(
    hazard_compute: u64,
) -> Result<(Vec<TaskSpec>, Vec<ArrivalTrace>), Box<dyn std::error::Error>> {
    let mut tasks = Vec::new();
    let mut traces = Vec::new();

    // Hazard avoidance: highest importance, hard 15 ms step deadline,
    // bursty (obstacle clusters).
    let hazard_uam = Uam::new(1, 2, 25_000)?;
    tasks.push(
        TaskSpec::builder("hazard-avoidance")
            .tuf(Tuf::step(100.0, 15_000)?)
            .uam(hazard_uam)
            .segments(vec![
                Segment::Compute(hazard_compute / 2),
                telemetry(0),
                Segment::Compute(hazard_compute - hazard_compute / 2),
            ])
            .build()?,
    );
    traces.push(
        RandomUamArrivals::new(hazard_uam, 1)
            .with_intensity(3.0)
            .generate(HORIZON),
    );

    // Locomotion control: periodic, important, moderate deadline.
    let loco_uam = Uam::periodic(20_000);
    tasks.push(
        TaskSpec::builder("locomotion")
            .tuf(Tuf::step(40.0, 18_000)?)
            .uam(loco_uam)
            .segments(vec![
                Segment::Compute(2_000),
                telemetry(0),
                Segment::Compute(2_000),
            ])
            .build()?,
    );
    traces.push(RandomUamArrivals::new(loco_uam, 2).generate(HORIZON));

    // Science activities: spectrometer sweeps whose value evaporates
    // exponentially while samples sit unanalyzed, and imaging with
    // parabolic value. Low importance; they should be the first to go
    // under overload.
    let sci_uam = Uam::new(1, 2, 30_000)?;
    tasks.push(
        TaskSpec::builder("spectrometer")
            .tuf(Tuf::exponential(10.0, 0.00005, 28_000)?)
            .uam(sci_uam)
            .segments(vec![
                Segment::Compute(2_000),
                telemetry(1),
                Segment::Compute(2_000),
            ])
            .build()?,
    );
    traces.push(
        RandomUamArrivals::new(sci_uam, 3)
            .with_intensity(2.0)
            .generate(HORIZON),
    );

    let img_uam = Uam::new(1, 2, 40_000)?;
    tasks.push(
        TaskSpec::builder("imaging")
            .tuf(Tuf::parabolic(10.0, 35_000)?)
            .uam(img_uam)
            .segments(vec![
                Segment::Compute(3_000),
                telemetry(1),
                Segment::Compute(3_000),
            ])
            .build()?,
    );
    traces.push(
        RandomUamArrivals::new(img_uam, 4)
            .with_intensity(2.0)
            .generate(HORIZON),
    );

    Ok((tasks, traces))
}

fn run<S: UaScheduler>(
    hazard_compute: u64,
    scheduler: S,
) -> Result<SimOutcome, Box<dyn std::error::Error>> {
    let (tasks, traces) = build(hazard_compute)?;
    Ok(Engine::new(
        tasks,
        traces,
        SimConfig::new(SharingMode::LockFree { access_ticks: 15 }),
    )?
    .run(scheduler))
}

fn meets(outcome: &SimOutcome, task: usize) -> (u64, u64) {
    let tm = &outcome.metrics.per_task()[task];
    (tm.completed, tm.released)
}

fn report(label: &str, outcome: &SimOutcome) {
    let (hz_met, hz_rel) = meets(outcome, 0);
    let (loco_met, loco_rel) = meets(outcome, 1);
    let (spec_met, spec_rel) = meets(outcome, 2);
    let (img_met, img_rel) = meets(outcome, 3);
    println!("\n== {label} ==");
    println!(
        "AUR {:.3}  CMR {:.3}",
        outcome.metrics.aur(),
        outcome.metrics.cmr()
    );
    println!("hazard      {hz_met}/{hz_rel}");
    println!("locomotion  {loco_met}/{loco_rel}");
    println!("spectromtr  {spec_met}/{spec_rel}");
    println!("imaging     {img_met}/{img_rel}");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Rover, calm terrain (hazard scans: 2 ms — underload):");
    let calm = run(2_000, RuaLockFree::new())?;
    report("lock-free RUA, calm", &calm);
    assert!(
        calm.metrics.cmr() > 0.9,
        "calm terrain should be (nearly) feasible"
    );

    println!("\nRover, rough terrain (hazard scans: 9 ms — overload):");
    let rough_rua = run(9_000, RuaLockFree::new())?;
    report("lock-free RUA, rough", &rough_rua);
    let rough_edf = run(9_000, Edf::new())?;
    report("EDF, rough", &rough_edf);

    // The UA promise: under overload, RUA protects the important activities.
    let (rua_hz_met, rua_hz_rel) = meets(&rough_rua, 0);
    let (edf_hz_met, edf_hz_rel) = meets(&rough_edf, 0);
    println!(
        "\nhazard avoidance under overload: RUA {:.0}%, EDF {:.0}% — total utility RUA {:.2} vs EDF {:.2}",
        100.0 * rua_hz_met as f64 / rua_hz_rel.max(1) as f64,
        100.0 * edf_hz_met as f64 / edf_hz_rel.max(1) as f64,
        rough_rua.metrics.aur(),
        rough_edf.metrics.aur(),
    );
    Ok(())
}
