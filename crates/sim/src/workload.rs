//! Seeded task-set and arrival-trace builders for the paper's experiments.
//!
//! Experiments in the paper share a common recipe: `N` tasks accessing `K`
//! shared queues, with TUF shapes drawn from a homogeneous (all step) or
//! heterogeneous (step + parabolic + linearly-decreasing) class, scaled to a
//! target *approximate load*. [`WorkloadSpec`] captures that recipe; every
//! parameter is explicit and every random choice is seeded, so a workload is
//! reproducible from its spec alone.

use lfrt_tuf::Tuf;
use lfrt_uam::{
    ArrivalGenerator, ArrivalTrace, BackToBackBurst, PeriodicArrivals, RandomUamArrivals, Uam,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::error::SimError;
use crate::ids::ObjectId;
use crate::segment::{AccessKind, Segment};
use crate::task::TaskSpec;
use crate::Ticks;

/// The TUF shape mix of a workload (the paper's §6.2 classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TufClass {
    /// Homogeneous: every task has a downward step TUF.
    Step,
    /// Heterogeneous: tasks cycle through step, parabolic, and
    /// linearly-decreasing shapes.
    Heterogeneous,
}

/// How arrivals are generated for each task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalStyle {
    /// Strictly periodic (`⟨1, 1, W⟩`).
    Periodic,
    /// Random UAM-conformant arrivals at the given candidate-intensity
    /// multiple of the model's maximum rate.
    RandomUam {
        /// Candidate arrival intensity (1.0 = the UAM max rate).
        intensity: f64,
    },
    /// The adversarial back-to-back burst pattern of the Theorem 2 proof.
    BackToBackBurst,
}

/// A reproducible recipe for a task set plus arrival traces.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Number of tasks `N`.
    pub num_tasks: usize,
    /// Number of shared objects `K`.
    pub num_objects: usize,
    /// Shared-object accesses per job (`m_i`, same for all tasks).
    pub accesses_per_job: usize,
    /// TUF shape mix.
    pub tuf_class: TufClass,
    /// Target approximate load `AL = Σ uᵢ·(aᵢ/Wᵢ)` (object access time
    /// excluded, per the paper's §6.1). Values above 1.0 are overloads.
    pub target_load: f64,
    /// Range of UAM windows `[min, max]` in ticks, sampled uniformly.
    pub window_range: (Ticks, Ticks),
    /// Maximum per-window burst `a_i`, sampled uniformly from `1..=max`.
    pub max_burst: u32,
    /// Critical time as a fraction of the window (`C_i = frac · W_i`).
    pub critical_time_frac: f64,
    /// Arrival generation style.
    pub arrival_style: ArrivalStyle,
    /// Simulation horizon in ticks (arrivals generated in `[0, horizon)`).
    pub horizon: Ticks,
    /// Fraction of accesses that are reads (reads are invalidated by
    /// concurrent writes under lock-free sharing but never invalidate
    /// anyone). 0.0 = all writes (the queue workloads of the paper's §6);
    /// 1.0 = all reads.
    pub read_fraction: f64,
    /// RNG seed; same spec + same seed = same workload.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A 10-task / 10-object baseline mirroring the paper's §6 setup.
    ///
    /// # Examples
    ///
    /// ```
    /// use lfrt_sim::workload::WorkloadSpec;
    ///
    /// # fn main() -> Result<(), lfrt_sim::SimError> {
    /// let (tasks, traces) = WorkloadSpec::paper_baseline(42).build()?;
    /// assert_eq!(tasks.len(), 10);
    /// // Every generated trace is certified against its task's UAM.
    /// for (task, trace) in tasks.iter().zip(&traces) {
    ///     assert!(trace.conforms_to(task.uam()).is_ok());
    /// }
    /// # Ok(())
    /// # }
    /// ```
    pub fn paper_baseline(seed: u64) -> Self {
        Self {
            num_tasks: 10,
            num_objects: 10,
            accesses_per_job: 4,
            tuf_class: TufClass::Step,
            target_load: 0.4,
            window_range: (20_000, 60_000),
            max_burst: 2,
            critical_time_frac: 0.9,
            arrival_style: ArrivalStyle::RandomUam { intensity: 2.0 },
            horizon: 2_000_000,
            read_fraction: 0.0,
            seed,
        }
    }

    /// Builds the task set and one arrival trace per task.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the spec is degenerate (zero tasks, zero
    /// load, empty window range, or horizon shorter than a window).
    ///
    /// # Panics
    ///
    /// Panics if numeric fields are NaN.
    pub fn build(&self) -> Result<(Vec<TaskSpec>, Vec<ArrivalTrace>), SimError> {
        if self.num_tasks == 0 {
            return Err(SimError::MissingField { field: "num_tasks" });
        }
        if self.target_load <= 0.0 || self.target_load.is_nan() {
            return Err(SimError::MissingField {
                field: "target_load",
            });
        }
        if self.window_range.0 == 0 || self.window_range.1 < self.window_range.0 {
            return Err(SimError::MissingField {
                field: "window_range",
            });
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut tasks = Vec::with_capacity(self.num_tasks);
        let mut traces = Vec::with_capacity(self.num_tasks);
        let per_task_load = self.target_load / self.num_tasks as f64;
        for i in 0..self.num_tasks {
            let window = rng.random_range(self.window_range.0..=self.window_range.1);
            let burst = match self.arrival_style {
                ArrivalStyle::Periodic => 1,
                _ => rng.random_range(1..=self.max_burst.max(1)),
            };
            let uam = match self.arrival_style {
                ArrivalStyle::Periodic => Uam::periodic(window),
                _ => Uam::new(1, burst, window).expect("burst >= 1, window > 0"),
            };
            // u_i chosen so that (a_i / W_i) · u_i = per-task load share.
            let compute =
                ((per_task_load * window as f64 / f64::from(burst)).round() as Ticks).max(1);
            let critical =
                ((self.critical_time_frac * window as f64).round() as Ticks).max(compute + 1);
            let importance = rng.random_range(1..=10) as f64;
            let tuf = match self.tuf_class {
                TufClass::Step => Tuf::step(importance, critical),
                TufClass::Heterogeneous => match i % 3 {
                    0 => Tuf::step(importance, critical),
                    1 => Tuf::parabolic(importance, critical),
                    _ => Tuf::linear_decreasing(importance, critical),
                },
            }
            .expect("positive critical time and finite utility");
            let segments = spread_accesses(
                compute,
                self.accesses_per_job,
                self.num_objects,
                self.read_fraction,
                &mut rng,
            );
            tasks.push(
                TaskSpec::builder(format!("task{i}"))
                    .tuf(tuf)
                    .uam(uam)
                    .segments(segments)
                    .build()?,
            );
            let trace = match self.arrival_style {
                ArrivalStyle::Periodic => PeriodicArrivals::new(window).generate(self.horizon),
                ArrivalStyle::RandomUam { intensity } => {
                    RandomUamArrivals::new(uam, self.seed.wrapping_add(i as u64))
                        .with_intensity(intensity)
                        .generate(self.horizon)
                }
                ArrivalStyle::BackToBackBurst => BackToBackBurst::new(uam).generate(self.horizon),
            };
            traces.push(trace);
        }
        Ok((tasks, traces))
    }
}

/// Splits `compute` ticks into `accesses + 1` chunks with an access to a
/// randomly chosen object between consecutive chunks.
fn spread_accesses(
    compute: Ticks,
    accesses: usize,
    num_objects: usize,
    read_fraction: f64,
    rng: &mut StdRng,
) -> Vec<Segment> {
    if accesses == 0 || num_objects == 0 {
        return vec![Segment::Compute(compute)];
    }
    let chunks = accesses as Ticks + 1;
    let base = compute / chunks;
    let remainder = compute % chunks;
    let mut segments = Vec::with_capacity(accesses * 2 + 1);
    for c in 0..chunks {
        let extra = u64::from(c < remainder);
        let chunk = base + extra;
        if chunk > 0 {
            segments.push(Segment::Compute(chunk));
        }
        if (c as usize) < accesses {
            let object = ObjectId::new(rng.random_range(0..num_objects));
            let kind = if read_fraction > 0.0 && rng.random::<f64>() < read_fraction {
                AccessKind::Read
            } else {
                AccessKind::Write
            };
            segments.push(Segment::Access { object, kind });
        }
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_builds_and_hits_load() {
        let spec = WorkloadSpec::paper_baseline(1);
        let (tasks, traces) = spec.build().expect("valid spec");
        assert_eq!(tasks.len(), 10);
        assert_eq!(traces.len(), 10);
        let load: f64 = tasks.iter().map(TaskSpec::max_utilization).sum();
        assert!(
            (load - 0.4).abs() < 0.05,
            "load {load} should be near the 0.4 target"
        );
        for (task, trace) in tasks.iter().zip(&traces) {
            assert!(trace.conforms_to(task.uam()).is_ok());
            assert_eq!(task.access_count(), 4);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = WorkloadSpec::paper_baseline(7).build().expect("valid");
        let b = WorkloadSpec::paper_baseline(7).build().expect("valid");
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        let c = WorkloadSpec::paper_baseline(8).build().expect("valid");
        assert_ne!(a.1, c.1);
    }

    #[test]
    fn zero_accesses_yields_single_compute_segment() {
        let mut spec = WorkloadSpec::paper_baseline(1);
        spec.accesses_per_job = 0;
        let (tasks, _) = spec.build().expect("valid spec");
        for t in &tasks {
            assert_eq!(t.access_count(), 0);
            assert_eq!(t.segments().len(), 1);
        }
    }

    #[test]
    fn overload_spec_builds() {
        let mut spec = WorkloadSpec::paper_baseline(1);
        spec.target_load = 1.1;
        let (tasks, _) = spec.build().expect("valid spec");
        let load: f64 = tasks.iter().map(TaskSpec::max_utilization).sum();
        assert!(load > 1.0);
    }

    #[test]
    fn heterogeneous_mixes_shapes() {
        let mut spec = WorkloadSpec::paper_baseline(1);
        spec.tuf_class = TufClass::Heterogeneous;
        let (tasks, _) = spec.build().expect("valid spec");
        let non_step = tasks
            .iter()
            .filter(|t| !matches!(t.tuf().shape(), lfrt_tuf::TufShape::Step { .. }))
            .count();
        assert!(
            non_step >= 6,
            "expected parabolic and linear TUFs in the mix"
        );
    }

    #[test]
    fn degenerate_specs_rejected() {
        let mut spec = WorkloadSpec::paper_baseline(1);
        spec.num_tasks = 0;
        assert!(spec.build().is_err());
        let mut spec = WorkloadSpec::paper_baseline(1);
        spec.target_load = 0.0;
        assert!(spec.build().is_err());
        let mut spec = WorkloadSpec::paper_baseline(1);
        spec.window_range = (0, 10);
        assert!(spec.build().is_err());
    }

    #[test]
    fn read_fraction_mixes_access_kinds() {
        let mut spec = WorkloadSpec::paper_baseline(1);
        spec.read_fraction = 0.5;
        let (tasks, _) = spec.build().expect("valid spec");
        let (mut reads, mut writes) = (0, 0);
        for t in &tasks {
            for seg in t.segments() {
                match seg {
                    Segment::Access {
                        kind: AccessKind::Read,
                        ..
                    } => reads += 1,
                    Segment::Access {
                        kind: AccessKind::Write,
                        ..
                    } => writes += 1,
                    _ => {}
                }
            }
        }
        assert!(
            reads > 0 && writes > 0,
            "both kinds present: {reads} reads, {writes} writes"
        );
    }

    #[test]
    fn all_read_workload_is_pure_reads() {
        let mut spec = WorkloadSpec::paper_baseline(1);
        spec.read_fraction = 1.0;
        let (tasks, _) = spec.build().expect("valid spec");
        assert!(tasks.iter().all(|t| t.segments().iter().all(|s| !matches!(
            s,
            Segment::Access {
                kind: AccessKind::Write,
                ..
            }
        ))));
    }

    #[test]
    fn compute_split_preserves_total() {
        let mut rng = StdRng::seed_from_u64(0);
        for compute in [1u64, 7, 100, 1_234] {
            for accesses in [0usize, 1, 3, 9] {
                let segs = spread_accesses(compute, accesses, 5, 0.0, &mut rng);
                let total: Ticks = segs.iter().map(Segment::compute_ticks).sum();
                assert_eq!(total, compute);
                let n_access = segs.iter().filter(|s| s.is_access()).count();
                assert_eq!(n_access, accesses);
            }
        }
    }
}
