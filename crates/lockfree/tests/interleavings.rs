//! Bridges the deterministic interleaving harness (`lfrt-interleave`) to
//! the real structures in this crate.
//!
//! The harness explores *models* that mirror these algorithms step for step
//! (see the "Step structure" section in each module here), so its guarantees
//! transfer only if the mirrors are faithful. This suite pins that down from
//! both ends:
//!
//! * **Sequential agreement** — every model and its real counterpart produce
//!   identical results on the same operation sequence, including full/empty
//!   edges. A drift in semantics fails here before it can silently weaken
//!   the exploration results.
//! * **Regressions found or prevented by the harness** — the capacity-1
//!   defect in [`BoundedMpmcQueue::new`] (a single-slot Vyukov ring lets the
//!   second push overwrite the unconsumed first element, then livelocks) was
//!   found by exploring the model; its fix is locked in here against both
//!   the real queue and the model. The ABA scenario demonstrates what the
//!   real stack's epoch reclamation is protecting against: the recycling
//!   variant fails replayably, the append-only mirror survives the same
//!   schedule space.

use std::sync::Arc;

use lfrt_interleave::models::buggy::AbaStack;
use lfrt_interleave::models::{
    ModelMpmcQueue, ModelMsQueue, ModelNbw, ModelSpscRing, ModelTreiberStack,
};
use lfrt_interleave::{explore, replay, Config, Plan};
use lfrt_lockfree::{nbw_register, spsc_ring, BoundedMpmcQueue, LockFreeQueue, TreiberStack};

/// A deterministic mixed push/pop pattern: `true` = push the next value,
/// `false` = pop. Front-loads pops to hit the empty edge, back-loads pushes
/// to hit the full edge of bounded structures.
fn op_pattern() -> Vec<bool> {
    let mut ops = vec![false, true, true, false, false, false, true];
    ops.extend([true, true, true, true, false, true, false, false]);
    ops
}

#[test]
fn model_queue_agrees_with_real_queue() {
    // Model steps are no-ops outside the exploration runtime, so the mirror
    // doubles as a plain sequential implementation here.
    let model = ModelMsQueue::new();
    let real: LockFreeQueue<u64> = LockFreeQueue::new();
    let mut next = 0u64;
    for push in op_pattern() {
        if push {
            next += 1;
            model.enqueue(next);
            real.enqueue(next);
        } else {
            assert_eq!(model.dequeue(), real.dequeue(), "after {next} pushes");
        }
    }
    let mut real_leftover = Vec::new();
    while let Some(v) = real.dequeue() {
        real_leftover.push(v);
    }
    assert_eq!(model.drain_plain(), real_leftover);
}

#[test]
fn model_stack_agrees_with_real_stack() {
    let model = ModelTreiberStack::new();
    let real: TreiberStack<u64> = TreiberStack::new();
    let mut next = 0u64;
    for push in op_pattern() {
        if push {
            next += 1;
            model.push(next);
            real.push(next);
        } else {
            assert_eq!(model.pop(), real.pop(), "after {next} pushes");
        }
    }
    let mut real_leftover = Vec::new();
    while let Some(v) = real.pop() {
        real_leftover.push(v);
    }
    assert_eq!(model.drain_plain(), real_leftover);
}

#[test]
fn model_mpmc_agrees_with_real_mpmc() {
    for capacity in [1, 2, 4] {
        let model = ModelMpmcQueue::new(capacity);
        let real: BoundedMpmcQueue<u64> = BoundedMpmcQueue::new(capacity);
        let mut next = 0u64;
        for push in op_pattern() {
            if push {
                next += 1;
                assert_eq!(
                    model.push(next).is_ok(),
                    real.push(next).is_ok(),
                    "capacity {capacity}, value {next}"
                );
            } else {
                assert_eq!(model.pop(), real.pop(), "capacity {capacity}");
            }
        }
        let mut real_leftover = Vec::new();
        while let Some(v) = real.pop() {
            real_leftover.push(v);
        }
        assert_eq!(model.drain_plain(), real_leftover, "capacity {capacity}");
    }
}

#[test]
fn model_ring_agrees_with_real_ring() {
    for capacity in [1, 3] {
        let model = ModelSpscRing::new(capacity);
        let (mut producer, mut consumer) = spsc_ring::<u64>(capacity);
        let mut next = 0u64;
        for push in op_pattern() {
            if push {
                next += 1;
                assert_eq!(
                    model.push(next).is_ok(),
                    producer.push(next).is_ok(),
                    "capacity {capacity}, value {next}"
                );
            } else {
                assert_eq!(model.pop(), consumer.pop(), "capacity {capacity}");
            }
        }
        let mut real_leftover = Vec::new();
        while let Some(v) = consumer.pop() {
            real_leftover.push(v);
        }
        assert_eq!(model.drain_plain(), real_leftover, "capacity {capacity}");
    }
}

#[test]
fn model_nbw_agrees_with_real_nbw() {
    let model = ModelNbw::new(0, 0);
    let (mut writer, reader) = nbw_register((0u64, 0u64));
    for i in 1..=8u64 {
        assert_eq!(model.read_plain(), reader.read());
        model.write(i, 10 * i);
        writer.write((i, 10 * i));
    }
    assert_eq!(model.read_plain(), reader.read());
}

/// The regression the harness earned its keep on: `BoundedMpmcQueue::new(1)`
/// used to build a single-slot ring, where the second push claims the
/// unconsumed first element's slot (its published sequence equals the next
/// ticket), losing the element and then livelocking `pop`. `new` now floors
/// the ring at two slots; this pins the observable behavior.
#[test]
fn mpmc_capacity_one_regression() {
    let q: BoundedMpmcQueue<u64> = BoundedMpmcQueue::new(1);
    assert_eq!(q.push(1), Ok(()));
    assert_eq!(q.push(2), Ok(()), "two slots minimum");
    assert_eq!(q.push(3), Err(3));
    assert_eq!(q.pop(), Some(1), "first element must not be overwritten");
    assert_eq!(q.pop(), Some(2));
    assert_eq!(q.pop(), None);

    // And the model form of the same regression: a push/push vs pop/pop race
    // on the floored ring conserves both elements in every interleaving.
    explore(&Config::preemptions("mpmc-cap1-regression", 3), || {
        let q = Arc::new(ModelMpmcQueue::new(1));
        let (qp, qc) = (Arc::clone(&q), Arc::clone(&q));
        let popped = Arc::new(std::sync::Mutex::new(Vec::new()));
        let out = Arc::clone(&popped);
        Plan::new()
            .thread(move || {
                assert_eq!(qp.push(1), Ok(()));
                assert_eq!(qp.push(2), Ok(()));
            })
            .thread(move || {
                let mut got = Vec::new();
                got.extend(qc.pop());
                got.extend(qc.pop());
                *out.lock().unwrap() = got;
            })
            .check(move || {
                let mut seen = popped.lock().unwrap().clone();
                seen.extend(q.drain_plain());
                seen.sort_unstable();
                assert_eq!(seen, vec![1, 2], "elements lost or duplicated");
            })
    })
    .assert_ok();
}

/// The ABA scenario, run from the real crate's perspective: the recycling
/// stack (immediate reuse, no grace period) corrupts itself under a schedule
/// the explorer finds and replays; the append-only mirror — the model of
/// what crossbeam's epochs give [`TreiberStack`] — survives the entire
/// schedule space of the same scenario.
#[test]
fn aba_regression_reuse_fails_epochs_survive() {
    fn scenario(recycling: bool) -> Plan {
        let buggy = recycling.then(|| Arc::new(AbaStack::new()));
        let good = (!recycling).then(|| Arc::new(ModelTreiberStack::new()));
        let push = |v: u64| match (&buggy, &good) {
            (Some(s), _) => s.push(v),
            (_, Some(s)) => s.push(v),
            _ => unreachable!(),
        };
        push(1);
        push(2);
        let popped = Arc::new(std::sync::Mutex::new(Vec::new()));
        let (b0, g0, r0) = (buggy.clone(), good.clone(), Arc::clone(&popped));
        let (b1, g1, r1) = (buggy.clone(), good.clone(), Arc::clone(&popped));
        Plan::new()
            .thread(move || {
                let got = match (&b0, &g0) {
                    (Some(s), _) => s.pop(),
                    (_, Some(s)) => s.pop(),
                    _ => unreachable!(),
                };
                r0.lock().unwrap().extend(got);
            })
            .thread(move || {
                let mut out = Vec::new();
                let pop = |s0: &Option<Arc<AbaStack>>, s1: &Option<Arc<ModelTreiberStack>>| match (
                    s0, s1,
                ) {
                    (Some(s), _) => s.pop(),
                    (_, Some(s)) => s.pop(),
                    _ => unreachable!(),
                };
                out.extend(pop(&b1, &g1));
                out.extend(pop(&b1, &g1));
                match (&b1, &g1) {
                    (Some(s), _) => s.push(3),
                    (_, Some(s)) => s.push(3),
                    _ => unreachable!(),
                }
                r1.lock().unwrap().extend(out);
            })
            .check(move || {
                let remaining = match (&buggy, &good) {
                    (Some(s), _) => s.drain_plain(),
                    (_, Some(s)) => s.drain_plain(),
                    _ => unreachable!(),
                };
                let mut seen = popped.lock().unwrap().clone();
                seen.extend(remaining);
                seen.sort_unstable();
                assert_eq!(seen, vec![1, 2, 3], "elements lost or duplicated");
            })
    }

    let report = explore(&Config::exhaustive("lockfree-aba-reuse"), || scenario(true));
    let failure = report.assert_fails();
    assert!(
        failure.message.contains("lost or duplicated"),
        "{failure:?}"
    );
    // The failure must be replayable from its schedule alone.
    let schedule = failure.schedule.clone();
    let err = std::panic::catch_unwind(move || replay(&schedule, || scenario(true)))
        .expect_err("replay must reproduce the ABA corruption");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("lost or duplicated"), "{msg}");

    explore(&Config::exhaustive("lockfree-aba-epochs"), || {
        scenario(false)
    })
    .assert_ok();
}
