use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::event::EventKind;
use crate::SimTime;

/// A deterministic min-time event queue.
///
/// Ties on time are broken by insertion order (a monotone sequence number),
/// so simulations are reproducible regardless of heap internals.
#[derive(Debug, Default)]
pub(crate) struct Calendar {
    heap: BinaryHeap<Reverse<Entry>>,
    seq: u64,
}

#[derive(Debug, PartialEq, Eq)]
struct Entry {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Calendar {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at `time`.
    pub(crate) fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, kind }));
    }

    /// The time of the earliest pending event.
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Pops the earliest event if it is due at or before `now`.
    pub(crate) fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, EventKind)> {
        match self.heap.peek() {
            Some(Reverse(e)) if e.time <= now => {
                let Reverse(e) = self.heap.pop().expect("peeked entry exists");
                Some((e.time, e.kind))
            }
            _ => None,
        }
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TaskId;

    fn arrival(t: usize) -> EventKind {
        EventKind::Arrival {
            task: TaskId::new(t),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut c = Calendar::new();
        c.push(30, arrival(3));
        c.push(10, arrival(1));
        c.push(20, arrival(2));
        assert_eq!(c.peek_time(), Some(10));
        assert_eq!(c.pop_due(100), Some((10, arrival(1))));
        assert_eq!(c.pop_due(100), Some((20, arrival(2))));
        assert_eq!(c.pop_due(100), Some((30, arrival(3))));
        assert!(c.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut c = Calendar::new();
        c.push(5, arrival(0));
        c.push(5, arrival(1));
        c.push(5, arrival(2));
        assert_eq!(c.pop_due(5), Some((5, arrival(0))));
        assert_eq!(c.pop_due(5), Some((5, arrival(1))));
        assert_eq!(c.pop_due(5), Some((5, arrival(2))));
    }

    #[test]
    fn pop_due_respects_now() {
        let mut c = Calendar::new();
        c.push(50, arrival(0));
        assert_eq!(c.pop_due(49), None);
        assert_eq!(c.len(), 1);
        assert_eq!(c.pop_due(50), Some((50, arrival(0))));
    }
}
