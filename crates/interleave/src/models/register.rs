//! Model of the CAS register, mirroring `crates/lockfree/src/register.rs`.

use crate::atomic::Atomic;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release};

/// Single-word read-modify-write register: the primitive "access, check,
/// retry" loop of the paper's §1.1.
pub struct ModelCasRegister {
    value: Atomic<u64>,
}

impl ModelCasRegister {
    /// A register holding `initial`.
    pub fn new(initial: u64) -> Self {
        Self {
            value: Atomic::new(initial),
        }
    }

    /// Mirrors `CasRegister::load`.
    pub fn load(&self) -> u64 {
        self.value.load_ord(Acquire)
    }

    /// Mirrors `CasRegister::store`.
    pub fn store(&self, value: u64) {
        self.value.store_ord(value, Release);
    }

    /// Mirrors `CasRegister::update`: replaces the value with `f(current)`,
    /// retrying on interference; returns the replaced value.
    pub fn update<F: FnMut(u64) -> u64>(&self, mut f: F) -> u64 {
        // U1: initial `self.value.load(Acquire)`.
        let mut current = self.value.load_ord(Acquire);
        loop {
            let next = f(current);
            // U2: `compare_exchange_weak(current, next, AcqRel, Relaxed)` —
            // the model CAS never fails spuriously, which only removes
            // schedules the real loop would immediately retry. The failure
            // value is only fed back as the next expected value, never
            // dereferenced, so `Relaxed` failure suffices (ordlint ORD005).
            match self
                .value
                .compare_exchange_ord(current, next, AcqRel, Relaxed)
            {
                Ok(prev) => return prev,
                Err(actual) => current = actual,
            }
        }
    }

    /// Non-scheduled read for post-checks.
    pub fn load_plain(&self) -> u64 {
        self.value.load_plain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_returns_previous() {
        let r = ModelCasRegister::new(3);
        assert_eq!(r.update(|v| v * 2), 3);
        assert_eq!(r.load(), 6);
        r.store(1);
        assert_eq!(r.load_plain(), 1);
    }
}
