use crate::ids::{JobId, TaskId};

/// An externally scheduled simulator event.
///
/// Internal happenings (segment completions, lock grants) are derived by the
/// engine from execution progress; only arrivals, critical-time timers, and
/// deferred rescheduling live in the calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A job of the given task arrives.
    Arrival {
        /// The releasing task.
        task: TaskId,
    },
    /// The timer armed at a job's arrival fires at its critical time; if the
    /// job is still live it is aborted (§3.5 of the paper).
    CriticalTimeExpiry {
        /// The job whose critical time expires.
        job: JobId,
    },
    /// A scheduling pass deferred past a kernel-busy window.
    Reschedule,
}
