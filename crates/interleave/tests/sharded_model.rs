//! Sharded-queue exploration: the steal-repush twin must lose an element
//! on a deterministically replayable schedule, and the faithful
//! steal-scan must survive the same scenario — plus symmetric cross-shard
//! traffic — under every memory mode. The sharding layer adds no atomics
//! of its own (all steps belong to the per-shard ring protocol), so what
//! is being checked is the *composition*: that returning a stolen element
//! directly, rather than re-publishing it, is what keeps the scan lossless.

use std::sync::{Arc, Mutex};

use lfrt_interleave::models::ModelShardedQueue;
use lfrt_interleave::{explore, replay, Config, FailureKind, MemoryMode, Plan};

type Cell = Arc<Mutex<Vec<u64>>>;

fn cell() -> Cell {
    Arc::new(Mutex::new(Vec::new()))
}

fn conservation_check(pushed: Vec<u64>, popped: Vec<Cell>, remaining: Vec<u64>) {
    let mut seen: Vec<u64> = popped
        .iter()
        .flat_map(|c| c.lock().unwrap().clone())
        .chain(remaining)
        .collect();
    seen.sort_unstable();
    let mut expected = pushed;
    expected.sort_unstable();
    assert_eq!(seen, expected, "elements lost or duplicated");
}

/// The CHESS preemption bound for the cross-mode faithful runs (see
/// `tests/pool_model.rs` for why 3).
const BOUND: Option<usize> = Some(3);

fn config(name: &'static str, memory: MemoryMode) -> Config {
    Config {
        memory,
        preemption_bound: BOUND,
        ..Config::exhaustive(name)
    }
}

fn all_modes() -> [(&'static str, MemoryMode); 3] {
    [
        ("sc", MemoryMode::Sc),
        (
            "tso",
            MemoryMode::StoreBuffer {
                bound: MemoryMode::DEFAULT_BOUND,
            },
        ),
        (
            "relaxed",
            MemoryMode::Relaxed {
                bound: MemoryMode::DEFAULT_BOUND,
                window: MemoryMode::DEFAULT_WINDOW,
            },
        ),
    ]
}

/// Shard-scan lost item. Scenario: two shards of capacity 2; shard 1 holds
/// 10; t0 (home shard 0) pops — its home is empty, so the scan steals 10
/// from shard 1; t1 (home shard 0) pushes 20 and 21, filling shard 0. The
/// hazardous schedule parks t0 between the steal and the twin's "restore
/// affinity" re-push: t1 fills shard 0 in the window, the re-push meets a
/// full ring, and 10 is silently dropped. The faithful scan returns 10
/// directly — there is no window because a stolen element is never
/// re-published.
mod steal_scan_lost_item {
    use super::*;

    fn scenario(repush: bool) -> Plan {
        let queue = Arc::new(if repush {
            ModelShardedQueue::steal_repush(2, 2)
        } else {
            ModelShardedQueue::new(2, 2)
        });
        queue.push_from(1, 10).unwrap();
        let pop0 = cell();
        let q0 = Arc::clone(&queue);
        let r0 = Arc::clone(&pop0);
        let q1 = Arc::clone(&queue);
        Plan::new()
            .thread(move || {
                r0.lock().unwrap().extend(q0.pop_from(0));
            })
            .thread(move || {
                q1.push_from(0, 20).unwrap();
                q1.push_from(0, 21).unwrap();
            })
            .check(move || {
                conservation_check(vec![10, 20, 21], vec![pop0.clone()], queue.drain_plain());
            })
    }

    #[test]
    fn steal_repush_is_caught_and_replayable() {
        let report = explore(&Config::exhaustive("shard-steal-repush"), || scenario(true));
        let failure = report.assert_fails();
        assert_eq!(failure.kind, FailureKind::Panic);
        assert!(
            failure.message.contains("lost or duplicated"),
            "{failure:?}"
        );
        let schedule = failure.schedule.clone();
        let err = std::panic::catch_unwind(move || replay(&schedule, || scenario(true)))
            .expect_err("replay must reproduce the lost steal");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lost or duplicated"), "{msg}");
    }

    #[test]
    fn direct_steal_survives_every_memory_mode() {
        for (mode_name, memory) in all_modes() {
            explore(
                &config(
                    Box::leak(format!("shard-steal-{mode_name}").into_boxed_str()),
                    memory,
                ),
                || scenario(false),
            )
            .assert_ok();
        }
    }
}

/// Symmetric cross-shard traffic: each thread enqueues at its own home and
/// dequeues starting from the *other* home, so every pop exercises the
/// steal path against a concurrent producer.
mod cross_shard_traffic {
    use super::*;

    fn scenario() -> Plan {
        let queue = Arc::new(ModelShardedQueue::new(2, 2));
        let (pop0, pop1) = (cell(), cell());
        let q0 = Arc::clone(&queue);
        let r0 = Arc::clone(&pop0);
        let q1 = Arc::clone(&queue);
        let r1 = Arc::clone(&pop1);
        Plan::new()
            .thread(move || {
                q0.push_from(0, 1).unwrap();
                r0.lock().unwrap().extend(q0.pop_from(1));
            })
            .thread(move || {
                q1.push_from(1, 2).unwrap();
                r1.lock().unwrap().extend(q1.pop_from(0));
            })
            .check(move || {
                conservation_check(
                    vec![1, 2],
                    vec![pop0.clone(), pop1.clone()],
                    queue.drain_plain(),
                );
            })
    }

    #[test]
    fn cross_steals_survive_every_memory_mode() {
        for (mode_name, memory) in all_modes() {
            explore(
                &config(
                    Box::leak(format!("shard-cross-{mode_name}").into_boxed_str()),
                    memory,
                ),
                scenario,
            )
            .assert_ok();
        }
    }
}
