//! PRG002 fixtures: the same blocking helper behind a lock_free-declared
//! op (fires) and a blocking-declared op (class gating: clean).

pub struct Prg002Broken {
    inner: Mutex<Vec<u64>>,
}

impl Prg002Broken {
    pub fn op(&self) -> u64 {
        self.sample()
    }

    fn sample(&self) -> u64 {
        *self.inner.lock().unwrap().first().unwrap_or(&0)
    }
}

pub struct Prg002Blocking {
    inner: Mutex<Vec<u64>>,
}

impl Prg002Blocking {
    pub fn op(&self) -> u64 {
        self.sample()
    }

    fn sample(&self) -> u64 {
        *self.inner.lock().unwrap().first().unwrap_or(&0)
    }
}
