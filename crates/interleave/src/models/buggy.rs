//! Intentionally broken variants of the mirrored models.
//!
//! These exist to prove the explorer earns its keep: each struct plants one
//! classic lock-free bug, and a test in `tests/explorer.rs` (plus the
//! regression suite in `crates/lockfree/tests/interleavings.rs`) asserts
//! the explorer finds a schedule exposing it — and that the faithful model
//! of the real algorithm survives the *same* scenario.
//!
//! The planted bugs:
//! - [`RacyStack`]: Treiber pop with the CAS replaced by a blind store —
//!   the textbook lost update.
//! - [`AbaStack`]: Treiber stack over a recycling arena that reuses freed
//!   node slots immediately (no epoch/grace period) — the ABA problem the
//!   paper's §1.2 discusses and crossbeam's epochs prevent in
//!   `crates/lockfree`.
//! - [`TornNbw`]: the NBW payload without the version protocol — readers
//!   can observe half of one write and half of another.
//!
//! Two further variants are **weak-memory** bugs: correct under every
//! sequentially consistent interleaving, broken only once stores can
//! reorder, so they need [`crate::Config::store_buffer`] exploration
//! (`tests/weak_memory.rs`) — the demonstrators that the store-buffer mode
//! is strictly stronger than SC exploration:
//! - [`RelaxedPubStack`]: a node published with a `Relaxed` store, so the
//!   publication can commit before the node's initialization (ordlint rule
//!   ORD001's dynamic counterpart).
//! - [`FencelessNbw`]: the NBW writer without its `Release` fence, so a
//!   payload write can commit before the version goes odd and a reader
//!   accepts a torn snapshot.
//!
//! Three final variants are **load-reordering** bugs: their store side is
//! fully correct (`Release` publication, fenced writer), so they pass
//! exhaustively under SC *and* under the store-buffer mode — only
//! [`crate::Config::relaxed`] exploration (`tests/relaxed_memory.rs`),
//! where `Relaxed` loads may read stale values, catches them. They are the
//! demonstrators that the relaxed mode is strictly stronger than TSO:
//! - [`MsgPassing`]: a message-passing consumer whose flag *and* data loads
//!   are `Relaxed` — the classic load-buffering shape; the data load
//!   effectively hoists above the flag load and reads the pre-publication
//!   value.
//! - [`StaleNbwReader`]: a seqlock/NBW reader with the `Acquire` fence
//!   between the payload reads and the version recheck deleted — the
//!   recheck may read a *stale* even version and validate a torn snapshot.
//! - [`StalePubRing`]: a ring consumer that reads the `Release`-published
//!   tail with `Relaxed` — it can observe the producer's slot/tail
//!   publication pair in the wrong order (the reader-visible face of
//!   store–store reordering) and dereference an unwritten slot.

use std::sync::atomic::Ordering;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
use std::sync::{Arc, Mutex};

use crate::arena::NIL;
use crate::atomic::{fence, Atomic};
use crate::runtime;
use crate::runtime::spin_hint;

/// A Treiber-like stack whose pop *stores* the new top instead of CAS-ing
/// it. Two overlapping pops can both read the same top, both "succeed", and
/// return the same element while losing another.
pub struct RacyStack {
    top: Atomic<usize>,
    nodes: Mutex<Vec<Arc<RacyNode>>>,
}

struct RacyNode {
    value: u64,
    next: Atomic<usize>,
}

impl RacyStack {
    /// An empty stack.
    pub fn new() -> Self {
        Self {
            top: Atomic::new(NIL),
            nodes: Mutex::new(Vec::new()),
        }
    }

    fn get(&self, idx: usize) -> Arc<RacyNode> {
        Arc::clone(&self.nodes.lock().unwrap_or_else(|e| e.into_inner())[idx])
    }

    /// Correct Treiber push (the bug is confined to `pop`).
    pub fn push(&self, value: u64) {
        runtime::step_write(); // allocation, like `Arena::alloc`
        let idx = {
            let mut nodes = self.nodes.lock().unwrap_or_else(|e| e.into_inner());
            nodes.push(Arc::new(RacyNode {
                value,
                next: Atomic::new(NIL),
            }));
            nodes.len() - 1
        };
        let node = self.get(idx);
        loop {
            let top = self.top.load();
            node.next.store_plain(top);
            if self.top.compare_exchange(top, idx).is_ok() {
                return;
            }
        }
    }

    /// BUG: detaches the top with a plain store. A pop that parked between
    /// the load and the store clobbers a concurrent pop's update.
    pub fn pop(&self) -> Option<u64> {
        let top = self.top.load();
        if top == NIL {
            return None;
        }
        let node = self.get(top);
        let next = node.next.load();
        // Should be `compare_exchange(top, next)`.
        self.top.store(next);
        Some(node.value)
    }

    /// Post-check helper (single-threaded use only).
    pub fn drain_plain(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cursor = self.top.load_plain();
        while cursor != NIL {
            let node = self.get(cursor);
            out.push(node.value);
            cursor = node.next.load_plain();
        }
        out
    }
}

impl Default for RacyStack {
    fn default() -> Self {
        Self::new()
    }
}

struct AbaNode {
    value: Atomic<u64>,
    next: Atomic<usize>,
}

/// A Treiber stack over a **recycling** arena: `pop` returns the node's
/// index to a free list and `push` reuses the oldest freed index
/// immediately. The push/pop step structure is exactly
/// [`crate::models::ModelTreiberStack`]'s — the only difference is
/// reclamation, which is the whole point: with reuse, a parked pop's
/// `compare_exchange(top, next)` can succeed against a *recycled* node that
/// happens to carry the same index (A → B → A), splicing a freed node back
/// into the stack. The faithful model's append-only [`crate::Arena`]
/// (standing in for crossbeam's epochs) makes that schedule harmless.
pub struct AbaStack {
    top: Atomic<usize>,
    nodes: Mutex<Vec<Arc<AbaNode>>>,
    /// Freed indices, reused FIFO.
    free: Mutex<Vec<usize>>,
}

impl AbaStack {
    /// An empty stack.
    pub fn new() -> Self {
        Self {
            top: Atomic::new(NIL),
            nodes: Mutex::new(Vec::new()),
            free: Mutex::new(Vec::new()),
        }
    }

    fn get(&self, idx: usize) -> Arc<AbaNode> {
        Arc::clone(&self.nodes.lock().unwrap_or_else(|e| e.into_inner())[idx])
    }

    /// BUG (half 1): allocation reuses the oldest freed slot.
    fn alloc(&self, value: u64) -> usize {
        runtime::step_write(); // one scheduled step, like `Arena::alloc`
        let reused = {
            let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
            if free.is_empty() {
                None
            } else {
                Some(free.remove(0))
            }
        };
        match reused {
            Some(idx) => {
                let node = self.get(idx);
                node.value.store_plain(value);
                node.next.store_plain(NIL);
                idx
            }
            None => {
                let mut nodes = self.nodes.lock().unwrap_or_else(|e| e.into_inner());
                nodes.push(Arc::new(AbaNode {
                    value: Atomic::new(value),
                    next: Atomic::new(NIL),
                }));
                nodes.len() - 1
            }
        }
    }

    /// Same steps as `ModelTreiberStack::push`.
    pub fn push(&self, value: u64) {
        let idx = self.alloc(value);
        let node = self.get(idx);
        loop {
            let top = self.top.load();
            node.next.store_plain(top);
            if self.top.compare_exchange(top, idx).is_ok() {
                return;
            }
        }
    }

    /// Same steps as `ModelTreiberStack::pop`, plus: BUG (half 2) — the
    /// winning pop frees its node immediately instead of deferring to a
    /// grace period.
    pub fn pop(&self) -> Option<u64> {
        loop {
            let top = self.top.load();
            if top == NIL {
                return None;
            }
            let node = self.get(top);
            let next = node.next.load();
            if self.top.compare_exchange(top, next).is_ok() {
                let value = node.value.load_plain();
                self.free
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(top);
                return Some(value);
            }
        }
    }

    /// Post-check helper (single-threaded use only).
    pub fn drain_plain(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cursor = self.top.load_plain();
        while cursor != NIL {
            let node = self.get(cursor);
            out.push(node.value.load_plain());
            cursor = node.next.load_plain();
        }
        out
    }
}

impl Default for AbaStack {
    fn default() -> Self {
        Self::new()
    }
}

/// The NBW payload with the version protocol deleted: a reader overlapping
/// a write can return `a` from the new write and `b` from the old one — the
/// torn read the real register's version check exists to reject.
pub struct TornNbw {
    a: Atomic<u64>,
    b: Atomic<u64>,
}

impl TornNbw {
    /// A register holding `(a, b)`.
    pub fn new(a: u64, b: u64) -> Self {
        Self {
            a: Atomic::new(a),
            b: Atomic::new(b),
        }
    }

    /// BUG: publishes the two words with no version bracket.
    pub fn write(&self, a: u64, b: u64) {
        self.a.store(a);
        self.b.store(b);
    }

    /// BUG: reads the two words with no consistency check.
    pub fn read(&self) -> (u64, u64) {
        (self.a.load(), self.b.load())
    }
}

/// A single-producer linked stack whose push *publishes* the node with a
/// store of configurable ordering — the publish-before-initialize bug of
/// ordlint rule ORD001, in executable form.
///
/// `push` initializes the node's payload and link with `Relaxed` stores and
/// then makes the node reachable by storing its index to `top`. With a
/// `Relaxed` publish ([`RelaxedPubStack::relaxed`]) nothing orders the
/// publication after the initialization: under
/// [`crate::MemoryMode::StoreBuffer`] the `top` store may commit first, and
/// a concurrent `peek` dereferences a node whose payload write is still
/// sitting in the producer's store buffer — it reads the slot's stale
/// sentinel. Under sequential consistency the program-order steps are the
/// visibility order, so SC exploration passes every schedule; the same
/// structure with a `Release` publish ([`RelaxedPubStack::release`]) passes
/// even under the store buffer, because a `Release` store only commits once
/// the initialization has.
pub struct RelaxedPubStack {
    top: Atomic<usize>,
    nodes: Vec<PubNode>,
    publish: Ordering,
}

struct PubNode {
    value: Atomic<u64>,
    next: Atomic<usize>,
}

impl RelaxedPubStack {
    /// A stack with `slots` preallocated nodes, payloads zeroed (so a leaked
    /// uninitialized read is observable as `0`), publishing with `publish`.
    pub fn new(slots: usize, publish: Ordering) -> Self {
        Self {
            top: Atomic::new(NIL),
            nodes: (0..slots)
                .map(|_| PubNode {
                    value: Atomic::new(0),
                    next: Atomic::new(NIL),
                })
                .collect(),
            publish,
        }
    }

    /// The buggy variant: `Relaxed` publication.
    pub fn relaxed(slots: usize) -> Self {
        Self::new(slots, Relaxed)
    }

    /// The fixed counterpart: `Release` publication, same step structure.
    pub fn release(slots: usize) -> Self {
        Self::new(slots, Release)
    }

    /// Initializes node `slot` with `value` and publishes it as the new top.
    /// Single-producer: callers must not push the same slot twice or push
    /// concurrently (matching the SPSC-style ownership the pattern models).
    pub fn push(&self, slot: usize, value: u64) {
        let node = &self.nodes[slot];
        // The producer owns `top` for writing, so a `Relaxed` read suffices.
        let top = self.top.load_ord(Relaxed);
        // Node initialization: `Relaxed` on purpose — ordering is supposed
        // to come from the *publish* store below.
        node.value.store_ord(value, Relaxed);
        node.next.store_ord(top, Relaxed);
        // Publication. BUG when `self.publish` is `Relaxed`: may become
        // visible before the two initialization stores above.
        self.top.store_ord(slot, self.publish);
    }

    /// Dereferences the current top's payload, or `None` on an empty stack.
    pub fn peek(&self) -> Option<u64> {
        let top = self.top.load_ord(Acquire);
        if top == NIL {
            return None;
        }
        Some(self.nodes[top].value.load_ord(Relaxed))
    }
}

/// The NBW writer with its `Release` fence deleted. The version protocol is
/// intact — under sequential consistency every interleaving still passes —
/// but with nothing ordering the version-odd store before the payload
/// stores, a payload write can commit *first*: a reader then observes the
/// old even version, a half-new payload, and a recheck that still sees the
/// old even version, accepting the torn snapshot
/// [`crate::models::ModelNbw`]'s fence exists to prevent.
pub struct FencelessNbw {
    version: Atomic<u64>,
    a: Atomic<u64>,
    b: Atomic<u64>,
    /// When true, the `Release` fence is restored — the fixed counterpart,
    /// step-identical otherwise.
    fenced: bool,
}

impl FencelessNbw {
    /// A register holding `(a, b)` with the writer's fence deleted.
    pub fn new(a: u64, b: u64) -> Self {
        Self::with_fence(a, b, false)
    }

    /// The fixed counterpart: same steps, fence restored.
    pub fn fixed(a: u64, b: u64) -> Self {
        Self::with_fence(a, b, true)
    }

    fn with_fence(a: u64, b: u64, fenced: bool) -> Self {
        Self {
            version: Atomic::new(0),
            a: Atomic::new(a),
            b: Atomic::new(b),
            fenced,
        }
    }

    /// `ModelNbw::write` minus the `Release` fence (unless `fixed`).
    pub fn write(&self, a: u64, b: u64) {
        let v = self.version.load_ord(Relaxed);
        self.version.store_ord(v + 1, Relaxed);
        // BUG: `ModelNbw` fences here; without it the payload stores below
        // may commit before the version goes odd.
        if self.fenced {
            fence(Release);
        }
        self.a.store_ord(a, Relaxed);
        self.b.store_ord(b, Relaxed);
        self.version.store_ord(v + 2, Release);
    }

    /// Identical to `ModelNbw::read`.
    pub fn read(&self) -> (u64, u64) {
        loop {
            let v1 = self.version.load_ord(Acquire);
            if !v1.is_multiple_of(2) {
                spin_hint();
                continue;
            }
            let a = self.a.load_ord(Relaxed);
            let b = self.b.load_ord(Relaxed);
            fence(Acquire);
            if self.version.load_ord(Relaxed) == v1 {
                return (a, b);
            }
        }
    }
}

/// The classic message-passing litmus test with a load-buffering consumer.
///
/// The producer is *correct*: it initializes `data` and then publishes with
/// a `Release` store to `flag`, so under TSO the store buffer commits `data`
/// before `flag` and a consumer that sees `flag == 1` always sees
/// `data == MSG`. The BUG is on the consumer: both its loads are `Relaxed`,
/// so on ARM/POWER-class hardware the `data` load may effectively hoist
/// above the `flag` load — it reads a *stale* pre-publication `data` even
/// though `flag` already reads 1. Store-buffer exploration cannot catch
/// this (loads there always read the freshest committed value); only
/// [`crate::Config::relaxed`], where the stale read is an explicit
/// `REORDER`-range decision, does.
pub struct MsgPassing {
    data: Atomic<u64>,
    flag: Atomic<u64>,
    /// Ordering of the consumer's `flag` load: `Relaxed` is the bug,
    /// `Acquire` the fix (it drains the consumer's stale set, so the
    /// subsequent `data` load must see the publication).
    consume: Ordering,
}

/// The value [`MsgPassing::publish`] hands over; `data`'s initial value is 0.
pub const MSG: u64 = 42;

impl MsgPassing {
    /// The buggy variant: consumer reads the flag with `Relaxed`.
    pub fn relaxed() -> Self {
        Self::with_consume(Relaxed)
    }

    /// The fixed counterpart: consumer reads the flag with `Acquire`.
    pub fn acquire() -> Self {
        Self::with_consume(Acquire)
    }

    fn with_consume(consume: Ordering) -> Self {
        Self {
            data: Atomic::new(0),
            flag: Atomic::new(0),
            consume,
        }
    }

    /// Correct producer: initialize, then `Release`-publish.
    pub fn publish(&self) {
        self.data.store_ord(MSG, Relaxed);
        self.flag.store_ord(1, Release);
    }

    /// Consumer: if the flag is up, read the message. Returns `None` when
    /// the publication is not (yet) visible — only a `Some` carries the
    /// correctness obligation that the message is complete.
    pub fn consume(&self) -> Option<u64> {
        if self.flag.load_ord(self.consume) == 1 {
            // BUG (when `consume` is `Relaxed`): nothing orders this load
            // after the flag load, so it may read the stale 0.
            Some(self.data.load_ord(Relaxed))
        } else {
            None
        }
    }
}

/// The NBW/seqlock reader with its `Acquire` fence deleted — the read-side
/// dual of [`FencelessNbw`].
///
/// The *writer* here is fully correct (identical to
/// [`crate::models::ModelNbw::write`], `Release` fence and all), so the
/// store side can never commit out of order: under SC and under the
/// store-buffer mode every interleaving passes. The BUG is that without the
/// `Acquire` fence between the payload loads and the version recheck, the
/// recheck — a `Relaxed` load — may read a *stale* copy of the version that
/// still equals `v1`, validating a snapshot whose payload loads in fact
/// straddled a concurrent write. Catching it needs a stale-value window of
/// at least 2: the recheck must read past both the odd and the new even
/// version ([`crate::runtime::MemoryMode`]'s `DEFAULT_WINDOW` is sized for
/// exactly this).
pub struct StaleNbwReader {
    version: Atomic<u64>,
    a: Atomic<u64>,
    b: Atomic<u64>,
    /// When true, the reader's `Acquire` fence is restored — the fixed
    /// counterpart, step-identical under SC and store-buffer modes.
    fenced: bool,
}

impl StaleNbwReader {
    /// A register holding `(a, b)` with the reader's fence deleted.
    pub fn new(a: u64, b: u64) -> Self {
        Self::with_fence(a, b, false)
    }

    /// The fixed counterpart: same steps, fence restored.
    pub fn fixed(a: u64, b: u64) -> Self {
        Self::with_fence(a, b, true)
    }

    fn with_fence(a: u64, b: u64, fenced: bool) -> Self {
        Self {
            version: Atomic::new(0),
            a: Atomic::new(a),
            b: Atomic::new(b),
            fenced,
        }
    }

    /// Identical to `ModelNbw::write` — the correct, fenced writer.
    pub fn write(&self, a: u64, b: u64) {
        let v = self.version.load_ord(Relaxed);
        self.version.store_ord(v + 1, Relaxed);
        fence(Release);
        self.a.store_ord(a, Relaxed);
        self.b.store_ord(b, Relaxed);
        self.version.store_ord(v + 2, Release);
    }

    /// `ModelNbw::read` minus the `Acquire` fence (unless `fixed`).
    pub fn read(&self) -> (u64, u64) {
        loop {
            let v1 = self.version.load_ord(Acquire);
            if !v1.is_multiple_of(2) {
                spin_hint();
                continue;
            }
            let a = self.a.load_ord(Relaxed);
            let b = self.b.load_ord(Relaxed);
            // BUG: `ModelNbw` fences here; without it the recheck below may
            // read a stale even version from before a concurrent write.
            if self.fenced {
                fence(Acquire);
            }
            if self.version.load_ord(Relaxed) == v1 {
                return (a, b);
            }
        }
    }
}

/// A two-entry publication ring whose consumer reads the tail with
/// `Relaxed` — the reader-visible face of store–store reordering.
///
/// The producer is *correct*: each slot is written before the tail is
/// advanced with a `Release` store, so the slot/tail pair always commits in
/// order. The BUG is the consumer's `Relaxed` tail load: with no acquire
/// edge, the consumer can observe the pair in the *wrong* order — a fresh
/// tail alongside a stale, still-sentinel slot — exactly as if the
/// producer's stores had been reordered. Under SC and store-buffer modes
/// the `Release` tail store makes this unobservable; only relaxed-mode
/// stale reads expose it.
pub struct StalePubRing {
    slots: [Atomic<u64>; 2],
    tail: Atomic<u64>,
    /// Ordering of the consumer's tail load: `Relaxed` is the bug,
    /// `Acquire` the fix.
    observe: Ordering,
}

impl StalePubRing {
    /// The buggy variant: consumer reads the tail with `Relaxed`.
    pub fn relaxed() -> Self {
        Self::with_observe(Relaxed)
    }

    /// The fixed counterpart: consumer reads the tail with `Acquire`.
    pub fn acquire() -> Self {
        Self::with_observe(Acquire)
    }

    fn with_observe(observe: Ordering) -> Self {
        Self {
            // 0 is the sentinel for "never written".
            slots: [Atomic::new(0), Atomic::new(0)],
            tail: Atomic::new(0),
            observe,
        }
    }

    /// Correct producer: publish entries `1` and `2` into the two slots,
    /// each slot write ordered before its tail advance by `Release`.
    pub fn produce(&self) {
        for (i, slot) in self.slots.iter().enumerate() {
            slot.store_ord(i as u64 + 1, Relaxed);
            self.tail.store_ord(i as u64 + 1, Release);
        }
    }

    /// Consumer: snapshot the tail, then read every published slot.
    /// Returns the slot values read; the caller asserts none is the
    /// sentinel 0, which is the obligation the tail publication carries.
    pub fn consume(&self) -> Vec<u64> {
        // BUG (when `observe` is `Relaxed`): no acquire edge, so the slot
        // loads below may read stale sentinels despite a fresh tail.
        let t = self.tail.load_ord(self.observe);
        (0..t as usize)
            .map(|i| self.slots[i].load_ord(Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_threaded_all_behave() {
        // Absent interference every variant looks correct — the bugs only
        // exist in specific interleavings, which is why they need the
        // explorer at all.
        let racy = RacyStack::new();
        racy.push(1);
        racy.push(2);
        assert_eq!(racy.pop(), Some(2));
        assert_eq!(racy.drain_plain(), vec![1]);

        let aba = AbaStack::new();
        aba.push(1);
        aba.push(2);
        assert_eq!(aba.pop(), Some(2));
        aba.push(3); // reuses node 1's slot
        assert_eq!(aba.pop(), Some(3));
        assert_eq!(aba.pop(), Some(1));
        assert_eq!(aba.pop(), None);

        let torn = TornNbw::new(0, 0);
        torn.write(3, 6);
        assert_eq!(torn.read(), (3, 6));

        // The weak-memory variants are indistinguishable from their fixed
        // counterparts outside a store-buffer execution.
        let pubstack = RelaxedPubStack::relaxed(2);
        assert_eq!(pubstack.peek(), None);
        pubstack.push(0, 41);
        pubstack.push(1, 42);
        assert_eq!(pubstack.peek(), Some(42));

        let fenceless = FencelessNbw::new(0, 0);
        fenceless.write(3, 6);
        assert_eq!(fenceless.read(), (3, 6));

        // The load-reordering variants are additionally indistinguishable
        // under store-buffer executions — they need the relaxed mode.
        let mp = MsgPassing::relaxed();
        assert_eq!(mp.consume(), None);
        mp.publish();
        assert_eq!(mp.consume(), Some(MSG));

        let stale = StaleNbwReader::new(0, 0);
        stale.write(3, 6);
        assert_eq!(stale.read(), (3, 6));

        let ring = StalePubRing::relaxed();
        assert_eq!(ring.consume(), Vec::<u64>::new());
        ring.produce();
        assert_eq!(ring.consume(), vec![1, 2]);
    }
}
