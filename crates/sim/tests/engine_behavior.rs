//! Behavioral tests pinning the engine's semantics: preemption, blocking,
//! lock-free retries, aborts, overhead charging, and determinism.

use lfrt_sim::{
    AccessKind, Decision, Engine, JobId, ObjectId, OverheadModel, SchedulerContext, Segment,
    SharingMode, SimConfig, TaskSpec, UaScheduler,
};
use lfrt_tuf::Tuf;
use lfrt_uam::{ArrivalTrace, Uam};

/// A plain EDF scheduler (earliest absolute critical time first), used as a
/// deterministic harness for exercising engine semantics.
struct Edf;

impl UaScheduler for Edf {
    fn name(&self) -> &str {
        "edf-test"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        let mut order: Vec<JobId> = ctx.jobs.iter().map(|j| j.id).collect();
        order.sort_by_key(|&id| {
            let j = ctx.job(id).expect("listed job");
            (j.absolute_critical_time, id)
        });
        Decision {
            order,
            ops: ctx.jobs.len() as u64,
            ..Decision::default()
        }
    }
}

/// A scheduler that never schedules anything, exercising the engine's
/// work-conserving fallback.
struct Lazy;

impl UaScheduler for Lazy {
    fn name(&self) -> &str {
        "lazy"
    }

    fn schedule(&mut self, _ctx: &SchedulerContext<'_>) -> Decision {
        Decision {
            order: Vec::new(),
            ops: 1,
            ..Decision::default()
        }
    }
}

fn task(name: &str, utility: f64, critical: u64, window: u64, segments: Vec<Segment>) -> TaskSpec {
    TaskSpec::builder(name)
        .tuf(Tuf::step(utility, critical).expect("valid tuf"))
        .uam(Uam::periodic(window))
        .segments(segments)
        .build()
        .expect("valid task")
}

fn access(object: usize) -> Segment {
    Segment::Access {
        object: ObjectId::new(object),
        kind: AccessKind::Write,
    }
}

fn run(
    tasks: Vec<TaskSpec>,
    traces: Vec<ArrivalTrace>,
    sharing: SharingMode,
) -> lfrt_sim::SimOutcome {
    Engine::new(tasks, traces, SimConfig::new(sharing))
        .expect("valid engine")
        .run(Edf)
}

#[test]
fn single_job_completes_with_full_utility() {
    let t = task("a", 5.0, 1_000, 10_000, vec![Segment::Compute(100)]);
    let out = run(
        vec![t],
        vec![ArrivalTrace::new(vec![0])],
        SharingMode::Ideal,
    );
    assert_eq!(out.metrics.completed(), 1);
    assert_eq!(out.metrics.aborted(), 0);
    let rec = &out.records[0];
    assert_eq!(rec.sojourn(), 100);
    assert_eq!(rec.utility, 5.0);
    assert!((out.metrics.aur() - 1.0).abs() < 1e-12);
    assert!((out.metrics.cmr() - 1.0).abs() < 1e-12);
}

#[test]
fn infeasible_job_aborts_at_critical_time() {
    // 500 ticks of work but the critical time is 200.
    let t = task("a", 5.0, 200, 10_000, vec![Segment::Compute(500)]);
    let out = run(
        vec![t],
        vec![ArrivalTrace::new(vec![0])],
        SharingMode::Ideal,
    );
    assert_eq!(out.metrics.completed(), 0);
    assert_eq!(out.metrics.aborted(), 1);
    let rec = &out.records[0];
    assert_eq!(rec.resolved_at, 200, "aborted exactly at the critical time");
    assert_eq!(rec.utility, 0.0);
    assert_eq!(out.metrics.aur(), 0.0);
    assert_eq!(out.metrics.cmr(), 0.0);
}

#[test]
fn earlier_deadline_arrival_preempts() {
    // Long-deadline job starts first; short-deadline job arrives mid-run and
    // must preempt to meet its critical time.
    let long = task("long", 1.0, 5_000, 100_000, vec![Segment::Compute(1_000)]);
    let short = task("short", 1.0, 300, 100_000, vec![Segment::Compute(200)]);
    let out = run(
        vec![long, short],
        vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![100])],
        SharingMode::Ideal,
    );
    assert_eq!(out.metrics.completed(), 2);
    let short_rec = out
        .records
        .iter()
        .find(|r| r.task.index() == 1)
        .expect("short ran");
    // Dispatched at 100, runs 200 ticks uninterrupted.
    assert_eq!(short_rec.resolved_at, 300);
    let long_rec = out
        .records
        .iter()
        .find(|r| r.task.index() == 0)
        .expect("long ran");
    // 100 ticks before preemption + 200 preempted + 900 after.
    assert_eq!(long_rec.resolved_at, 1_200);
}

#[test]
fn lock_based_contention_blocks_and_serializes() {
    let r = 100;
    let holder = task(
        "holder",
        1.0,
        5_000,
        100_000,
        vec![Segment::Compute(10), access(0)],
    );
    let contender = task("contender", 1.0, 1_000, 100_000, vec![access(0)]);
    let out = run(
        vec![holder, contender],
        vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![50])],
        SharingMode::LockBased { access_ticks: r },
    );
    assert_eq!(out.metrics.completed(), 2);
    assert_eq!(out.metrics.blockings(), 1, "contender blocked exactly once");
    let holder_rec = out
        .records
        .iter()
        .find(|r| r.task.index() == 0)
        .expect("holder");
    // Holder: 10 compute + 100 critical section, never preempted mid-CS
    // because the contender blocks.
    assert_eq!(holder_rec.resolved_at, 110);
    let contender_rec = out
        .records
        .iter()
        .find(|r| r.task.index() == 1)
        .expect("contender");
    // Arrives 50, blocks until 110, then 100 ticks of critical section.
    assert_eq!(contender_rec.resolved_at, 210);
    assert_eq!(contender_rec.blockings, 1);
}

#[test]
fn lock_free_interference_causes_exactly_one_retry() {
    let s = 100;
    // Victim starts its access at t=10; interferer (earlier critical time)
    // arrives at t=50, preempts, commits a write to the same object, and the
    // victim's resumed attempt fails once.
    let victim = task(
        "victim",
        1.0,
        5_000,
        100_000,
        vec![Segment::Compute(10), access(0)],
    );
    let interferer = task("interferer", 1.0, 500, 100_000, vec![access(0)]);
    let out = run(
        vec![victim, interferer],
        vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![50])],
        SharingMode::LockFree { access_ticks: s },
    );
    assert_eq!(out.metrics.completed(), 2);
    assert_eq!(out.metrics.blockings(), 0, "lock-free never blocks");
    let victim_rec = out
        .records
        .iter()
        .find(|r| r.task.index() == 0)
        .expect("victim");
    assert_eq!(victim_rec.retries, 1, "one interference, one retry");
    // Timeline: 10 compute, 40 of first attempt, preempted 100 (interferer's
    // attempt commits at 150), resumes and finishes the doomed attempt at
    // 210, retries: full 100 again -> 310.
    assert_eq!(victim_rec.resolved_at, 310);
    let interferer_rec = out
        .records
        .iter()
        .find(|r| r.task.index() == 1)
        .expect("interferer");
    assert_eq!(interferer_rec.retries, 0);
    assert_eq!(interferer_rec.resolved_at, 150);
}

#[test]
fn uninterfered_lock_free_access_never_retries() {
    let t = task(
        "a",
        1.0,
        10_000,
        100_000,
        vec![access(0), access(1), access(0)],
    );
    let out = run(
        vec![t],
        vec![ArrivalTrace::new(vec![0, 10_000, 20_000])],
        SharingMode::LockFree { access_ticks: 50 },
    );
    assert_eq!(out.metrics.completed(), 3);
    assert_eq!(out.metrics.retries(), 0);
}

#[test]
fn ideal_mode_costs_nothing_per_access() {
    let t = task(
        "a",
        1.0,
        1_000,
        100_000,
        vec![Segment::Compute(100), access(0), access(1), access(2)],
    );
    let out = run(
        vec![t],
        vec![ArrivalTrace::new(vec![0])],
        SharingMode::Ideal,
    );
    assert_eq!(
        out.records[0].sojourn(),
        100,
        "accesses are free under Ideal"
    );
}

#[test]
fn scheduler_overhead_is_charged_and_delays_completion() {
    let t = task("a", 1.0, 10_000, 100_000, vec![Segment::Compute(100)]);
    let traces = vec![ArrivalTrace::new(vec![0])];
    let no_overhead = Engine::new(
        vec![t.clone()],
        traces.clone(),
        SimConfig::new(SharingMode::Ideal),
    )
    .expect("valid engine")
    .run(Edf);
    let with_overhead = Engine::new(
        vec![t],
        traces,
        SimConfig::new(SharingMode::Ideal).overhead(OverheadModel::per_op(10.0)),
    )
    .expect("valid engine")
    .run(Edf);
    assert_eq!(no_overhead.records[0].sojourn(), 100);
    assert!(with_overhead.metrics.overhead_ticks > 0);
    assert!(
        with_overhead.records[0].sojourn() > 100,
        "kernel-busy window must delay the job"
    );
}

#[test]
fn abort_releases_lock_and_wakes_waiter() {
    // Holder's critical section (1000) outlives its own critical time (500):
    // it aborts mid-CS and the waiter must then get the lock.
    let holder = task("holder", 1.0, 500, 100_000, vec![access(0)]);
    let waiter = task("waiter", 1.0, 5_000, 100_000, vec![access(0)]);
    let out = run(
        vec![holder, waiter],
        vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![10])],
        SharingMode::LockBased {
            access_ticks: 1_000,
        },
    );
    let holder_rec = out
        .records
        .iter()
        .find(|r| r.task.index() == 0)
        .expect("holder");
    assert!(!holder_rec.completed);
    assert_eq!(holder_rec.resolved_at, 500);
    let waiter_rec = out
        .records
        .iter()
        .find(|r| r.task.index() == 1)
        .expect("waiter");
    assert!(
        waiter_rec.completed,
        "waiter must acquire the lock after the abort"
    );
    // Woken at 500, runs its 1000-tick critical section.
    assert_eq!(waiter_rec.resolved_at, 1_500);
}

#[test]
fn empty_schedule_falls_back_to_work_conserving_dispatch() {
    let t = task("a", 1.0, 1_000, 100_000, vec![Segment::Compute(100)]);
    let out = Engine::new(
        vec![t],
        vec![ArrivalTrace::new(vec![0])],
        SimConfig::new(SharingMode::Ideal),
    )
    .expect("valid engine")
    .run(Lazy);
    assert_eq!(
        out.metrics.completed(),
        1,
        "fallback must keep the CPU busy"
    );
}

#[test]
fn simultaneous_arrivals_all_release() {
    let t = task("a", 1.0, 10_000, 100_000, vec![Segment::Compute(10)]);
    let out = run(
        vec![t],
        vec![ArrivalTrace::new(vec![100, 100, 100])],
        SharingMode::Ideal,
    );
    assert_eq!(out.metrics.released(), 3);
    assert_eq!(out.metrics.completed(), 3);
    // They run back to back: 110, 120, 130.
    let mut ends: Vec<u64> = out.records.iter().map(|r| r.resolved_at).collect();
    ends.sort_unstable();
    assert_eq!(ends, vec![110, 120, 130]);
}

#[test]
fn runs_are_deterministic() {
    let build = || {
        let spec = lfrt_sim::workload::WorkloadSpec::paper_baseline(42);
        let (tasks, traces) = spec.build().expect("valid workload");
        Engine::new(
            tasks,
            traces,
            SimConfig::new(SharingMode::LockFree { access_ticks: 10 }),
        )
        .expect("valid engine")
        .run(Edf)
    };
    let a = build();
    let b = build();
    assert_eq!(a.records, b.records);
    assert_eq!(a.metrics, b.metrics);
}

#[test]
fn utility_possible_counts_all_releases() {
    // One feasible and one infeasible job: AUR = 0.5 with equal heights.
    let feasible = task("f", 10.0, 1_000, 100_000, vec![Segment::Compute(100)]);
    let infeasible = task("i", 10.0, 50, 100_000, vec![Segment::Compute(500)]);
    let out = run(
        vec![feasible, infeasible],
        vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![2_000])],
        SharingMode::Ideal,
    );
    assert!((out.metrics.aur() - 0.5).abs() < 1e-12);
    assert!((out.metrics.cmr() - 0.5).abs() < 1e-12);
}

#[test]
fn trace_count_mismatch_rejected() {
    let t = task("a", 1.0, 100, 1_000, vec![Segment::Compute(10)]);
    let err = Engine::new(vec![t], vec![], SimConfig::new(SharingMode::Ideal)).unwrap_err();
    assert_eq!(
        err,
        lfrt_sim::SimError::TraceCountMismatch {
            tasks: 1,
            traces: 0
        }
    );
}

#[test]
fn utilization_counts_only_job_execution() {
    let t = task("a", 1.0, 10_000, 100_000, vec![Segment::Compute(400)]);
    let out = run(
        vec![t],
        vec![ArrivalTrace::new(vec![0, 1_000])],
        SharingMode::Ideal,
    );
    // Two jobs of 400 ticks each; the makespan extends to the last (stale)
    // critical-time timer, so utilization is busy/makespan.
    assert_eq!(out.metrics.busy_ticks, 800);
    let expected = 800.0 / out.metrics.makespan as f64;
    assert!((out.metrics.utilization() - expected).abs() < 1e-12);
    assert!(out.metrics.utilization() > 0.0);
}
