//! Model-checked mirror of the recorder's ring protocol (`src/ring.rs`):
//! a capacity-2 ring, one writer publishing three events (so the ring
//! wraps), one drainer doing the h1/copy/h2 seqlock validation. Each
//! event's two slot words are related (`data == ts + 1` with `ts` derived
//! from the sequence), so any kept event whose words came from different
//! writes — or from an unwritten slot — fails the invariant.
//!
//! The faithful protocol (slot words *and* head stored `Release`) must pass
//! exhaustive SC exploration and the store-buffer model. Three seeded
//! demotions prove the harness has teeth, one per load-bearing ordering:
//!
//! * publishing the head before the slot words is caught already under SC;
//! * demoting the head publish to `Relaxed` passes every SC schedule and
//!   is caught only by the store-buffer model (unpublished slot observed);
//! * demoting the *slot words* to `Relaxed` — the protocol's original
//!   form — also passes SC but lets a later event's slot store overtake an
//!   older buffered head publish (PSO store–store reordering), so the
//!   drain keeps a torn event after wraparound. This exploration is what
//!   forced the `Release` slot stores in `ring.rs`.

use std::sync::Arc;

use lfrt_interleave::{
    explore, Atomic, Config, FailureKind, MemoryMode, Ordering, Plan, FLUSH_BASE, REORDER_BASE,
};

const CAP: u64 = 2;
const EVENTS: u64 = 3;

/// Store-buffer exploration of nine buffered stores explodes unbounded, so
/// the weak runs are CHESS-bounded (flushes taken while another thread
/// could continue count as preemptions). Bug and fix run under the *same*
/// bounds: the bound is honest because the seeded demotions below are
/// caught within it.
fn bounded_weak(name: &'static str) -> Config {
    Config {
        preemption_bound: Some(3),
        memory: MemoryMode::StoreBuffer {
            bound: MemoryMode::DEFAULT_BOUND,
        },
        ..Config::exhaustive(name)
    }
}

struct ModelRing {
    head: Atomic<u64>,
    ts: [Atomic<u64>; 2],
    data: [Atomic<u64>; 2],
}

impl ModelRing {
    fn new() -> Self {
        Self {
            head: Atomic::new(0),
            ts: [Atomic::new(0), Atomic::new(0)],
            data: [Atomic::new(0), Atomic::new(0)],
        }
    }

    /// Event `seq` carries `ts = 3*seq + 1`, `data = ts + 1`; zero-initialized
    /// slots (`ts = data = 0`) violate the relation just like mixed words.
    fn write(&self, seq: u64, slots: Ordering, publish: Ordering, slots_first: bool) {
        let slot = (seq % CAP) as usize;
        if slots_first {
            self.ts[slot].store_ord(3 * seq + 1, slots);
            self.data[slot].store_ord(3 * seq + 2, slots);
            self.head.store_ord(seq + 1, publish);
        } else {
            // Seeded bug: head published before the slot words exist.
            self.head.store_ord(seq + 1, publish);
            self.ts[slot].store_ord(3 * seq + 1, slots);
            self.data[slot].store_ord(3 * seq + 2, slots);
        }
    }

    /// The drain from `ring.rs`, verbatim in miniature: Acquire h1, Relaxed
    /// slot copies, re-read h2, keep only sequences the writer cannot have
    /// been overwriting (`seq + CAP > h2`). The h2 re-read ordering is a
    /// parameter so the relaxed-mode runs below can prove it load-bearing:
    /// demoted to `Relaxed`, a stale h2 un-discards a torn-suspect slot.
    fn drain_and_check(&self, h2_order: Ordering) {
        let h1 = self.head.load_ord(Ordering::Acquire);
        let start = h1.saturating_sub(CAP);
        let mut copied = Vec::new();
        for seq in start..h1 {
            let slot = (seq % CAP) as usize;
            copied.push((
                seq,
                self.ts[slot].load_ord(Ordering::Relaxed),
                self.data[slot].load_ord(Ordering::Relaxed),
            ));
        }
        let h2 = self.head.load_ord(h2_order);
        for (seq, ts, data) in copied {
            if seq + CAP <= h2 {
                continue; // torn-suspect: discarded, never inspected
            }
            assert!(
                data == ts + 1 && ts == 3 * seq + 1,
                "kept a torn or unpublished event: seq {seq} ts {ts} data {data}"
            );
        }
    }
}

fn scenario(slots: Ordering, publish: Ordering, slots_first: bool) -> Plan {
    scenario_h2(slots, publish, slots_first, Ordering::Acquire)
}

fn scenario_h2(slots: Ordering, publish: Ordering, slots_first: bool, h2: Ordering) -> Plan {
    let ring = Arc::new(ModelRing::new());
    let writer = Arc::clone(&ring);
    let drainer = Arc::clone(&ring);
    Plan::new()
        .thread(move || {
            for seq in 0..EVENTS {
                writer.write(seq, slots, publish, slots_first);
            }
        })
        .thread(move || drainer.drain_and_check(h2))
}

/// Runs an exploration that must fail with the torn/unpublished panic and
/// returns whether the failing schedule contains a flush (weak) decision.
fn assert_caught(config: &Config, slots: Ordering, publish: Ordering, slots_first: bool) -> bool {
    let report = explore(config, || scenario(slots, publish, slots_first));
    let failure = report.assert_fails();
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("torn or unpublished"),
        "{failure:?}"
    );
    failure.schedule.steps().iter().any(|&id| id >= FLUSH_BASE)
}

#[test]
fn faithful_protocol_passes_exhaustive_sc() {
    explore(&Config::exhaustive("trace-ring-sc"), || {
        scenario(Ordering::Release, Ordering::Release, true)
    })
    .assert_ok();
}

#[test]
fn faithful_protocol_passes_store_buffer() {
    explore(&bounded_weak("trace-ring-weak"), || {
        scenario(Ordering::Release, Ordering::Release, true)
    })
    .assert_ok();
}

#[test]
fn publishing_head_before_slots_is_caught_under_sc() {
    assert_caught(
        &Config::exhaustive("trace-ring-head-first"),
        Ordering::Release,
        Ordering::Release,
        false,
    );
}

#[test]
fn relaxed_head_publish_passes_sc_but_store_buffer_catches_it() {
    // Under SC the store order is the program order, so the demoted publish
    // is invisible to PR 2-style exploration...
    explore(&Config::exhaustive("trace-ring-relaxed-pub-sc"), || {
        scenario(Ordering::Release, Ordering::Relaxed, true)
    })
    .assert_ok();
    // ...but a store buffer may commit the Relaxed head ahead of the older
    // slot-word stores, handing the drainer a published-but-empty slot.
    let weak = assert_caught(
        &bounded_weak("trace-ring-relaxed-pub-weak"),
        Ordering::Release,
        Ordering::Relaxed,
        true,
    );
    assert!(weak, "failure must involve a flush decision");
}

#[test]
fn relaxed_slot_words_pass_sc_but_store_buffer_catches_the_torn_keep() {
    // The protocol as first written: slot words Relaxed, head Release.
    // Correct under SC (and x86 TSO, where the store buffer is FIFO)...
    explore(&Config::exhaustive("trace-ring-relaxed-slots-sc"), || {
        scenario(Ordering::Relaxed, Ordering::Release, true)
    })
    .assert_ok();
    // ...but under PSO a later event's Relaxed slot store may overtake an
    // older buffered Release head publish: after wraparound the drain
    // copies the *newer* event's words while h2 still reads the old head,
    // so the seqlock validation keeps a torn event. This is the finding
    // that put Release on the slot stores in ring.rs.
    let weak = assert_caught(
        &bounded_weak("trace-ring-relaxed-slots-weak"),
        Ordering::Relaxed,
        Ordering::Release,
        true,
    );
    assert!(weak, "failure must involve a flush decision");
}

/// Relaxed-mode (ARM/POWER-class) runs: same CHESS bound as the
/// store-buffer explorations, now with stale-read decisions in the tree.
fn bounded_relaxed(name: &'static str) -> Config {
    // The nightly extended-exploration CI job sets INTERLEAVE_EXTENDED=1
    // to deepen the stale window/buffer bound; per-PR runs use the
    // defaults so the suite stays fast.
    let (bound, window) = if std::env::var_os("INTERLEAVE_EXTENDED").is_some() {
        (6, 3)
    } else {
        (MemoryMode::DEFAULT_BOUND, MemoryMode::DEFAULT_WINDOW)
    };
    Config {
        preemption_bound: Some(3),
        memory: MemoryMode::Relaxed { bound, window },
        ..Config::exhaustive(name)
    }
}

#[test]
fn faithful_protocol_passes_relaxed() {
    // The real drain's Acquire h1/h2 pair survives stale reads: h1 drains
    // the drainer's stale set before the copies, and the Acquire h2 re-read
    // cannot observe an old head, so every overwrite-raced slot is still
    // discarded.
    explore(&bounded_relaxed("trace-ring-relaxed"), || {
        scenario(Ordering::Release, Ordering::Release, true)
    })
    .assert_ok();
}

#[test]
fn relaxed_h2_recheck_passes_tso_but_relaxed_catches_the_stale_undiscard() {
    // Demote only the h2 re-read to `Relaxed`. Under SC and under TSO loads
    // always observe the freshest committed head, so the seqlock validation
    // still discards everything the writer might have been overwriting...
    explore(&Config::exhaustive("trace-ring-stale-h2-sc"), || {
        scenario_h2(
            Ordering::Release,
            Ordering::Release,
            true,
            Ordering::Relaxed,
        )
    })
    .assert_ok();
    explore(&bounded_weak("trace-ring-stale-h2-weak"), || {
        scenario_h2(
            Ordering::Release,
            Ordering::Release,
            true,
            Ordering::Relaxed,
        )
    })
    .assert_ok();
    // ...but a stale h2 can read a head from before the overwriting event
    // was published, un-discarding a torn slot copy. Only the relaxed
    // mode's stale-read decisions reach this — the load–load ordering the
    // Acquire re-read exists to provide.
    let report = explore(&bounded_relaxed("trace-ring-stale-h2-relaxed"), || {
        scenario_h2(
            Ordering::Release,
            Ordering::Release,
            true,
            Ordering::Relaxed,
        )
    });
    let failure = report.assert_fails();
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("torn or unpublished"),
        "{failure:?}"
    );
    assert!(
        failure
            .schedule
            .steps()
            .iter()
            .any(|&id| id >= REORDER_BASE),
        "failing schedule {} has no stale-read decision",
        failure.schedule
    );
}
