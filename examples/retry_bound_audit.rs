//! Retry-bound audit: generate adversarial UAM arrival traces (the
//! back-to-back burst pattern from the Theorem 2 proof), certify them
//! against the model, run lock-free RUA, and compare the measured retries
//! of every job against the analytic bound.
//!
//! Run with: `cargo run --release --example retry_bound_audit`

use lockfree_rt::analysis::RetryBoundInput;
use lockfree_rt::core::RuaLockFree;
use lockfree_rt::sim::workload::{ArrivalStyle, TufClass, WorkloadSpec};
use lockfree_rt::sim::{Engine, SharingMode, SimConfig};
use lockfree_rt::uam::Uam;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = WorkloadSpec {
        num_tasks: 6,
        num_objects: 1, // one hot object: every access contends
        accesses_per_job: 4,
        tuf_class: TufClass::Step,
        target_load: 0.9,
        window_range: (6_000, 15_000),
        max_burst: 2,
        critical_time_frac: 0.9,
        arrival_style: ArrivalStyle::BackToBackBurst,
        horizon: 500_000,
        read_fraction: 0.0,
        seed: 7,
    };
    let (tasks, traces) = spec.build()?;

    // Certify the traces: the analytic bound only applies to UAM-conformant
    // arrivals.
    for (task, trace) in tasks.iter().zip(&traces) {
        trace.conforms_to(task.uam())?;
    }
    println!("all {} traces certified UAM-conformant", traces.len());

    let params: Vec<(Uam, u64)> = tasks
        .iter()
        .map(|t| (*t.uam(), t.tuf().critical_time()))
        .collect();
    let outcome = Engine::new(
        tasks.clone(),
        traces,
        SimConfig::new(SharingMode::LockFree { access_ticks: 250 }),
    )?
    .run(RuaLockFree::new());

    println!(
        "\n{:<8} {:>10} {:>12} {:>12}",
        "task", "bound f_i", "max retries", "jobs"
    );
    let mut worst_margin = f64::INFINITY;
    for (i, task) in tasks.iter().enumerate() {
        let bound = RetryBoundInput::for_task(&params, i).retry_bound();
        let records: Vec<_> = outcome
            .records
            .iter()
            .filter(|r| r.task.index() == i)
            .collect();
        let max = records.iter().map(|r| r.retries).max().unwrap_or(0);
        assert!(max <= bound, "Theorem 2 violated for {}", task.name());
        worst_margin = worst_margin.min(bound as f64 - max as f64);
        println!(
            "{:<8} {:>10} {:>12} {:>12}",
            task.name(),
            bound,
            max,
            records.len()
        );
    }
    println!("\nTheorem 2 holds for every job; smallest headroom {worst_margin} retries.");
    Ok(())
}
