//! Offline stand-in for the `rand` crate.
//!
//! The build container for this repository has no access to crates.io, so
//! this workspace vendors the small slice of the `rand 0.10` API it actually
//! uses: a seedable [`rngs::StdRng`] plus [`RngExt::random`] and
//! [`RngExt::random_range`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — statistically solid for simulation workloads and, crucially
//! for the experiment harness, **fully deterministic per seed** on every
//! platform.
//!
//! Not implemented: distributions, thread-local RNGs, fill/bytes APIs,
//! `no_std` support. Add pieces here if a crate in the workspace grows a new
//! use; do not depend on this outside the workspace.

/// Core pseudo-random source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// The real `rand` makes no cross-version stream guarantee for `StdRng`;
    /// this vendored one *does* guarantee stream stability, which the
    /// benchmark JSON determinism checks rely on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Types producible by [`RngExt::random`].
pub trait StandardSample {
    /// Draws one value from the type's standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `[0, span)` without modulo bias worth caring about
/// for simulation purposes (fixed-point multiply).
fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(sample_u64_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(sample_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        let unit = f64::sample(rng);
        lo + unit * (hi - lo)
    }
}

/// Convenience sampling methods, matching `rand 0.10`'s extension-trait
/// spelling (`use rand::RngExt`).
pub trait RngExt: RngCore {
    /// Draws one value from the type's standard distribution
    /// (`[0, 1)` for `f64`, the full domain for integers and `bool`).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(3i32..=5);
            assert!((3..=5).contains(&w));
            let f = rng.random_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&f));
            let u = rng.random::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
