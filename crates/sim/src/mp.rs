//! Multiprocessor extension (the paper's §7 future work).
//!
//! [`MpEngine`] runs the same task/object model on `m` identical processors
//! under *global* scheduling: at every scheduling event the [`UaScheduler`]
//! produces one priority order, and the engine assigns the first `m`
//! runnable jobs to processors (keeping already-placed jobs on their
//! processor when possible).
//!
//! The interesting new physics is **true concurrency on shared objects**:
//!
//! * lock-free accesses can now interfere *without preemption* — two jobs
//!   on different processors access the same object simultaneously; the
//!   first commit bumps the version and the other attempt retries. The
//!   single-processor retry bound of Theorem 2 does not cover this (the
//!   paper proves it for one processor only), which is exactly why the
//!   authors flag multiprocessors as future work;
//! * lock-based accesses block across processors: the owner keeps running
//!   on its CPU while the requester parks.
//!
//! Simplifications versus a real SMP kernel, kept deliberately: the
//! scheduler's overhead window freezes all processors (a global kernel
//! lock), migration is free, and quantum-based scheduling
//! ([`SimConfig::quantum`](crate::SimConfig::quantum)) is a uniprocessor
//! feature — boundaries are ignored here.

use lfrt_uam::ArrivalTrace;

use crate::calendar::Calendar;
use crate::engine::{SimConfig, SimOutcome};
use crate::error::SimError;
use crate::event::EventKind;
use crate::ids::{JobId, ObjectId, TaskId};
use crate::job::{Job, JobPhase, JobRecord};
use crate::metrics::SimMetrics;
use crate::object::ObjectTable;
use crate::scheduler::{JobView, SchedulerContext, UaScheduler};
use crate::segment::{AccessKind, Segment};
use crate::task::{ExecTimeModel, SharingMode, TaskSpec};
use crate::tracelog::{AbortReason, TraceEvent, TraceLog};
use crate::{SimTime, Ticks};

/// How jobs are mapped to processors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// One global priority order; the first `m` runnable jobs run, on any
    /// processor (migration is free).
    Global,
    /// Each task is pinned to a processor (`assignment[task] = cpu`); a
    /// processor only runs jobs of its own tasks, in the scheduler's
    /// priority order. The classic partitioned alternative to global
    /// scheduling in the multiprocessor literature.
    Partitioned(Vec<usize>),
}

/// A discrete-event simulator for `m` identical processors under global
/// scheduling. See the [module docs](self) for the model.
///
/// # Examples
///
/// Two independent jobs on two processors truly run in parallel:
///
/// ```
/// use lfrt_sim::mp::MpEngine;
/// use lfrt_sim::{Segment, SharingMode, SimConfig, TaskSpec};
/// use lfrt_sim::scheduler::{Decision, SchedulerContext, UaScheduler};
/// use lfrt_tuf::Tuf;
/// use lfrt_uam::{ArrivalTrace, Uam};
///
/// struct Fifo;
/// impl UaScheduler for Fifo {
///     fn name(&self) -> &str { "fifo" }
///     fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
///         let order: Vec<_> = ctx.jobs.iter().map(|j| j.id).collect();
///         Decision { order, ops: 1, ..Decision::default() }
///     }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mk = |name: &str| -> Result<TaskSpec, Box<dyn std::error::Error>> {
///     Ok(TaskSpec::builder(name)
///         .tuf(Tuf::step(1.0, 10_000)?)
///         .uam(Uam::periodic(10_000))
///         .segments(vec![Segment::Compute(1_000)])
///         .build()?)
/// };
/// let outcome = MpEngine::new(
///     vec![mk("a")?, mk("b")?],
///     vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![0])],
///     SimConfig::new(SharingMode::Ideal),
///     2,
/// )?
/// .run(Fifo);
/// assert!(outcome.records.iter().all(|r| r.resolved_at == 1_000));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MpEngine {
    tasks: Vec<TaskSpec>,
    config: SimConfig,
    processors: usize,
    calendar: Calendar,
    jobs: Vec<Job>,
    live: Vec<JobId>,
    objects: ObjectTable,
    schedule: Vec<JobId>,
    running: Vec<Option<JobId>>,
    kernel_busy_until: SimTime,
    resched_queued: bool,
    now: SimTime,
    metrics: SimMetrics,
    records: Vec<JobRecord>,
    exec_rng: Option<rand::rngs::StdRng>,
    trace: TraceLog,
    policy: DispatchPolicy,
}

impl MpEngine {
    /// Creates an engine with `processors` identical CPUs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] under the same conditions as
    /// [`Engine::new`](crate::Engine::new), or if `processors` is zero
    /// (reported as a missing field).
    pub fn new(
        tasks: Vec<TaskSpec>,
        traces: Vec<ArrivalTrace>,
        config: SimConfig,
        processors: usize,
    ) -> Result<Self, SimError> {
        if processors == 0 {
            return Err(SimError::MissingField {
                field: "processors",
            });
        }
        if tasks.len() != traces.len() {
            return Err(SimError::TraceCountMismatch {
                tasks: tasks.len(),
                traces: traces.len(),
            });
        }
        if !config.sharing().uses_locks() {
            if let Some(task) = tasks.iter().find(|t| t.uses_explicit_locks()) {
                return Err(SimError::NestedRequiresLockBased {
                    task: task.name().to_string(),
                });
            }
        }
        let num_objects = tasks
            .iter()
            .flat_map(|t| t.segments().iter())
            .filter_map(Segment::object)
            .map(|o| o.index() + 1)
            .max()
            .unwrap_or(0);
        let mut calendar = Calendar::new();
        for (idx, trace) in traces.iter().enumerate() {
            for &t in trace.times() {
                calendar.push(
                    t,
                    EventKind::Arrival {
                        task: TaskId::new(idx),
                    },
                );
            }
        }
        let mut objects = ObjectTable::new(num_objects);
        objects.set_capacities(config.capacities());
        let metrics = SimMetrics::new(tasks.len());
        let exec_rng = match config.exec_time_model() {
            ExecTimeModel::Nominal => None,
            ExecTimeModel::Uniform { seed, .. } => Some(
                <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed),
            ),
        };
        Ok(Self {
            tasks,
            config,
            processors,
            calendar,
            jobs: Vec::new(),
            live: Vec::new(),
            objects,
            schedule: Vec::new(),
            running: vec![None; processors],
            kernel_busy_until: 0,
            resched_queued: false,
            now: 0,
            metrics,
            records: Vec::new(),
            exec_rng,
            trace: TraceLog::new(),
            policy: DispatchPolicy::Global,
        })
    }

    /// Switches to partitioned dispatch with the given task→processor
    /// assignment.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MissingField`] if the assignment's length differs
    /// from the task count or maps a task to a nonexistent processor.
    pub fn with_partitioning(mut self, assignment: Vec<usize>) -> Result<Self, SimError> {
        if assignment.len() != self.tasks.len()
            || assignment.iter().any(|&cpu| cpu >= self.processors)
        {
            return Err(SimError::MissingField {
                field: "partition assignment",
            });
        }
        self.policy = DispatchPolicy::Partitioned(assignment);
        Ok(self)
    }

    /// Runs the simulation to completion.
    pub fn run<S: UaScheduler>(mut self, mut scheduler: S) -> SimOutcome {
        loop {
            let next = match (self.calendar.peek_time(), self.next_internal()) {
                (None, None) => break,
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (Some(a), Some(b)) => a.min(b),
            };
            debug_assert!(next >= self.now, "time went backwards");
            self.advance_running_to(next);
            self.now = next;
            self.metrics.makespan = self.metrics.makespan.max(self.now);

            let mut resched = false;
            // Failure injection: crashed jobs halt forever, locks kept.
            for cpu in 0..self.processors {
                let Some(id) = self.running[cpu] else {
                    continue;
                };
                let job = &self.jobs[id.index()];
                if let Some(crash) = self.tasks[job.task.index()].crash_after() {
                    if job.executed >= crash && self.now >= self.kernel_busy_until {
                        self.crash_job(id);
                        resched = true;
                    }
                }
            }
            // Internal happenings on every processor, in index order. Only
            // one completion per processor per decision point: follow-on
            // zero-length segments are handled on the next loop pass, after
            // same-instant external events — mirroring the uniprocessor
            // engine's ordering exactly.
            for cpu in 0..self.processors {
                if self.cpu_activity_done(cpu) {
                    resched |= self.handle_activity_completion(cpu);
                }
            }
            while let Some((_, event)) = self.calendar.pop_due(self.now) {
                match event {
                    EventKind::Arrival { task } => {
                        self.release_job(task);
                        resched = true;
                    }
                    EventKind::CriticalTimeExpiry { job } => {
                        if self.jobs[job.index()].phase.is_live() {
                            self.abort_job(job, AbortReason::CriticalTime);
                            resched = true;
                        }
                    }
                    EventKind::Reschedule => {
                        self.resched_queued = false;
                        resched = true;
                    }
                }
            }
            // Either an explicit scheduling event occurred, or some CPU
            // crossed into an access segment whose implied lock request is
            // itself a scheduling event.
            let implied = !resched && self.now >= self.kernel_busy_until && self.prepare_all();
            if resched || implied {
                self.request_reschedule(&mut scheduler);
            }
        }
        SimOutcome {
            metrics: self.metrics,
            records: self.records,
            trace: self.trace,
        }
    }

    #[inline]
    fn trace_event(&mut self, event: TraceEvent) {
        if self.config.trace_enabled() {
            self.trace.push(self.now, event);
        }
    }

    fn next_internal(&self) -> Option<SimTime> {
        let mut earliest: Option<SimTime> = None;
        for cpu in 0..self.processors {
            let Some(id) = self.running[cpu] else {
                continue;
            };
            let t = if self.now < self.kernel_busy_until {
                self.kernel_busy_until
            } else {
                let job = &self.jobs[id.index()];
                let mut left = self.activity_duration(job).saturating_sub(job.seg_progress);
                if let Some(crash) = self.tasks[job.task.index()].crash_after() {
                    left = left.min(crash.saturating_sub(job.executed));
                }
                self.now + left
            };
            earliest = Some(earliest.map_or(t, |e: SimTime| e.min(t)));
        }
        earliest
    }

    fn activity_duration(&self, job: &Job) -> Ticks {
        match self.tasks[job.task.index()].segments()[job.seg_idx] {
            Segment::Compute(t) => (t as f64 * job.exec_scale).round() as Ticks,
            Segment::Access { .. } => self.config.sharing().access_cost(),
            Segment::Acquire { .. } | Segment::Release { .. } => 0,
        }
    }

    fn advance_running_to(&mut self, next: SimTime) {
        let start = self.now.max(self.kernel_busy_until);
        if next <= start {
            return;
        }
        for cpu in 0..self.processors {
            if let Some(id) = self.running[cpu] {
                let job = &mut self.jobs[id.index()];
                job.seg_progress += next - start;
                job.executed += next - start;
                self.metrics.busy_ticks += next - start;
            }
        }
    }

    fn cpu_activity_done(&self, cpu: usize) -> bool {
        match self.running[cpu] {
            Some(id) if self.now >= self.kernel_busy_until => {
                let job = &self.jobs[id.index()];
                job.phase == JobPhase::Ready && job.seg_progress >= self.activity_duration(job)
            }
            _ => false,
        }
    }

    /// Handles the job on `cpu` finishing its current activity. Returns
    /// whether a scheduling event occurred.
    fn handle_activity_completion(&mut self, cpu: usize) -> bool {
        let id = self.running[cpu].expect("completion without a job");
        let idx = id.index();
        let task_idx = self.jobs[idx].task.index();
        let segment = self.tasks[task_idx].segments()[self.jobs[idx].seg_idx];
        let mut resched = false;
        match segment {
            Segment::Compute(_) => self.advance_segment(idx),
            Segment::Access { object, kind } => match self.config.sharing() {
                SharingMode::LockBased { .. } => {
                    debug_assert!(self.jobs[idx].holds.contains(&object));
                    self.release_lock(idx, id, object);
                    if kind == AccessKind::Write {
                        self.objects.commit_write(object);
                    }
                    self.advance_segment(idx);
                    resched = true;
                }
                SharingMode::LockFree { .. } => {
                    let started = self.jobs[idx]
                        .access_start_version
                        .expect("lock-free access without a start version");
                    let current = self.objects.version(object);
                    if current != started {
                        let job = &mut self.jobs[idx];
                        job.retries += 1;
                        job.seg_progress = 0;
                        job.access_start_version = Some(current);
                        self.trace_event(TraceEvent::Retried { job: id, object });
                    } else {
                        if kind == AccessKind::Write {
                            self.objects.commit_write(object);
                        }
                        self.jobs[idx].access_start_version = None;
                        self.advance_segment(idx);
                    }
                }
                SharingMode::Ideal => self.advance_segment(idx),
            },
            Segment::Acquire { object } => {
                debug_assert!(self.jobs[idx].holds.contains(&object));
                self.advance_segment(idx);
            }
            Segment::Release { object } => {
                self.release_lock(idx, id, object);
                self.objects.commit_write(object);
                self.advance_segment(idx);
                resched = true;
            }
        }
        if self.jobs[idx].phase.is_live()
            && self.jobs[idx].seg_idx >= self.tasks[task_idx].segments().len()
        {
            self.complete_job(id);
            resched = true;
        }
        resched
    }

    fn advance_segment(&mut self, idx: usize) {
        let job = &mut self.jobs[idx];
        job.seg_idx += 1;
        job.seg_progress = 0;
    }

    fn release_lock(&mut self, idx: usize, id: JobId, object: ObjectId) {
        let woken = self.objects.unlock(object, id);
        for w in woken {
            self.jobs[w.index()].phase = JobPhase::Ready;
            self.trace_event(TraceEvent::Woken { job: w, object });
        }
        self.jobs[idx].holds.retain(|&o| o != object);
        self.trace_event(TraceEvent::LockReleased { job: id, object });
    }

    fn release_job(&mut self, task: TaskId) {
        let spec = &self.tasks[task.index()];
        let id = JobId::new(self.jobs.len());
        let critical = spec.tuf().critical_time();
        let max_utility = spec.tuf().max_utility();
        let mut job = Job::new(id, task, self.now, critical);
        if let (
            ExecTimeModel::Uniform {
                min_factor,
                max_factor,
                ..
            },
            Some(rng),
        ) = (self.config.exec_time_model(), self.exec_rng.as_mut())
        {
            job.exec_scale = rand::RngExt::random_range(rng, min_factor..=max_factor);
        }
        self.calendar.push(
            job.absolute_critical_time,
            EventKind::CriticalTimeExpiry { job: id },
        );
        self.jobs.push(job);
        self.live.push(id);
        self.trace_event(TraceEvent::Released { job: id, task });
        let tm = self.metrics.task_mut(task.index());
        tm.released += 1;
        tm.utility_possible += max_utility;
    }

    fn complete_job(&mut self, id: JobId) {
        let idx = id.index();
        let task_idx = self.jobs[idx].task.index();
        let sojourn = self.now - self.jobs[idx].arrival;
        let critical = self.tasks[task_idx].tuf().critical_time();
        if sojourn >= critical {
            self.abort_job(id, AbortReason::CriticalTime);
            return;
        }
        let utility = self.tasks[task_idx].tuf().utility(sojourn);
        {
            let job = &mut self.jobs[idx];
            job.phase = JobPhase::Completed;
            job.resolved_at = Some(self.now);
        }
        self.trace_event(TraceEvent::Completed { job: id, utility });
        let job = &self.jobs[idx];
        let (retries, blockings, preemptions) = (job.retries, job.blockings, job.preemptions);
        let tm = self.metrics.task_mut(task_idx);
        tm.completed += 1;
        tm.utility_accrued += utility;
        tm.sojourn_sum += sojourn;
        tm.sojourn_max = tm.sojourn_max.max(sojourn);
        tm.retries += retries;
        tm.blockings += blockings;
        tm.preemptions += preemptions;
        self.resolve(id, true, utility);
    }

    fn abort_job(&mut self, id: JobId, reason: AbortReason) {
        let idx = id.index();
        let task_idx = self.jobs[idx].task.index();
        let held = std::mem::take(&mut self.jobs[idx].holds);
        for object in held.into_iter().rev() {
            let woken = self.objects.unlock(object, id);
            for w in woken {
                self.jobs[w.index()].phase = JobPhase::Ready;
            }
        }
        if let JobPhase::Blocked(object) = self.jobs[idx].phase {
            self.objects.remove_waiter(object, id);
        }
        {
            let job = &mut self.jobs[idx];
            job.phase = JobPhase::Aborted;
            job.resolved_at = Some(self.now);
        }
        self.trace_event(TraceEvent::Aborted { job: id, reason });
        let handler = self.tasks[task_idx].abort_handler_ticks();
        if handler > 0 {
            self.kernel_busy_until = self.kernel_busy_until.max(self.now) + handler;
        }
        let job = &self.jobs[idx];
        let (retries, blockings, preemptions) = (job.retries, job.blockings, job.preemptions);
        let tm = self.metrics.task_mut(task_idx);
        tm.aborted += 1;
        tm.retries += retries;
        tm.blockings += blockings;
        tm.preemptions += preemptions;
        self.resolve(id, false, 0.0);
    }

    /// Failure injection: halt `id` forever with its locks kept (see the
    /// uniprocessor engine's `crash_job`).
    fn crash_job(&mut self, id: JobId) {
        let idx = id.index();
        let task_idx = self.jobs[idx].task.index();
        {
            let job = &mut self.jobs[idx];
            job.phase = JobPhase::Crashed;
            job.resolved_at = Some(self.now);
        }
        self.trace_event(TraceEvent::Crashed { job: id });
        let job = &self.jobs[idx];
        let (retries, blockings, preemptions) = (job.retries, job.blockings, job.preemptions);
        let tm = self.metrics.task_mut(task_idx);
        tm.crashed += 1;
        tm.retries += retries;
        tm.blockings += blockings;
        tm.preemptions += preemptions;
        self.resolve(id, false, 0.0);
    }

    fn resolve(&mut self, id: JobId, completed: bool, utility: f64) {
        self.live.retain(|&j| j != id);
        for slot in &mut self.running {
            if *slot == Some(id) {
                *slot = None;
            }
        }
        if self.config.record_jobs_enabled() {
            let job = &self.jobs[id.index()];
            self.records.push(JobRecord {
                id,
                task: job.task,
                arrival: job.arrival,
                resolved_at: job.resolved_at.expect("resolved job has a time"),
                completed,
                utility,
                retries: job.retries,
                blockings: job.blockings,
                preemptions: job.preemptions,
            });
        }
    }

    fn request_reschedule<S: UaScheduler>(&mut self, scheduler: &mut S) {
        if self.now < self.kernel_busy_until {
            if !self.resched_queued {
                self.calendar
                    .push(self.kernel_busy_until, EventKind::Reschedule);
                self.resched_queued = true;
            }
            return;
        }
        let previously: Vec<Option<JobId>> = self.running.clone();
        loop {
            let decision = {
                let ctx = self.scheduler_context();
                scheduler.schedule(&ctx)
            };
            let charge = self.config.overhead_model().charge(decision.ops);
            self.trace_event(TraceEvent::SchedulerInvoked { ops: decision.ops });
            self.metrics.sched_invocations += 1;
            self.metrics.sched_ops += decision.ops;
            self.metrics.overhead_ticks += charge;
            self.kernel_busy_until = self.kernel_busy_until.max(self.now) + charge;
            let mut aborted_any = false;
            for &victim in &decision.aborts {
                if self.jobs[victim.index()].phase.is_live() {
                    self.abort_job(victim, AbortReason::Deadlock);
                    aborted_any = true;
                }
            }
            if aborted_any {
                continue;
            }
            self.schedule = decision.order;
            self.dispatch();
            if !self.prepare_all() {
                break;
            }
        }
        for (cpu, prev) in previously.iter().enumerate() {
            if let Some(p) = *prev {
                let still_running = self.running.contains(&Some(p));
                if !still_running && self.jobs[p.index()].phase == JobPhase::Ready {
                    self.jobs[p.index()].preemptions += 1;
                    self.trace_event(TraceEvent::Preempted { job: p });
                }
            }
            if self.running[cpu] != *prev {
                if let Some(job) = self.running[cpu] {
                    self.trace_event(TraceEvent::Dispatched { job });
                }
            }
        }
    }

    fn scheduler_context(&self) -> SchedulerContext<'_> {
        let jobs = self
            .live
            .iter()
            .map(|&id| {
                let job = &self.jobs[id.index()];
                let spec = &self.tasks[job.task.index()];
                JobView {
                    id,
                    task: job.task,
                    arrival: job.arrival,
                    absolute_critical_time: job.absolute_critical_time,
                    window: spec.uam().window(),
                    tuf: spec.tuf(),
                    remaining: job.remaining_exec(spec.segments(), self.config.sharing()),
                    blocked_on: match job.phase {
                        JobPhase::Blocked(o) => Some(o),
                        _ => None,
                    },
                    holds: job.holds.clone(),
                }
            })
            .collect();
        SchedulerContext {
            now: self.now,
            jobs,
        }
    }

    /// Assigns runnable jobs to processors according to the dispatch
    /// policy, keeping already-placed jobs on their processor where
    /// possible.
    fn dispatch(&mut self) {
        if let DispatchPolicy::Partitioned(assignment) = &self.policy {
            let assignment = assignment.clone();
            self.dispatch_partitioned(&assignment);
            return;
        }
        let mut chosen: Vec<JobId> = Vec::with_capacity(self.processors);
        for &id in &self.schedule {
            if chosen.len() == self.processors {
                break;
            }
            if self.jobs[id.index()].phase == JobPhase::Ready && !chosen.contains(&id) {
                chosen.push(id);
            }
        }
        if chosen.len() < self.processors {
            // Work-conserving fallback: fill with ready jobs by ECF.
            let mut rest: Vec<JobId> = self
                .live
                .iter()
                .copied()
                .filter(|&id| {
                    self.jobs[id.index()].phase == JobPhase::Ready && !chosen.contains(&id)
                })
                .collect();
            rest.sort_by_key(|&id| self.jobs[id.index()].absolute_critical_time);
            for id in rest {
                if chosen.len() == self.processors {
                    break;
                }
                chosen.push(id);
            }
        }
        // Keep affinity: jobs already running stay; fill the gaps.
        let mut next: Vec<Option<JobId>> = vec![None; self.processors];
        for (slot, current) in next.iter_mut().zip(&self.running) {
            if let Some(id) = *current {
                if chosen.contains(&id) {
                    *slot = Some(id);
                }
            }
        }
        let mut remaining: Vec<JobId> = chosen
            .into_iter()
            .filter(|id| !next.contains(&Some(*id)))
            .collect();
        for slot in next.iter_mut() {
            if slot.is_none() {
                if let Some(id) = remaining.first().copied() {
                    remaining.remove(0);
                    *slot = Some(id);
                }
            }
        }
        self.running = next;
    }

    /// Partitioned dispatch: each processor independently picks the first
    /// ready job of its own tasks in the schedule's priority order (falling
    /// back to ECF among its ready jobs when the schedule lists none).
    fn dispatch_partitioned(&mut self, assignment: &[usize]) {
        let mut next: Vec<Option<JobId>> = vec![None; self.processors];
        for (cpu, slot) in next.iter_mut().enumerate() {
            let mine = |id: JobId| {
                let job = &self.jobs[id.index()];
                assignment[job.task.index()] == cpu && job.phase == JobPhase::Ready
            };
            *slot = self
                .schedule
                .iter()
                .copied()
                .find(|&id| mine(id))
                .or_else(|| {
                    self.live
                        .iter()
                        .copied()
                        .filter(|&id| mine(id))
                        .min_by_key(|&id| self.jobs[id.index()].absolute_critical_time)
                });
        }
        self.running = next;
    }

    /// Prepares every processor's current segment. Returns whether any lock
    /// request (a scheduling event) occurred.
    fn prepare_all(&mut self) -> bool {
        let mut resched = false;
        for cpu in 0..self.processors {
            resched |= self.prepare_cpu(cpu);
        }
        resched
    }

    fn prepare_cpu(&mut self, cpu: usize) -> bool {
        let Some(id) = self.running[cpu] else {
            return false;
        };
        let idx = id.index();
        let job = &self.jobs[idx];
        if job.seg_idx >= self.tasks[job.task.index()].segments().len() {
            return false;
        }
        let segment = self.tasks[job.task.index()].segments()[job.seg_idx];
        match (segment, self.config.sharing()) {
            (Segment::Access { object, .. }, SharingMode::LockBased { .. })
                if !self.jobs[idx].holds.contains(&object) =>
            {
                self.request_lock(cpu, idx, id, object);
                true
            }
            (Segment::Acquire { object }, SharingMode::LockBased { .. })
                if !self.jobs[idx].holds.contains(&object) =>
            {
                self.request_lock(cpu, idx, id, object);
                true
            }
            (Segment::Access { object, .. }, SharingMode::LockFree { .. })
                if self.jobs[idx].access_start_version.is_none() =>
            {
                self.jobs[idx].access_start_version = Some(self.objects.version(object));
                false
            }
            _ => false,
        }
    }

    fn request_lock(&mut self, cpu: usize, idx: usize, id: JobId, object: ObjectId) {
        if self.objects.try_lock(object, id) {
            self.jobs[idx].holds.push(object);
            self.trace_event(TraceEvent::LockAcquired { job: id, object });
        } else {
            self.jobs[idx].phase = JobPhase::Blocked(object);
            self.jobs[idx].blockings += 1;
            self.running[cpu] = None;
            self.trace_event(TraceEvent::Blocked { job: id, object });
        }
    }
}
