//! One-command reproduction: runs every paper experiment in sequence by
//! invoking the sibling binaries (same build profile, same defaults) and
//! streaming their output.
//!
//! Usage: `cargo run -p lfrt-bench --release --bin paper_all`

use std::process::Command;

fn main() {
    let me = std::env::current_exe().expect("own path");
    let bin_dir = me.parent().expect("bin directory").to_path_buf();
    let runs: &[(&str, &[&str])] = &[
        ("fig8_access_times", &[]),
        ("fig9_cml", &[]),
        ("fig10_13_aur_cmr", &["--load", "0.4", "--tufs", "step"]),
        ("fig10_13_aur_cmr", &["--load", "0.4", "--tufs", "hetero"]),
        ("fig10_13_aur_cmr", &["--load", "1.1", "--tufs", "step"]),
        ("fig10_13_aur_cmr", &["--load", "1.1", "--tufs", "hetero"]),
        ("fig14_readers", &[]),
        ("retry_bound_table", &[]),
        ("sojourn_crossover", &[]),
        ("taxonomy_table", &[]),
        ("crash_starvation", &[]),
        ("mp_scaling", &[]),
    ];
    let mut failed = Vec::new();
    for (bin, args) in runs {
        println!("\n==================== {bin} {} ====================", args.join(" "));
        let status = Command::new(bin_dir.join(bin))
            .args(*args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            failed.push(format!("{bin} {}", args.join(" ")));
        }
    }
    println!("\n====================================================");
    if failed.is_empty() {
        println!("all experiments completed; see EXPERIMENTS.md for the recorded shapes.");
    } else {
        println!("FAILED experiments: {failed:?}");
        std::process::exit(1);
    }
}
