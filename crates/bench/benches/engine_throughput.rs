//! Criterion bench for the simulator itself: end-to-end events-per-second
//! of the uniprocessor and multiprocessor engines on a standard workload.
//! Useful to keep the substrate fast enough for large parameter sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lfrt_core::RuaLockFree;
use lfrt_sim::mp::MpEngine;
use lfrt_sim::workload::WorkloadSpec;
use lfrt_sim::{Engine, SharingMode, SimConfig};

fn workload() -> WorkloadSpec {
    WorkloadSpec {
        horizon: 300_000,
        ..WorkloadSpec::paper_baseline(5)
    }
}

fn uni_engine(c: &mut Criterion) {
    let spec = workload();
    c.bench_function("engine_uniprocessor_full_run", |b| {
        b.iter(|| {
            let (tasks, traces) = spec.build().expect("valid workload");
            let outcome = Engine::new(
                tasks,
                traces,
                SimConfig::new(SharingMode::LockFree { access_ticks: 10 }).record_jobs(false),
            )
            .expect("valid engine")
            .run(RuaLockFree::new());
            std::hint::black_box(outcome.metrics.released())
        });
    });
}

fn mp_engine(c: &mut Criterion) {
    let spec = workload();
    let mut group = c.benchmark_group("mp_engine_full_run");
    for cpus in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(cpus), &cpus, |b, &cpus| {
            b.iter(|| {
                let (tasks, traces) = spec.build().expect("valid workload");
                let outcome = MpEngine::new(
                    tasks,
                    traces,
                    SimConfig::new(SharingMode::LockFree { access_ticks: 10 }).record_jobs(false),
                    cpus,
                )
                .expect("valid engine")
                .run(RuaLockFree::new());
                std::hint::black_box(outcome.metrics.released())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, uni_engine, mp_engine);
criterion_main!(benches);
