//! Cross-validation of Lemmas 4 and 5: observed accrued-utility ratios fall
//! within the analytic bounds when the lemmas' preconditions (feasible jobs,
//! non-increasing TUFs) hold.

use lockfree_rt::analysis::{aur_bounds, AurTaskParams, RetryBoundInput};
use lockfree_rt::core::{RuaLockBased, RuaLockFree};
use lockfree_rt::sim::{
    AccessKind, Engine, ObjectId, Segment, SharingMode, SimConfig, TaskSpec, UaScheduler,
};
use lockfree_rt::tuf::Tuf;
use lockfree_rt::uam::{ArrivalGenerator, ArrivalTrace, PeriodicArrivals, Uam};

const N: usize = 5;
const WINDOW: u64 = 100_000;
const CRITICAL: u64 = 90_000;
const COMPUTE: u64 = 1_000;
const ACCESSES: u64 = 2;
const HORIZON: u64 = 1_000_000;

fn identical_tasks(tuf: &Tuf) -> (Vec<TaskSpec>, Vec<ArrivalTrace>) {
    let mut tasks = Vec::new();
    let mut traces = Vec::new();
    for i in 0..N {
        let mut segments = Vec::new();
        let chunk = COMPUTE / (ACCESSES + 1);
        for k in 0..=ACCESSES {
            segments.push(Segment::Compute(if k == 0 {
                COMPUTE - chunk * ACCESSES
            } else {
                chunk
            }));
            if k < ACCESSES {
                segments.push(Segment::Access {
                    object: ObjectId::new(0),
                    kind: AccessKind::Write,
                });
            }
        }
        tasks.push(
            TaskSpec::builder(format!("t{i}"))
                .tuf(tuf.clone())
                .uam(Uam::periodic(WINDOW))
                .segments(segments)
                .build()
                .expect("valid task"),
        );
        // Stagger phases so contention exists but the system stays feasible.
        traces.push(PeriodicArrivals::with_phase(WINDOW, i as u64 * 500).generate(HORIZON));
    }
    (tasks, traces)
}

/// Conservative worst-case delay `I_i + R_i` for task `i` under lock-free
/// sharing: every other task's maximal job count in the window executes
/// fully (interference), plus the Theorem 2 retry bound times `s`.
fn lock_free_delay(access_ticks: u64) -> u64 {
    let uam = Uam::periodic(WINDOW);
    let others: Vec<Uam> = (1..N).map(|_| uam).collect();
    let input = RetryBoundInput {
        own_max_arrivals: 1,
        critical_time: CRITICAL,
        others: others.clone(),
    };
    let retry_time = access_ticks * input.retry_bound();
    let per_other_exec = COMPUTE + ACCESSES * access_ticks + retry_time;
    let interference: u64 = others
        .iter()
        .map(|o| u64::from(o.max_arrivals()) * (CRITICAL.div_ceil(o.window()) + 1) * per_other_exec)
        .sum();
    interference + retry_time
}

fn run_and_observe<S: UaScheduler>(tuf: &Tuf, sharing: SharingMode, scheduler: S) -> (f64, u64) {
    let (tasks, traces) = identical_tasks(tuf);
    let outcome = Engine::new(tasks, traces, SimConfig::new(sharing))
        .expect("valid engine")
        .run(scheduler);
    assert_eq!(
        outcome.metrics.aborted(),
        0,
        "the lemmas require all jobs feasible"
    );
    let max_sojourn = outcome
        .records
        .iter()
        .map(|r| r.sojourn())
        .max()
        .unwrap_or(0);
    (outcome.metrics.aur(), max_sojourn)
}

fn params(tuf: &Tuf, delay: u64) -> Vec<AurTaskParams> {
    (0..N)
        .map(|_| AurTaskParams {
            uam: Uam::periodic(WINDOW),
            tuf: tuf.clone(),
            compute: COMPUTE,
            accesses: ACCESSES,
            delay,
        })
        .collect()
}

#[test]
fn lemma4_step_tufs_feasible_underload_has_unit_aur() {
    let s = 50u64;
    let tuf = Tuf::step(8.0, CRITICAL).expect("valid");
    let delay = lock_free_delay(s);
    let bounds = aur_bounds(&params(&tuf, delay), s as f64);
    // The conservative worst case still beats the critical time, so both
    // analytic bounds are 1 — and the measured AUR must agree.
    assert!(
        (bounds.lower - 1.0).abs() < 1e-12,
        "setup must be feasible in the worst case"
    );
    let (observed, _) = run_and_observe(
        &tuf,
        SharingMode::LockFree { access_ticks: s },
        RuaLockFree::new(),
    );
    assert!((observed - 1.0).abs() < 1e-12);
    assert!(bounds.contains(observed));
}

#[test]
fn lemma4_linear_tufs_observed_aur_within_bounds() {
    let s = 50u64;
    let tuf = Tuf::linear_decreasing(10.0, CRITICAL).expect("valid");
    let delay = lock_free_delay(s);
    let bounds = aur_bounds(&params(&tuf, delay), s as f64);
    assert!(bounds.lower > 0.0, "bounds must be informative");
    assert!(bounds.upper <= 1.0 + 1e-12);
    let (observed, max_sojourn) = run_and_observe(
        &tuf,
        SharingMode::LockFree { access_ticks: s },
        RuaLockFree::new(),
    );
    let best = COMPUTE + ACCESSES * s;
    assert!(
        max_sojourn >= best,
        "sojourns cannot beat the no-contention minimum"
    );
    assert!(
        u128::from(max_sojourn) <= u128::from(best + delay),
        "measured max sojourn {max_sojourn} exceeded the analytic worst case {}",
        best + delay
    );
    assert!(
        bounds.contains(observed),
        "observed {observed} outside [{}, {}]",
        bounds.lower,
        bounds.upper
    );
}

#[test]
fn lemma5_lock_based_observed_aur_within_bounds() {
    let r = 200u64;
    let tuf = Tuf::linear_decreasing(10.0, CRITICAL).expect("valid");
    // Lock-based worst delay: interference as before plus the blocking term
    // B_i = r·min(m_i, n_i).
    let uam = Uam::periodic(WINDOW);
    let n_i: u64 = (1..N as u64)
        .map(|_| u64::from(uam.max_arrivals()) * (CRITICAL.div_ceil(uam.window()) + 1))
        .sum();
    let blocking = r * ACCESSES.min(n_i);
    let per_other_exec = COMPUTE + ACCESSES * r + blocking;
    let interference: u64 = (1..N as u64)
        .map(|_| {
            u64::from(uam.max_arrivals()) * (CRITICAL.div_ceil(uam.window()) + 1) * per_other_exec
        })
        .sum();
    let delay = interference + blocking;
    let bounds = aur_bounds(&params(&tuf, delay), r as f64);
    let (observed, max_sojourn) = run_and_observe(
        &tuf,
        SharingMode::LockBased { access_ticks: r },
        RuaLockBased::new(),
    );
    let best = COMPUTE + ACCESSES * r;
    assert!(
        u128::from(max_sojourn) <= u128::from(best + delay),
        "measured max sojourn {max_sojourn} exceeded the analytic worst case {}",
        best + delay
    );
    assert!(
        bounds.contains(observed),
        "observed {observed} outside [{}, {}]",
        bounds.lower,
        bounds.upper
    );
}

#[test]
fn lemma_bounds_tighten_with_smaller_access_time() {
    // The lock-free upper bound with s dominates the lock-based upper bound
    // with r > s — the structural reason lock-free can accrue more utility.
    let tuf = Tuf::linear_decreasing(10.0, CRITICAL).expect("valid");
    let lf = aur_bounds(&params(&tuf, 0), 10.0);
    let lb = aur_bounds(&params(&tuf, 0), 300.0);
    assert!(lf.upper > lb.upper);
    assert!(lf.lower >= lb.lower);
}
