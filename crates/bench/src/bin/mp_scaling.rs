//! **Multiprocessor exploration** (the paper's §7 future work) — how global
//! lock-free RUA behaves as processors are added.
//!
//! Two effects compete as `m` grows:
//!
//! * more parallel capacity → more jobs meet their critical times;
//! * more *true concurrency* on shared objects → lock-free retries now
//!   happen **without preemption** (two CPUs racing one object), a failure
//!   mode the uniprocessor Theorem 2 bound does not model.
//!
//! The table reports AUR/CMR and the retry count per processor count, on a
//! deliberately overloaded single-object workload so both effects show.
//!
//! Usage: `cargo run -p lfrt-bench --release --bin mp_scaling --
//! [--seeds 5] [--s 50] [--json <path>] [--threads N] [--quick]`

use lfrt_bench::json::{self, Point, Report};
use lfrt_bench::runner::Sweep;
use lfrt_bench::stats::Summary;
use lfrt_bench::{table, Args};
use lfrt_core::RuaLockFree;
use lfrt_sim::mp::MpEngine;
use lfrt_sim::workload::{ArrivalStyle, TufClass, WorkloadSpec};
use lfrt_sim::{SharingMode, SimConfig};

fn main() {
    let started = std::time::Instant::now();
    let args = Args::from_env();
    let trace = lfrt_bench::trace::Session::from_args(&args, "mp_scaling");
    let quick = args.quick();
    let seeds = args.get_u64("seeds", if quick { 2 } else { 5 });
    let s = args.get_u64("s", 50);
    let horizon = args.get_u64("horizon", if quick { 200_000 } else { 400_000 });
    let processor_counts: Vec<usize> = if quick {
        vec![1, 2, 4, 8]
    } else {
        vec![1, 2, 3, 4, 6, 8]
    };

    println!("# Multiprocessor scaling: global lock-free RUA (paper §7 future work)");
    println!("# 12 tasks, 2 shared objects, s = {s} µs, load 2.5 (overloaded), {seeds} seeds");

    let points: Vec<(usize, u64)> = processor_counts
        .iter()
        .flat_map(|&m| (0..seeds).map(move |seed| (m, seed)))
        .collect();
    let results = Sweep::new("mp_scaling", points)
        .threads(args.threads())
        .run(|&(processors, seed)| {
            let spec = WorkloadSpec {
                num_tasks: 12,
                num_objects: 2,
                accesses_per_job: 4,
                tuf_class: TufClass::Step,
                target_load: 2.5,
                window_range: (6_000, 18_000),
                max_burst: 2,
                critical_time_frac: 0.9,
                arrival_style: ArrivalStyle::RandomUam { intensity: 4.0 },
                horizon,
                read_fraction: 0.0,
                seed,
            };
            let (tasks, traces) = spec.build().expect("valid workload");
            let outcome = MpEngine::new(
                tasks,
                traces,
                SimConfig::new(SharingMode::LockFree { access_ticks: s }).record_jobs(false),
                processors,
            )
            .expect("valid engine")
            .run(RuaLockFree::new());
            [
                outcome.metrics.aur(),
                outcome.metrics.cmr(),
                outcome.metrics.retries() as f64,
            ]
        });

    let mut report = Report::new(
        "mp_scaling",
        "mp",
        "Global lock-free RUA vs processor count",
    )
    .config("seeds", seeds)
    .config("s_ticks", s)
    .config("horizon", horizon)
    .config("num_tasks", 12u64)
    .config("target_load", 2.5);

    let mut rows = Vec::new();
    for (i, &processors) in processor_counts.iter().enumerate() {
        let chunk = &results[i * seeds as usize..(i + 1) * seeds as usize];
        let column = |j: usize| chunk.iter().map(|c| c[j]).collect::<Vec<f64>>();
        let (aur, cmr, retries) = (column(0), column(1), column(2));
        rows.push(vec![
            processors.to_string(),
            Summary::of(&aur).display(3),
            Summary::of(&cmr).display(3),
            Summary::of(&retries).display(0),
        ]);
        report.points.push(Point {
            params: vec![("processors".into(), processors.into())],
            seeds: (0..seeds).collect(),
            metrics: vec![
                ("aur".into(), json::summary_of(&aur)),
                ("cmr".into(), json::summary_of(&cmr)),
                ("retries".into(), json::summary_of(&retries)),
            ],
            timing: Vec::new(),
        });
    }
    table::print(
        "Global lock-free RUA vs processor count (overloaded workload)",
        &["CPUs", "AUR", "CMR", "retries"],
        &rows,
    );
    println!("\nshape check: AUR/CMR climb with capacity; retries reflect true-concurrency races.");

    if let Some(path) = args.json_path() {
        let meta = json::RunMeta::capture(args.threads(), quick);
        json::write_reports(&path, &[report], meta, started).expect("write JSON report");
    }
    trace.finish(args.threads(), args.quick());
}
