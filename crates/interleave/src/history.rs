//! Per-execution operation histories for linearizability checking.
//!
//! Model threads bracket each high-level operation with
//! [`History::begin`]/[`History::end`]; the recorder timestamps both events
//! on a shared logical clock. Because the runtime serializes model threads
//! (one runs at a time), the clock induces a total order on events that is
//! consistent with the explored interleaving, giving exact real-time
//! precedence intervals for the checker in [`crate::linear`].

use std::sync::{Mutex, MutexGuard, PoisonError};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Handle returned by [`History::begin`], consumed by [`History::end`].
#[derive(Debug)]
#[must_use = "an operation left pending poisons the history"]
pub struct OpToken(usize);

/// A completed operation: what was invoked, what it returned, and the
/// real-time interval it occupied.
#[derive(Debug, Clone)]
pub struct CompletedOp<O, R> {
    /// Model thread that performed the operation.
    pub thread: usize,
    /// The invocation.
    pub op: O,
    /// The response.
    pub result: R,
    /// Logical time of the invocation event.
    pub call: u64,
    /// Logical time of the response event.
    pub ret: u64,
}

struct Pending<O, R> {
    thread: usize,
    op: O,
    call: u64,
    result: Option<(R, u64)>,
}

/// A concurrent-operation recorder, created fresh per execution.
pub struct History<O, R> {
    inner: Mutex<Inner<O, R>>,
}

struct Inner<O, R> {
    clock: u64,
    ops: Vec<Pending<O, R>>,
}

impl<O: Clone, R: Clone> History<O, R> {
    /// An empty history.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Inner {
                clock: 0,
                ops: Vec::new(),
            }),
        }
    }

    /// Records the invocation of `op` by `thread`. Call immediately before
    /// the operation's first shared-memory step.
    pub fn begin(&self, thread: usize, op: O) -> OpToken {
        let mut inner = lock(&self.inner);
        inner.clock += 1;
        let call = inner.clock;
        inner.ops.push(Pending {
            thread,
            op,
            call,
            result: None,
        });
        OpToken(inner.ops.len() - 1)
    }

    /// Records the response of the operation opened by `token`. Call
    /// immediately after the operation's last shared-memory step.
    pub fn end(&self, token: OpToken, result: R) {
        let mut inner = lock(&self.inner);
        inner.clock += 1;
        let ret = inner.clock;
        let pending = &mut inner.ops[token.0];
        debug_assert!(pending.result.is_none(), "operation completed twice");
        pending.result = Some((result, ret));
    }

    /// The completed operations, in invocation order.
    ///
    /// # Panics
    ///
    /// Panics if any operation is still pending — histories are checked
    /// after all model threads have joined, so a pending operation is a
    /// scenario bug. (Aborted executions never reach a checker.)
    pub fn completed(&self) -> Vec<CompletedOp<O, R>> {
        lock(&self.inner)
            .ops
            .iter()
            .map(|p| {
                let (result, ret) = p
                    .result
                    .clone()
                    .expect("operation still pending at history collection");
                CompletedOp {
                    thread: p.thread,
                    op: p.op.clone(),
                    result,
                    call: p.call,
                    ret,
                }
            })
            .collect()
    }

    /// Number of operations begun so far.
    pub fn len(&self) -> usize {
        lock(&self.inner).ops.len()
    }

    /// Whether no operation was begun.
    pub fn is_empty(&self) -> bool {
        lock(&self.inner).ops.is_empty()
    }
}

impl<O: Clone, R: Clone> Default for History<O, R> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_intervals_on_a_shared_clock() {
        let h: History<&str, u32> = History::new();
        let a = h.begin(0, "push");
        let b = h.begin(1, "pop");
        h.end(b, 7);
        h.end(a, 0);
        let ops = h.completed();
        assert_eq!(ops.len(), 2);
        // a: call 1, ret 4; b: call 2, ret 3 — b nested inside a.
        assert_eq!((ops[0].call, ops[0].ret), (1, 4));
        assert_eq!((ops[1].call, ops[1].ret), (2, 3));
        assert_eq!(ops[1].result, 7);
        assert_eq!(ops[0].thread, 0);
    }

    #[test]
    #[should_panic(expected = "still pending")]
    fn pending_operation_poisons_collection() {
        let h: History<&str, u32> = History::new();
        let _t = h.begin(0, "op");
        let _ = h.completed();
    }
}
