use lfrt_uam::Uam;

/// Inputs to the paper's Theorem 2 retry bound for one job `J_i`.
///
/// The bound counts scheduling events within `[t_0, t_0 + C_i]`: each of the
/// other tasks `T_j` can release at most `a_j·(⌈C_i/W_j⌉ + 1)` jobs in the
/// interval (every release and every departure is an event, hence the factor
/// 2), and `J_i`'s own task contributes at most `3a_i` events (releases and
/// completions inside the interval plus completions of jobs released up to
/// `C_i` earlier). By Lemma 1 a job cannot be preempted — and therefore
/// cannot retry — more often than the scheduler is invoked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryBoundInput {
    /// `a_i`: the job's own task's per-window arrival maximum.
    pub own_max_arrivals: u32,
    /// `C_i`: the job's critical time, in ticks.
    pub critical_time: u64,
    /// The arrival models of all other tasks (`T_j`, `j ≠ i`).
    pub others: Vec<Uam>,
}

impl RetryBoundInput {
    /// The Theorem 2 bound:
    /// `f_i ≤ 3a_i + Σ_{j≠i} 2a_j(⌈C_i/W_j⌉ + 1)`.
    pub fn retry_bound(&self) -> u64 {
        3 * u64::from(self.own_max_arrivals) + 2 * self.interference_x()
    }

    /// The interference term `x_i = Σ_{j≠i} a_j(⌈C_i/W_j⌉ + 1)` shared with
    /// Theorem 3.
    pub fn interference_x(&self) -> u64 {
        self.others
            .iter()
            .map(|uam| {
                u64::from(uam.max_arrivals()) * (self.critical_time.div_ceil(uam.window()) + 1)
            })
            .sum()
    }

    /// Upper bound on the total number of scheduling events `J_i` can
    /// witness (identical to the retry bound; retries cannot outnumber
    /// events, per Lemma 1).
    pub fn event_bound(&self) -> u64 {
        self.retry_bound()
    }

    /// Builds the bound input for task `i` of a task set described by
    /// `(uam, critical_time)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn for_task(tasks: &[(Uam, u64)], i: usize) -> Self {
        let (own, critical_time) = tasks[i];
        Self {
            own_max_arrivals: own.max_arrivals(),
            critical_time,
            others: tasks
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &(uam, _))| uam)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uam(a: u32, w: u64) -> Uam {
        Uam::new(1, a, w).expect("valid")
    }

    #[test]
    fn matches_hand_computation() {
        // f ≤ 3·2 + 2·[ 3·(⌈1000/400⌉+1) + 1·(⌈1000/1000⌉+1) ]
        //   = 6 + 2·[ 3·4 + 1·2 ] = 6 + 28 = 34.
        let input = RetryBoundInput {
            own_max_arrivals: 2,
            critical_time: 1_000,
            others: vec![uam(3, 400), uam(1, 1_000)],
        };
        assert_eq!(input.interference_x(), 14);
        assert_eq!(input.retry_bound(), 34);
    }

    #[test]
    fn no_other_tasks_leaves_own_events_only() {
        let input = RetryBoundInput {
            own_max_arrivals: 4,
            critical_time: 500,
            others: vec![],
        };
        assert_eq!(input.retry_bound(), 12);
    }

    #[test]
    fn window_longer_than_critical_time_still_contributes_two_bursts() {
        // ⌈C/W⌉ + 1 = 2 when W > C: bursts at both ends of the interval.
        let input = RetryBoundInput {
            own_max_arrivals: 1,
            critical_time: 100,
            others: vec![uam(5, 10_000)],
        };
        assert_eq!(input.interference_x(), 10);
        assert_eq!(input.retry_bound(), 23);
    }

    #[test]
    fn bound_monotone_in_critical_time() {
        let mk = |c| RetryBoundInput {
            own_max_arrivals: 1,
            critical_time: c,
            others: vec![uam(2, 300), uam(1, 700)],
        };
        let mut prev = 0;
        for c in [1u64, 100, 300, 900, 5_000] {
            let b = mk(c).retry_bound();
            assert!(b >= prev, "bound must not shrink as C grows");
            prev = b;
        }
    }

    #[test]
    fn for_task_excludes_self() {
        let tasks = vec![(uam(1, 100), 90), (uam(2, 200), 150), (uam(3, 300), 250)];
        let input = RetryBoundInput::for_task(&tasks, 1);
        assert_eq!(input.own_max_arrivals, 2);
        assert_eq!(input.critical_time, 150);
        assert_eq!(input.others.len(), 2);
        assert!(input.others.contains(&uam(1, 100)));
        assert!(input.others.contains(&uam(3, 300)));
    }

    #[test]
    fn bound_independent_of_object_count() {
        // Theorem 2's remark: f_i does not depend on how many objects J_i
        // touches — the input has no object-count parameter at all, so two
        // jobs differing only in accesses share a bound.
        let input = RetryBoundInput {
            own_max_arrivals: 1,
            critical_time: 1_000,
            others: vec![uam(1, 500)],
        };
        assert_eq!(input.retry_bound(), input.clone().retry_bound());
    }
}
