//! PRG006 fixtures: a heap allocation behind a no_alloc-declared op
//! (fires, through one call-graph hop) and an alloc-free twin (clean).

pub struct Prg006Broken;

impl Prg006Broken {
    pub fn op(&self) -> usize {
        self.record()
    }

    fn record(&self) -> usize {
        let boxed = Box::new(7u64);
        *boxed as usize
    }
}

pub struct Prg006Clean;

impl Prg006Clean {
    pub fn op(&self) -> usize {
        self.record()
    }

    fn record(&self) -> usize {
        7
    }
}

pub struct Prg006SpillBroken;

impl Prg006SpillBroken {
    pub fn op(&self) -> usize {
        self.acquire()
    }

    fn acquire(&self) -> usize {
        let layout = Layout::new::<u64>();
        let block = unsafe { std::alloc::alloc(layout) };
        block as usize
    }
}

pub struct Prg006SpillClean;

impl Prg006SpillClean {
    pub fn op(&self) -> usize {
        self.acquire()
    }

    fn acquire(&self) -> usize {
        CACHE_TOP.fetch_sub(1, Ordering::Relaxed)
    }
}
