//! ORD004 fixture: SeqCst without a local store→load (Dekker) pattern.

fn lonely_seqcst(count: &AtomicUsize) {
    count.fetch_add(1, SeqCst);
}

fn dekker(flag: &AtomicBool, other: &AtomicBool) {
    flag.store(true, SeqCst);
    let _ = other.load(SeqCst);
}

fn fenced(flag: &AtomicBool) {
    flag.store(true, SeqCst);
    fence(SeqCst);
}
