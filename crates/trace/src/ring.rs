//! Per-thread event rings: the recorder's wait-free hot path and its
//! seqlock-style drain.
//!
//! Each thread that records while the recorder is enabled owns one
//! [`RING_CAPACITY`]-slot ring for life (rings of exited threads are parked
//! and reused by later threads, the same registry idiom as the epoch
//! reclaimer's `Record` list — except registration is cold, so a plain
//! mutex-guarded `Vec` replaces the lock-free list). A slot holds one event
//! as two `AtomicU64` words: the timestamp and the packed
//! kind/site/value.
//!
//! **Write protocol** (single writer per ring): store both slot words
//! `Release`, then publish by storing `head = seq + 1` with `Release`. The
//! head's `Release` makes both slot words visible to any reader that
//! `Acquire`s a head value `> seq`. The slot words carry `Release` too —
//! not for publication, but to keep the ring's stores committing in program
//! order on weakly ordered hardware: with plain `Relaxed` slot stores, a
//! *later* event's slot write may overtake an *earlier* buffered head
//! publish (PSO-style store–store reordering; legal under this repo's
//! store-buffer model and on ARM, where later stores may be reordered
//! before an earlier `stlr`). A drain could then copy the newer event's
//! words while `h2` still reads the old head, defeating the seqlock
//! validation below and keeping a torn event. The interleave mirror
//! (`tests/interleave_mirror.rs`) catches exactly that demotion; on x86 a
//! `Release` store compiles to a plain `mov`, so the hardening is free
//! where the benchmarks run.
//!
//! **Drain protocol** (any thread, serialized by a mutex): `Acquire` the
//! head (`h1`), copy the undrained window `[max(drained, h1 - cap), h1)`
//! with `Relaxed` loads, then re-read the head (`h2`). Any copied event
//! with `seq + cap <= h2` sits in a slot the writer may have been
//! overwriting during the copy — its two words may belong to different
//! events — so it is discarded and counted, seqlock-style. Events the ring
//! overwrote before the drain arrived are counted as `overwritten`. A
//! drain never blocks or retries against the writer: it is the writer that
//! wins every race, by design — a flight recorder must never slow down the
//! flight.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::{EventKind, Site, VALUE_BITS};

/// Events per ring (per thread). 4096 events × 16 bytes = 64 KiB/thread.
pub const RING_CAPACITY: usize = 1 << 12;

/// Pads a value to 128 bytes (its own cache-line pair) so the ring head the
/// writer hammers never false-shares with registry or slot data. Local
/// re-implementation of `crossbeam::utils::CachePadded` — this crate sits
/// below the vendored crossbeam and cannot depend on it.
#[repr(align(128))]
struct Pad<T>(T);

struct Slot {
    ts: AtomicU64,
    data: AtomicU64,
}

struct Ring {
    /// Next sequence number to write; `seq & (RING_CAPACITY - 1)` indexes
    /// `slots`. Published with `Release` after the slot words are stored.
    head: Pad<AtomicU64>,
    /// Drain cursor: sequences below this were already returned by a drain.
    /// Owned by the drainer (all drains serialize on [`registry`]).
    drained: AtomicU64,
    /// Whether a live thread currently owns this ring.
    in_use: AtomicBool,
    slots: Vec<Slot>,
}

impl Ring {
    fn new() -> Ring {
        Ring {
            head: Pad(AtomicU64::new(0)),
            drained: AtomicU64::new(0),
            in_use: AtomicBool::new(true),
            slots: (0..RING_CAPACITY)
                .map(|_| Slot {
                    ts: AtomicU64::new(0),
                    data: AtomicU64::new(0),
                })
                .collect(),
        }
    }
}

/// All rings ever created, living for the process lifetime. Only touched on
/// the cold paths: thread registration, thread exit, and drains.
fn registry() -> MutexGuard<'static, Vec<&'static Ring>> {
    static REGISTRY: Mutex<Vec<&'static Ring>> = Mutex::new(Vec::new());
    REGISTRY
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The calling thread's ring handle; releases the ring at thread exit.
struct Handle {
    ring: &'static Ring,
}

impl Handle {
    fn acquire() -> Handle {
        let mut rings = registry();
        for ring in rings.iter() {
            if !ring.in_use.load(Ordering::Relaxed) {
                ring.in_use.store(true, Ordering::Relaxed);
                return Handle { ring };
            }
        }
        let ring: &'static Ring = Box::leak(Box::new(Ring::new()));
        rings.push(ring);
        Handle { ring }
    }
}

impl Drop for Handle {
    fn drop(&mut self) {
        // Park the ring for reuse; its undrained events stay readable, which
        // is exactly what a flight recorder wants from a crashed thread.
        self.ring.in_use.store(false, Ordering::Relaxed);
    }
}

thread_local! {
    static HANDLE: Handle = Handle::acquire();
}

/// Writes one packed event to the calling thread's ring (registering the
/// ring on first use). Drops the event silently during thread teardown.
#[inline]
pub(crate) fn write(ts: u64, data: u64) {
    let _ = HANDLE.try_with(|h| {
        let ring = h.ring;
        let seq = ring.head.0.load(Ordering::Relaxed);
        let slot = &ring.slots[seq as usize & (RING_CAPACITY - 1)];
        // Release on the slot words keeps every ring store committing in
        // program order: a later event's Relaxed slot store could otherwise
        // overtake an older buffered head publish (PSO), letting a drain
        // keep a torn event (module docs; tests/interleave_mirror.rs).
        slot.ts.store(ts, Ordering::Release);
        slot.data.store(data, Ordering::Release);
        ring.head.0.store(seq + 1, Ordering::Release);
    });
}

/// One decoded flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the recorder's process-wide origin ([`crate::now_ns`]).
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Where it happened.
    pub site: Site,
    /// Kind-specific payload (48 bits).
    pub value: u64,
}

/// Loss accounting for one drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Rings that contributed at least one kept event.
    pub rings: usize,
    /// Events overwritten by the ring before this drain reached them.
    pub overwritten: u64,
    /// Copied events discarded because the writer may have been mid-
    /// overwrite during the copy (possible torn slot).
    pub discarded: u64,
}

/// Drains every ring: returns all undrained events merged and sorted by
/// timestamp, plus loss accounting. Writers are never blocked; concurrent
/// drains serialize on the registry mutex.
pub(crate) fn drain_all() -> (Vec<Event>, DrainStats) {
    let rings = registry();
    let mut events = Vec::new();
    let mut stats = DrainStats::default();
    for ring in rings.iter() {
        let h1 = ring.head.0.load(Ordering::Acquire);
        let cursor = ring.drained.load(Ordering::Relaxed);
        let start = cursor.max(h1.saturating_sub(RING_CAPACITY as u64));
        stats.overwritten += start - cursor;
        let mut copied = Vec::with_capacity((h1 - start) as usize);
        for seq in start..h1 {
            let slot = &ring.slots[seq as usize & (RING_CAPACITY - 1)];
            // Relaxed is enough: slots in [start, h1) were published by the
            // Release store of a head value <= h1, which the Acquire load
            // of h1 synchronized with.
            copied.push((
                seq,
                slot.ts.load(Ordering::Relaxed),
                slot.data.load(Ordering::Relaxed),
            ));
        }
        // Seqlock-style validation: anything the writer might have started
        // overwriting while we copied is torn-suspect. With the head now at
        // h2, the writer may be mid-write of sequence h2 — so slots of
        // sequences <= h2 - capacity are suspect; later ones are intact.
        let h2 = ring.head.0.load(Ordering::Acquire);
        let mut kept = 0u64;
        for (seq, ts, data) in copied {
            if seq + RING_CAPACITY as u64 <= h2 {
                stats.discarded += 1;
                continue;
            }
            if let Some(ev) = decode(ts, data) {
                events.push(ev);
                kept += 1;
            }
        }
        if kept > 0 {
            stats.rings += 1;
        }
        ring.drained.store(h1, Ordering::Relaxed);
    }
    drop(rings);
    events.sort_by_key(|ev| ev.ts_ns);
    (events, stats)
}

fn decode(ts: u64, data: u64) -> Option<Event> {
    Some(Event {
        ts_ns: ts,
        kind: EventKind::from_u8((data >> 56) as u8)?,
        site: Site::from_u8((data >> 48) as u8)?,
        value: data & ((1 << VALUE_BITS) - 1),
    })
}

/// Number of rings ever registered (diagnostic; used by the disabled-mode
/// tests to prove the fast path allocates nothing).
pub fn rings_registered() -> usize {
    registry().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{emit, set_enabled, tests_serialize};

    #[test]
    fn write_and_drain_roundtrip() {
        let _guard = tests_serialize();
        set_enabled(true);
        crate::drain(); // flush leftovers from other serialized tests
        emit(EventKind::EpochAdvance, Site::Epoch, 42);
        set_enabled(false);
        let (events, stats) = crate::drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::EpochAdvance);
        assert_eq!(events[0].site, Site::Epoch);
        assert_eq!(events[0].value, 42);
        assert_eq!(stats.rings, 1);
        assert_eq!(stats.overwritten, 0);
        assert_eq!(stats.discarded, 0);
    }

    #[test]
    fn value_truncates_to_48_bits() {
        let _guard = tests_serialize();
        set_enabled(true);
        crate::drain();
        emit(EventKind::EpochDefer, Site::Epoch, u64::MAX);
        set_enabled(false);
        let (events, _) = crate::drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].value, (1u64 << VALUE_BITS) - 1);
    }

    #[test]
    fn disabled_thread_registers_no_ring() {
        let _guard = tests_serialize();
        set_enabled(false);
        let before = rings_registered();
        std::thread::spawn(|| {
            for _ in 0..100 {
                emit(EventKind::CasAttempt, Site::Other, 0);
            }
        })
        .join()
        .unwrap();
        assert_eq!(rings_registered(), before);
    }
}
