//! Soundness of the admission test: any task set it admits must meet every
//! critical time when actually simulated — under both disciplines and many
//! random workloads.

use lockfree_rt::analysis::admission::{admit, AdmissionTask, Discipline};
use lockfree_rt::core::{RuaLockBased, RuaLockFree};
use lockfree_rt::sim::workload::{ArrivalStyle, TufClass, WorkloadSpec};
use lockfree_rt::sim::{Engine, SharingMode, SimConfig, TaskSpec};

fn to_admission(tasks: &[TaskSpec]) -> Vec<AdmissionTask> {
    tasks
        .iter()
        .map(|t| AdmissionTask {
            uam: *t.uam(),
            critical_time: t.tuf().critical_time(),
            compute: t.compute_ticks(),
            accesses: t.accesses_count_u64(),
        })
        .collect()
}

trait AccessesU64 {
    fn accesses_count_u64(&self) -> u64;
}

impl AccessesU64 for TaskSpec {
    fn accesses_count_u64(&self) -> u64 {
        self.access_count() as u64
    }
}

fn spec(load: f64, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        num_tasks: 5,
        num_objects: 3,
        accesses_per_job: 2,
        tuf_class: TufClass::Step,
        target_load: load,
        window_range: (50_000, 100_000),
        max_burst: 2,
        critical_time_frac: 0.9,
        arrival_style: ArrivalStyle::RandomUam { intensity: 4.0 },
        horizon: 1_000_000,
        read_fraction: 0.0,
        seed,
    }
}

#[test]
fn admitted_lock_free_sets_meet_every_critical_time() {
    let s = 20u64;
    let mut admitted_count = 0;
    for seed in 0..20 {
        for load in [0.05, 0.1, 0.2] {
            let (tasks, traces) = spec(load, seed).build().expect("valid workload");
            let report = admit(
                &to_admission(&tasks),
                Discipline::LockFree { access_ticks: s },
            );
            if !report.all_admitted() {
                continue;
            }
            admitted_count += 1;
            let outcome = Engine::new(
                tasks,
                traces,
                SimConfig::new(SharingMode::LockFree { access_ticks: s }),
            )
            .expect("valid engine")
            .run(RuaLockFree::new());
            assert_eq!(
                outcome.metrics.aborted(),
                0,
                "seed {seed} load {load}: admitted set missed a critical time"
            );
        }
    }
    assert!(
        admitted_count >= 5,
        "test must actually admit some sets ({admitted_count})"
    );
}

#[test]
fn admitted_lock_based_sets_meet_every_critical_time() {
    let r = 100u64;
    let mut admitted_count = 0;
    for seed in 0..20 {
        for load in [0.05, 0.1] {
            let (tasks, traces) = spec(load, seed).build().expect("valid workload");
            let report = admit(
                &to_admission(&tasks),
                Discipline::LockBased { access_ticks: r },
            );
            if !report.all_admitted() {
                continue;
            }
            admitted_count += 1;
            let outcome = Engine::new(
                tasks,
                traces,
                SimConfig::new(SharingMode::LockBased { access_ticks: r }),
            )
            .expect("valid engine")
            .run(RuaLockBased::new());
            assert_eq!(
                outcome.metrics.aborted(),
                0,
                "seed {seed} load {load}: admitted set missed a critical time"
            );
        }
    }
    assert!(
        admitted_count >= 5,
        "test must actually admit some sets ({admitted_count})"
    );
}

#[test]
fn overloads_are_rejected() {
    for seed in 0..5 {
        let (tasks, _) = spec(1.2, seed).build().expect("valid workload");
        let report = admit(
            &to_admission(&tasks),
            Discipline::LockFree { access_ticks: 20 },
        );
        assert!(
            !report.all_admitted(),
            "seed {seed}: an overload cannot be admitted"
        );
    }
}
