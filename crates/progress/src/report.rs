//! Human-readable and JSON rendering of a progress analysis.
//!
//! The JSON document reuses `lfrt_bench::json`'s canonical printer, so CI
//! can archive `progress-report.json` as an artifact and diff it across
//! commits byte for byte.
//!
//! ```text
//! {
//!   "schema_version": 1,
//!   "root": "...",
//!   "files_scanned": N,
//!   "functions_scanned": N,
//!   "ops": [ {name, class, no_alloc} ],
//!   "coverage": { "undeclared": [...], "unresolved": [...] },
//!   "findings": [ {rule, file, line, function, detail, message,
//!                  baselined, justification?} ],
//!   "stale_baseline": [ {rule, file, function, detail} ],
//!   "summary": {ops, findings, baselined, unbaselined, stale,
//!               undeclared, unresolved}
//! }
//! ```

use std::fmt::Write as _;

use lfrt_bench::json::Json;

use crate::rules::Finding;
use crate::Analysis;

fn finding_json(f: &Finding, baselined: bool, justification: Option<&str>) -> Json {
    let mut fields = vec![
        ("rule".into(), f.rule.as_str().into()),
        ("file".into(), f.file.as_str().into()),
        ("line".into(), f.line.into()),
        ("function".into(), f.function.as_str().into()),
        ("detail".into(), f.detail.as_str().into()),
        ("message".into(), f.message.as_str().into()),
        ("baselined".into(), baselined.into()),
    ];
    if let Some(j) = justification {
        fields.push(("justification".into(), j.into()));
    }
    Json::Obj(fields)
}

fn str_arr(items: &[String]) -> Json {
    Json::Arr(items.iter().map(|s| s.as_str().into()).collect())
}

/// The full JSON document for an analysis.
pub fn to_json(analysis: &Analysis) -> Json {
    let m = &analysis.matched;
    let mut findings: Vec<Json> = m
        .unbaselined
        .iter()
        .map(|f| finding_json(f, false, None))
        .collect();
    findings.extend(
        m.baselined
            .iter()
            .map(|(f, j)| finding_json(f, true, Some(j))),
    );
    Json::Obj(vec![
        ("schema_version".into(), 1u64.into()),
        ("root".into(), analysis.root.as_str().into()),
        ("files_scanned".into(), analysis.files.len().into()),
        ("functions_scanned".into(), analysis.functions.into()),
        (
            "ops".into(),
            Json::Arr(
                analysis
                    .ops
                    .iter()
                    .map(|o| {
                        Json::Obj(vec![
                            ("name".into(), o.name.as_str().into()),
                            ("class".into(), o.class.as_str().into()),
                            ("no_alloc".into(), o.no_alloc.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "coverage".into(),
            Json::Obj(vec![
                ("undeclared".into(), str_arr(&analysis.undeclared)),
                ("unresolved".into(), str_arr(&analysis.unresolved)),
            ]),
        ),
        ("findings".into(), Json::Arr(findings)),
        (
            "stale_baseline".into(),
            Json::Arr(
                m.stale
                    .iter()
                    .map(|e| {
                        Json::Obj(vec![
                            ("rule".into(), e.rule.as_str().into()),
                            ("file".into(), e.file.as_str().into()),
                            ("function".into(), e.function.as_str().into()),
                            ("detail".into(), e.detail.as_str().into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("summary".into(), summary_json(analysis)),
    ])
}

fn summary_json(analysis: &Analysis) -> Json {
    let m = &analysis.matched;
    Json::Obj(vec![
        ("ops".into(), analysis.ops.len().into()),
        (
            "findings".into(),
            (m.baselined.len() + m.unbaselined.len()).into(),
        ),
        ("baselined".into(), m.baselined.len().into()),
        ("unbaselined".into(), m.unbaselined.len().into()),
        ("stale".into(), m.stale.len().into()),
        ("undeclared".into(), analysis.undeclared.len().into()),
        ("unresolved".into(), analysis.unresolved.len().into()),
    ])
}

/// The human-readable report. `list_ops` additionally dumps the declared
/// op table.
pub fn render_text(analysis: &Analysis, list_ops: bool) -> String {
    let mut out = String::new();
    let m = &analysis.matched;
    let _ = writeln!(
        out,
        "progress: {} files, {} functions, {} declared ops",
        analysis.files.len(),
        analysis.functions,
        analysis.ops.len()
    );
    if list_ops {
        for o in &analysis.ops {
            let _ = writeln!(
                out,
                "  op {} {}{}",
                o.name,
                o.class,
                if o.no_alloc { " no_alloc" } else { "" }
            );
        }
    }
    for q in &analysis.undeclared {
        let _ = writeln!(
            out,
            "coverage: public op `{q}` has no [[op]] declaration in progress.toml"
        );
    }
    for q in &analysis.unresolved {
        let _ = writeln!(
            out,
            "coverage: progress.toml declares `{q}` but no such public fn exists"
        );
    }
    for f in &m.unbaselined {
        let _ = writeln!(
            out,
            "{}:{}: {} in `{}` [{}]: {}",
            f.file, f.line, f.rule, f.function, f.detail, f.message
        );
    }
    for (f, justification) in &m.baselined {
        let _ = writeln!(
            out,
            "{}:{}: {} baselined: {}",
            f.file, f.line, f.rule, justification
        );
    }
    for e in &m.stale {
        let _ = writeln!(
            out,
            "progress.toml:{}: stale [[baseline]] entry ({} {} `{}` `{}`) matches no \
             finding — remove it",
            e.line, e.rule, e.file, e.function, e.detail
        );
    }
    let _ = writeln!(
        out,
        "{} finding(s): {} baselined, {} unbaselined; {} stale baseline entr{}; \
         {} undeclared, {} unresolved op(s)",
        m.baselined.len() + m.unbaselined.len(),
        m.baselined.len(),
        m.unbaselined.len(),
        m.stale.len(),
        if m.stale.len() == 1 { "y" } else { "ies" },
        analysis.undeclared.len(),
        analysis.unresolved.len(),
    );
    out
}

/// Exit status for the run: success only when nothing is unbaselined,
/// nothing is stale, and the manifest covers the public API exactly.
pub fn is_clean(analysis: &Analysis) -> bool {
    let m = &analysis.matched;
    m.unbaselined.is_empty()
        && m.stale.is_empty()
        && analysis.undeclared.is_empty()
        && analysis.unresolved.is_empty()
}
