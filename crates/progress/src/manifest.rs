//! The progress manifest (`progress.toml`): declared guarantees + baseline.
//!
//! `[[op]]` tables declare the progress class of every public operation of
//! `crates/lockfree` and the vendored epoch API; `[[baseline]]` tables
//! justify known findings, with the same contract as `ordlint.toml`:
//! findings with no entry fail the run, and entries matching no finding
//! (stale) fail it too, so the committed manifest always mirrors the
//! tree's reviewed state.
//!
//! The parser handles exactly the subset the manifest uses — `[[op]]` /
//! `[[baseline]]` array-of-table headers, `key = "quoted string"` pairs
//! (with `\"` escapes), bare `true`/`false` for `no_alloc`, and `#`
//! comments — and rejects everything else loudly rather than guessing.

use std::fmt;

use crate::rules::Finding;

/// A declared progress guarantee, strongest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Completes in a bounded number of own-thread steps, regardless of
    /// other threads.
    WaitFree,
    /// Some thread always completes in a bounded number of system steps
    /// (individual threads may retry unboundedly under contention).
    LockFree,
    /// May block on a lock or another thread's progress.
    Blocking,
}

impl Class {
    /// Parses the manifest spelling.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "wait_free" => Class::WaitFree,
            "lock_free" => Class::LockFree,
            "blocking" => Class::Blocking,
            _ => return None,
        })
    }

    /// The manifest spelling.
    pub fn name(self) -> &'static str {
        match self {
            Class::WaitFree => "wait_free",
            Class::LockFree => "lock_free",
            Class::Blocking => "blocking",
        }
    }

    /// Whether the class promises at least lock-freedom.
    pub fn at_least_lock_free(self) -> bool {
        matches!(self, Class::WaitFree | Class::LockFree)
    }
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One `[[op]]` declaration.
#[derive(Debug, Clone)]
pub struct OpDecl {
    /// Qualified name: `Type::method` for associated fns, bare name for
    /// free fns.
    pub name: String,
    /// Declared progress class.
    pub class: Class,
    /// Whether the op additionally promises not to allocate.
    pub no_alloc: bool,
    /// 1-based manifest line of the `[[op]]` header (for error messages).
    pub line: usize,
}

/// One `[[baseline]]` entry justifying a known finding.
#[derive(Debug, Clone)]
pub struct BaselineEntry {
    /// Rule ID (`PRG001`...).
    pub rule: String,
    /// Relative path of the file the finding is in.
    pub file: String,
    /// Qualified name of the function containing the finding.
    pub function: String,
    /// Rule-specific discriminator (CAS receiver, blocking token, ...).
    pub detail: String,
    /// Why this finding is intentional. Mandatory.
    pub justification: String,
    /// 1-based manifest line of the `[[baseline]]` header.
    pub line: usize,
}

/// The parsed manifest.
#[derive(Debug, Default)]
pub struct Manifest {
    /// Declared ops, in file order.
    pub ops: Vec<OpDecl>,
    /// Baseline entries, in file order.
    pub baseline: Vec<BaselineEntry>,
}

impl Manifest {
    /// Looks up a declared op by qualified name.
    pub fn op(&self, name: &str) -> Option<&OpDecl> {
        self.ops.iter().find(|o| o.name == name)
    }
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            if let Some(n) = chars.next() {
                out.push(n);
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[derive(PartialEq, Clone, Copy)]
enum Section {
    None,
    Op,
    Baseline,
}

/// Parses manifest text.
///
/// # Errors
///
/// A human-readable message naming the offending line for: unknown table
/// headers, keys outside a table, unquoted values (other than `no_alloc`
/// booleans), unknown keys or classes, duplicate op names, and ops or
/// baseline entries with required keys missing.
pub fn parse(text: &str) -> Result<Manifest, String> {
    let mut manifest = Manifest::default();
    let mut section = Section::None;
    // Fields of the table being accumulated.
    let mut fields: Vec<(String, String, usize)> = Vec::new();
    let mut header_line = 0usize;

    fn flush(
        manifest: &mut Manifest,
        section: Section,
        fields: &mut Vec<(String, String, usize)>,
        header_line: usize,
    ) -> Result<(), String> {
        let take = |fields: &[(String, String, usize)], key: &str| {
            fields
                .iter()
                .find(|(k, _, _)| k == key)
                .map(|(_, v, _)| v.clone())
        };
        match section {
            Section::None => {}
            Section::Op => {
                let name = take(fields, "name")
                    .ok_or_else(|| format!("progress.toml:{header_line}: [[op]] missing `name`"))?;
                let class_s = take(fields, "class").ok_or_else(|| {
                    format!("progress.toml:{header_line}: [[op]] `{name}` missing `class`")
                })?;
                let class = Class::parse(&class_s).ok_or_else(|| {
                    format!(
                        "progress.toml:{header_line}: unknown class `{class_s}` \
                         (wait_free | lock_free | blocking)"
                    )
                })?;
                let no_alloc = match take(fields, "no_alloc").as_deref() {
                    None | Some("false") => false,
                    Some("true") => true,
                    Some(v) => {
                        return Err(format!(
                            "progress.toml:{header_line}: no_alloc must be true or false, got `{v}`"
                        ))
                    }
                };
                if manifest.ops.iter().any(|o| o.name == name) {
                    return Err(format!(
                        "progress.toml:{header_line}: duplicate [[op]] `{name}`"
                    ));
                }
                manifest.ops.push(OpDecl {
                    name,
                    class,
                    no_alloc,
                    line: header_line,
                });
            }
            Section::Baseline => {
                let get = |key: &str| {
                    take(fields, key).ok_or_else(|| {
                        format!("progress.toml:{header_line}: [[baseline]] missing `{key}`")
                    })
                };
                let justification = get("justification")?;
                if justification.trim().is_empty() {
                    return Err(format!(
                        "progress.toml:{header_line}: [[baseline]] justification must not be empty"
                    ));
                }
                manifest.baseline.push(BaselineEntry {
                    rule: get("rule")?,
                    file: get("file")?,
                    function: get("function")?,
                    detail: get("detail")?,
                    justification,
                    line: header_line,
                });
            }
        }
        fields.clear();
        Ok(())
    }

    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            flush(&mut manifest, section, &mut fields, header_line)?;
            section = match header.trim() {
                "op" => Section::Op,
                "baseline" => Section::Baseline,
                other => {
                    return Err(format!(
                        "progress.toml:{lineno}: unknown table `[[{other}]]` \
                         (expected [[op]] or [[baseline]])"
                    ))
                }
            };
            header_line = lineno;
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("progress.toml:{lineno}: expected `key = value`"));
        };
        if section == Section::None {
            return Err(format!(
                "progress.toml:{lineno}: key outside [[op]]/[[baseline]]"
            ));
        }
        let key = key.trim().to_string();
        let value = value.trim();
        let value = if let Some(q) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) {
            unescape(q)
        } else if value == "true" || value == "false" {
            value.to_string()
        } else {
            return Err(format!(
                "progress.toml:{lineno}: value for `{key}` must be quoted (or a bare boolean)"
            ));
        };
        if fields.iter().any(|(k, _, _)| *k == key) {
            return Err(format!("progress.toml:{lineno}: duplicate key `{key}`"));
        }
        fields.push((key, value, lineno));
    }
    flush(&mut manifest, section, &mut fields, header_line)?;
    Ok(manifest)
}

/// The outcome of matching findings against the baseline.
#[derive(Debug, Default)]
pub struct MatchResult {
    /// Findings covered by an entry, with its justification.
    pub baselined: Vec<(Finding, String)>,
    /// Findings with no matching entry — these fail the run.
    pub unbaselined: Vec<Finding>,
    /// Entries matching no finding — these fail the run too.
    pub stale: Vec<BaselineEntry>,
}

/// Matches findings against the baseline. One entry may cover several
/// findings at the same (rule, file, function, detail) key; entries that
/// cover nothing are stale.
pub fn apply(findings: Vec<Finding>, entries: &[BaselineEntry]) -> MatchResult {
    let mut used = vec![false; entries.len()];
    let mut result = MatchResult::default();
    for f in findings {
        let hit = entries.iter().position(|e| {
            e.rule == f.rule && e.file == f.file && e.function == f.function && e.detail == f.detail
        });
        match hit {
            Some(i) => {
                used[i] = true;
                result.baselined.push((f, entries[i].justification.clone()));
            }
            None => result.unbaselined.push(f),
        }
    }
    result.stale = entries
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ops_and_baseline() {
        let text = r#"
# header comment
[[op]]
name = "TreiberStack::push"
class = "lock_free"

[[op]]
name = "RingProducer::push" # trailing comment
class = "wait_free"
no_alloc = true

[[baseline]]
rule = "PRG001"
file = "vendor/crossbeam/src/epoch.rs"
function = "acquire_record"
detail = "REGISTRY"
justification = "cold path, once per thread"
"#;
        let m = parse(text).unwrap();
        assert_eq!(m.ops.len(), 2);
        assert_eq!(m.ops[0].class, Class::LockFree);
        assert!(!m.ops[0].no_alloc);
        assert!(m.ops[1].no_alloc);
        assert_eq!(m.baseline.len(), 1);
        assert_eq!(m.baseline[0].detail, "REGISTRY");
    }

    #[test]
    fn rejects_missing_class_duplicate_op_and_empty_justification() {
        assert!(parse("[[op]]\nname = \"X::y\"\n").is_err());
        assert!(parse(
            "[[op]]\nname = \"X::y\"\nclass = \"lock_free\"\n\
             [[op]]\nname = \"X::y\"\nclass = \"lock_free\"\n"
        )
        .is_err());
        assert!(parse(
            "[[baseline]]\nrule = \"PRG001\"\nfile = \"a.rs\"\nfunction = \"f\"\n\
             detail = \"d\"\njustification = \"  \"\n"
        )
        .is_err());
        assert!(parse("[[op]]\nname = \"X::y\"\nclass = \"mostly_fine\"\n").is_err());
        assert!(parse("name = \"orphan\"\n").is_err());
        assert!(parse("[[ops]]\n").is_err());
    }

    #[test]
    fn apply_splits_baselined_unbaselined_stale() {
        let entries = parse(
            "[[baseline]]\nrule = \"PRG001\"\nfile = \"a.rs\"\nfunction = \"f\"\n\
             detail = \"self.top\"\njustification = \"known\"\n\
             [[baseline]]\nrule = \"PRG002\"\nfile = \"b.rs\"\nfunction = \"g\"\n\
             detail = \"lock\"\njustification = \"stale one\"\n",
        )
        .unwrap()
        .baseline;
        let f = |rule: &str, file: &str, function: &str, detail: &str| Finding {
            rule: rule.to_string(),
            file: file.to_string(),
            line: 1,
            function: function.to_string(),
            detail: detail.to_string(),
            message: String::new(),
        };
        let result = apply(
            vec![
                f("PRG001", "a.rs", "f", "self.top"),
                f("PRG001", "a.rs", "f", "self.top"),
                f("PRG003", "c.rs", "h", "p"),
            ],
            &entries,
        );
        assert_eq!(result.baselined.len(), 2, "one entry covers both findings");
        assert_eq!(result.unbaselined.len(), 1);
        assert_eq!(result.stale.len(), 1);
        assert_eq!(result.stale[0].rule, "PRG002");
    }
}
