//! Tests for context-dependent execution times (`ExecTimeModel`): actual
//! compute durations deviate from the nominal plan that schedulers see, so
//! feasibility tests can be wrong and overruns end in aborts — the paper's
//! "execution overruns are quite possible" (§3.2, footnote 4).

use lfrt_sim::{
    Decision, Engine, ExecTimeModel, JobId, SchedulerContext, Segment, SharingMode, SimConfig,
    TaskSpec, UaScheduler,
};
use lfrt_tuf::Tuf;
use lfrt_uam::{ArrivalTrace, Uam};

struct Edf;

impl UaScheduler for Edf {
    fn name(&self) -> &str {
        "edf-test"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        let mut order: Vec<JobId> = ctx.jobs.iter().map(|j| j.id).collect();
        order.sort_by_key(|&id| {
            let j = ctx.job(id).expect("listed job");
            (j.absolute_critical_time, id)
        });
        Decision {
            order,
            ops: 1,
            ..Decision::default()
        }
    }
}

fn task(critical: u64, compute: u64) -> TaskSpec {
    TaskSpec::builder("t")
        .tuf(Tuf::step(1.0, critical).expect("valid tuf"))
        .uam(Uam::periodic(critical))
        .segments(vec![Segment::Compute(compute)])
        .build()
        .expect("valid task")
}

fn run(
    critical: u64,
    compute: u64,
    arrivals: Vec<u64>,
    model: ExecTimeModel,
) -> lfrt_sim::SimOutcome {
    Engine::new(
        vec![task(critical, compute)],
        vec![ArrivalTrace::new(arrivals)],
        SimConfig::new(SharingMode::Ideal).exec_time(model),
    )
    .expect("valid engine")
    .run(Edf)
}

#[test]
fn unit_factor_matches_nominal_exactly() {
    let nominal = run(1_000, 100, vec![0, 1_000, 2_000], ExecTimeModel::Nominal);
    let unit = run(
        1_000,
        100,
        vec![0, 1_000, 2_000],
        ExecTimeModel::Uniform {
            min_factor: 1.0,
            max_factor: 1.0,
            seed: 9,
        },
    );
    assert_eq!(nominal.records, unit.records);
}

#[test]
fn overruns_break_nominally_feasible_jobs() {
    // Nominal 600 of 1000 is feasible; a 2× overrun (1200 > 1000) is not.
    let doomed = run(
        1_000,
        600,
        vec![0],
        ExecTimeModel::Uniform {
            min_factor: 2.0,
            max_factor: 2.0,
            seed: 1,
        },
    );
    assert_eq!(doomed.metrics.completed(), 0);
    assert_eq!(doomed.metrics.aborted(), 1);
    assert_eq!(
        doomed.records[0].resolved_at, 1_000,
        "abort at the critical time"
    );
}

#[test]
fn underruns_shorten_sojourns() {
    let fast = run(
        1_000,
        600,
        vec![0],
        ExecTimeModel::Uniform {
            min_factor: 0.5,
            max_factor: 0.5,
            seed: 1,
        },
    );
    assert_eq!(fast.metrics.completed(), 1);
    assert_eq!(fast.records[0].sojourn(), 300);
}

#[test]
fn jitter_is_deterministic_per_seed_and_varies_across_jobs() {
    let model = ExecTimeModel::Uniform {
        min_factor: 0.5,
        max_factor: 1.5,
        seed: 33,
    };
    let arrivals: Vec<u64> = (0..20).map(|k| k * 10_000).collect();
    let a = run(9_000, 1_000, arrivals.clone(), model);
    let b = run(9_000, 1_000, arrivals, model);
    assert_eq!(a.records, b.records);
    // Sojourns differ across jobs (different draws).
    let sojourns: Vec<u64> = a.records.iter().map(|r| r.sojourn()).collect();
    assert!(
        sojourns.iter().any(|&s| s != sojourns[0]),
        "jitter must vary: {sojourns:?}"
    );
    // All within the configured envelope.
    for &s in &sojourns {
        assert!(
            (500..=1_500).contains(&s),
            "sojourn {s} outside the 0.5–1.5 envelope"
        );
    }
}

#[test]
fn different_seeds_draw_different_scales() {
    let arrivals: Vec<u64> = (0..10).map(|k| k * 10_000).collect();
    let a = run(
        9_000,
        1_000,
        arrivals.clone(),
        ExecTimeModel::Uniform {
            min_factor: 0.5,
            max_factor: 1.5,
            seed: 1,
        },
    );
    let b = run(
        9_000,
        1_000,
        arrivals,
        ExecTimeModel::Uniform {
            min_factor: 0.5,
            max_factor: 1.5,
            seed: 2,
        },
    );
    assert_ne!(a.records, b.records);
}
