use std::error::Error;
use std::fmt;

/// Error returned when constructing an invalid [`Uam`](crate::Uam).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum UamError {
    /// The window length was zero.
    ZeroWindow,
    /// The maximum arrival count `a` was zero (the task would never run).
    ZeroMaxArrivals,
    /// The minimum arrival count `l` exceeded the maximum `a`.
    MinExceedsMax {
        /// The offending minimum.
        min: u32,
        /// The declared maximum.
        max: u32,
    },
}

impl fmt::Display for UamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UamError::ZeroWindow => write!(f, "UAM window length must be positive"),
            UamError::ZeroMaxArrivals => write!(f, "UAM maximum arrivals must be positive"),
            UamError::MinExceedsMax { min, max } => {
                write!(f, "UAM minimum arrivals {min} exceeds maximum {max}")
            }
        }
    }
}

impl Error for UamError {}

/// A violation found while checking an [`ArrivalTrace`](crate::ArrivalTrace)
/// against a [`Uam`](crate::Uam).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UamViolation {
    /// Start of the offending sliding window.
    pub window_start: u64,
    /// Number of arrivals observed in `[window_start, window_start + W)`.
    pub observed: u32,
    /// The maximum permitted by the model.
    pub allowed: u32,
}

impl fmt::Display for UamViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "window starting at {} holds {} arrivals, but the model allows at most {}",
            self.window_start, self.observed, self.allowed
        )
    }
}

impl Error for UamViolation {}
