//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` behind `parking_lot`'s non-poisoning API
//! (`lock()` returns the guard directly, `try_lock()` returns an `Option`).
//! Poisoning is deliberately ignored: a panicked critical section in the
//! lock-*based* baselines should not cascade into unrelated tests, which
//! matches `parking_lot`'s own semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::TryLockError;

/// A mutual-exclusion lock (non-poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`] and [`Mutex::try_lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a lock around `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        MutexGuard { inner }
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(inner) => Some(MutexGuard { inner }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusivity via `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_try_lock() {
        let m = Mutex::new(5u32);
        {
            let mut g = m.lock();
            *g += 1;
            assert!(
                m.try_lock().is_none(),
                "held lock must not be re-acquirable"
            );
        }
        assert_eq!(*m.try_lock().expect("free lock"), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() = 7; // must not panic
        assert_eq!(*m.lock(), 7);
    }
}
