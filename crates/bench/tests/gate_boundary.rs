//! Boundary tests for the `compare_reports` perf gate binary: the exact
//! behaviors a CI gate must pin, because each one decides whether a red X
//! appears on a PR.
//!
//! * a metric sitting *exactly* at the threshold passes (the comparison is
//!   strictly `delta > threshold`, so +15.0% at the default 15% is green);
//! * an improvement-only report passes and says so;
//! * a gated metric present in the baseline but missing from the fresh
//!   report fails (losing coverage is a regression);
//! * zero medians: 0 → 0 passes, 0 → nonzero fails (infinite relative
//!   regression), and a NaN-poisoned fresh metric passes the strict
//!   comparison — pinned here as *documented* behavior so a future fix has
//!   to update this test deliberately;
//! * a report with no gated metrics at all aborts loudly rather than
//!   passing vacuously.
//!
//! Each case drives the real binary via `CARGO_BIN_EXE_compare_reports`
//! and asserts on exit code *and* message, in a fresh temp dir.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lfrt-gate-boundary-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A minimal report document carrying both gated experiments.
fn report_doc(stack_ns: f64, peak: f64) -> String {
    format!(
        r#"{{
  "schema_version": 1,
  "meta": {{"generator": "lfrt-bench"}},
  "experiments": [
    {{
      "experiment": "uncontended_ops",
      "figure": "table:uncontended",
      "title": "t",
      "config": {{}},
      "points": [
        {{"params": {{"structure": "stack"}}, "seeds": [], "metrics": {{}},
          "timing": {{"ns_per_op_median": {stack_ns}}}}}
      ]
    }},
    {{
      "experiment": "churn_footprint",
      "figure": "table:churn",
      "title": "t",
      "config": {{}},
      "points": [
        {{"params": {{"threads": 4}}, "seeds": [], "metrics": {{}},
          "timing": {{"peak_growth_bytes": {peak}}}}}
      ]
    }}
  ]
}}"#
    )
}

/// A baseline document with the given gate metrics.
fn baseline_doc(metrics: &[(&str, f64)]) -> String {
    let fields: Vec<String> = metrics
        .iter()
        .map(|(k, v)| format!("    \"{k}\": {v}"))
        .collect();
    format!(
        "{{\n  \"schema_version\": 1,\n  \"kind\": \"lfrt-bench-baseline\",\n  \
         \"meta\": {{\"generator\": \"lfrt-bench\", \"git_rev\": \"test\", \
         \"threads\": 1, \"quick\": true}},\n  \"gate_metrics\": {{\n{}\n  }}\n}}\n",
        fields.join(",\n")
    )
}

const STACK_KEY: &str = "uncontended_ops/stack/ns_per_op_median";
const CHURN_KEY: &str = "churn_footprint/peak_growth_bytes";

fn run(dir: &Path, report: &str, baseline: &str, extra_args: &[&str]) -> Output {
    let report_path = dir.join("report.json");
    let baseline_path = dir.join("baseline.json");
    std::fs::write(&report_path, report).expect("write report");
    std::fs::write(&baseline_path, baseline).expect("write baseline");
    Command::new(env!("CARGO_BIN_EXE_compare_reports"))
        .arg("--report")
        .arg(&report_path)
        .arg("--baseline")
        .arg(&baseline_path)
        .args(extra_args)
        .output()
        .expect("run compare_reports")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn metric_exactly_at_threshold_passes_and_one_past_fails() {
    let dir = temp_dir("at-threshold");
    let baseline = baseline_doc(&[(STACK_KEY, 100.0), (CHURN_KEY, 400000.0)]);
    // +15.0% on the stack metric: delta == threshold, strictly-greater
    // comparison ⇒ green. This is the contract boundary: the gate fails
    // *past* the threshold, not *at* it.
    let out = run(&dir, &report_doc(115.0, 400000.0), &baseline, &[]);
    assert!(
        out.status.success(),
        "exactly-at-threshold must pass: stdout={} stderr={}",
        stdout(&out),
        stderr(&out)
    );
    assert!(
        stdout(&out).contains("PASS: no gated metric regressed past the threshold"),
        "{}",
        stdout(&out)
    );
    // One more percent and the same report is red, with the offending
    // metric named on stderr.
    let out = run(&dir, &report_doc(116.0, 400000.0), &baseline, &[]);
    assert_eq!(out.status.code(), Some(1), "past-threshold must exit 1");
    let err = stderr(&out);
    assert!(
        err.contains("FAIL:") && err.contains(STACK_KEY),
        "failure must name the regressed metric: {err}"
    );
    assert!(stdout(&out).contains("REGRESSED"), "{}", stdout(&out));
}

#[test]
fn improvement_only_report_passes() {
    let dir = temp_dir("improvement");
    let baseline = baseline_doc(&[(STACK_KEY, 100.0), (CHURN_KEY, 400000.0)]);
    // Everything got faster/smaller — large negative deltas must not trip
    // an absolute-value comparison.
    let out = run(&dir, &report_doc(40.0, 100000.0), &baseline, &[]);
    assert!(out.status.success(), "stderr={}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("PASS: no gated metric regressed past the threshold"),
        "{text}"
    );
    assert!(!text.contains("REGRESSED"), "{text}");
}

#[test]
fn missing_gated_metric_fails_with_exit_one() {
    let dir = temp_dir("missing-metric");
    // The baseline gates a metric the fresh report no longer produces.
    let baseline = baseline_doc(&[
        (STACK_KEY, 100.0),
        (CHURN_KEY, 400000.0),
        ("uncontended_ops/gone/ns_per_op_median", 10.0),
    ]);
    let out = run(&dir, &report_doc(100.0, 400000.0), &baseline, &[]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "silently losing gate coverage must fail"
    );
    let err = stderr(&out);
    assert!(
        err.contains("uncontended_ops/gone") && err.contains("missing from report"),
        "{err}"
    );
}

#[test]
fn zero_to_zero_passes_but_zero_to_nonzero_fails() {
    let dir = temp_dir("zero-medians");
    let baseline = baseline_doc(&[(STACK_KEY, 100.0), (CHURN_KEY, 0.0)]);
    // 0 → 0: no regression expressible, passes.
    let out = run(&dir, &report_doc(100.0, 0.0), &baseline, &[]);
    assert!(out.status.success(), "0 -> 0 must pass: {}", stderr(&out));
    // 0 → anything: infinite relative regression, fails at any threshold.
    let out = run(&dir, &report_doc(100.0, 1.0), &baseline, &[]);
    assert_eq!(out.status.code(), Some(1), "0 -> 1 must fail");
    assert!(stderr(&out).contains(CHURN_KEY), "{}", stderr(&out));
}

#[test]
fn nan_scaled_metrics_pass_the_strict_comparison() {
    let dir = temp_dir("nan-scale");
    let baseline = baseline_doc(&[(STACK_KEY, 100.0), (CHURN_KEY, 400000.0)]);
    // `--scale NaN` poisons every fresh metric; every delta becomes NaN and
    // `NaN > threshold` is false, so the gate passes. Documented behavior:
    // the gate is deliberately strict-greater (a NaN median would indicate
    // a broken *report*, which schema validation — not the gate — owns).
    // If compare() ever learns to reject NaN, this test must flip.
    let out = run(
        &dir,
        &report_doc(100.0, 400000.0),
        &baseline,
        &["--scale", "NaN"],
    );
    assert!(
        out.status.success(),
        "NaN deltas currently pass the strict comparison: {}",
        stderr(&out)
    );
    assert!(stdout(&out).contains("PASS"), "{}", stdout(&out));
}

#[test]
fn threshold_flag_moves_the_boundary() {
    let dir = temp_dir("threshold-flag");
    let baseline = baseline_doc(&[(STACK_KEY, 100.0), (CHURN_KEY, 400000.0)]);
    // +50% fails the default gate but sits exactly at a 50% threshold.
    let report = report_doc(150.0, 400000.0);
    let out = run(&dir, &report, &baseline, &[]);
    assert_eq!(out.status.code(), Some(1), "+50% must fail the default 15%");
    let out = run(&dir, &report, &baseline, &["--threshold", "0.5"]);
    assert!(
        out.status.success(),
        "+50% sits exactly at --threshold 0.5: {}",
        stderr(&out)
    );
}

#[test]
fn report_without_gated_metrics_aborts_loudly() {
    let dir = temp_dir("no-metrics");
    let baseline = baseline_doc(&[(STACK_KEY, 100.0)]);
    let empty_report = r#"{"schema_version": 1, "meta": {}, "experiments": []}"#;
    let out = run(&dir, empty_report, &baseline, &[]);
    assert!(
        !out.status.success(),
        "a vacuous report must not pass the gate"
    );
    assert!(
        stderr(&out).contains("no gated metrics found"),
        "{}",
        stderr(&out)
    );
}
