//! Instrumented atomic cells: every operation is a scheduling yield point.

use std::fmt;
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::runtime::{step_read, step_write};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A model atomic cell. Each `load`/`store`/`swap`/`compare_exchange`/
/// `fetch_add` is one *step* of the owning model thread: the scheduler
/// decides the interleaving of these operations across threads, which is
/// exactly the granularity at which lock-free algorithms differ.
///
/// Exploration is sequentially consistent — every step happens at a single
/// global point. Weak-memory reorderings are out of scope (see DESIGN.md);
/// the real implementations' ordering annotations are validated separately
/// by the stress suite.
///
/// Outside a model execution the operations behave like ordinary
/// sequentially-consistent atomics with no yielding, so models remain usable
/// from plain unit tests.
pub struct Atomic<T> {
    cell: Mutex<T>,
}

impl<T: Copy> Atomic<T> {
    /// A cell holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            cell: Mutex::new(value),
        }
    }

    /// Reads the value. One step.
    pub fn load(&self) -> T {
        step_read();
        *lock(&self.cell)
    }

    /// Writes the value. One step.
    pub fn store(&self, value: T) {
        step_write();
        *lock(&self.cell) = value;
    }

    /// Replaces the value, returning the previous one. One step.
    pub fn swap(&self, value: T) -> T {
        step_write();
        std::mem::replace(&mut lock(&self.cell), value)
    }

    /// Compare-and-swap: if the cell equals `current`, writes `new` and
    /// returns `Ok(current)`; otherwise returns `Err(actual)`. One step,
    /// whether it succeeds or fails — mirroring a hardware CAS.
    pub fn compare_exchange(&self, current: T, new: T) -> Result<T, T>
    where
        T: PartialEq,
    {
        step_write();
        let mut guard = lock(&self.cell);
        if *guard == current {
            *guard = new;
            Ok(current)
        } else {
            Err(*guard)
        }
    }

    /// Adds `rhs`, returning the previous value. One step.
    pub fn fetch_add(&self, rhs: T) -> T
    where
        T: std::ops::Add<Output = T>,
    {
        step_write();
        let mut guard = lock(&self.cell);
        let prev = *guard;
        *guard = prev + rhs;
        prev
    }

    /// Non-yielding read, for code that owns the cell exclusively by
    /// protocol: post-CAS payload reads, post-join invariant checks, drains.
    /// Mirrors the real implementations' non-atomic accesses to memory they
    /// have just won exclusive ownership of.
    pub fn load_plain(&self) -> T {
        *lock(&self.cell)
    }

    /// Non-yielding write, for pre-publication initialization: stores that
    /// other threads cannot observe until a later release/CAS step publishes
    /// them (e.g. setting a new node's `next` before the push CAS).
    pub fn store_plain(&self, value: T) {
        *lock(&self.cell) = value;
    }
}

impl<T: Copy + fmt::Debug> fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Atomic").field(&self.load_plain()).finish()
    }
}

impl<T: Copy + Default> Default for Atomic<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaves_like_a_plain_cell_outside_models() {
        let a = Atomic::new(5u64);
        assert_eq!(a.load(), 5);
        a.store(6);
        assert_eq!(a.swap(7), 6);
        assert_eq!(a.compare_exchange(7, 8), Ok(7));
        assert_eq!(a.compare_exchange(7, 9), Err(8));
        assert_eq!(a.fetch_add(10), 8);
        assert_eq!(a.load(), 18);
    }

    #[test]
    fn plain_accessors_bypass_scheduling() {
        let a = Atomic::new(1u32);
        a.store_plain(2);
        assert_eq!(a.load_plain(), 2);
    }

    #[test]
    fn works_with_option_values() {
        let a = Atomic::new(None::<u64>);
        assert_eq!(a.swap(Some(3)), None);
        assert_eq!(a.load(), Some(3));
    }
}
