//! Elimination-backoff exchanger for the Treiber stack (Hendler, Shavit &
//! Shavit, SPAA'04).
//!
//! A push and a pop that collide on the stack's single `top` word are, in
//! LIFO terms, inverses: the pop may take the push's element *directly* and
//! both operations linearize at the hand-off, without either retouching the
//! contended head. This module is that side channel: a small array of
//! exchange slots where a contended pusher parks its (exclusively owned,
//! never-published) node and a contended popper claims it by CAS.
//!
//! The layer is **strictly off the fast path**: `TreiberStack` only calls
//! in here after a head CAS already failed and the pass's `Backoff::spin`
//! ran — the uncontended push/pop sequence is byte-identical to the
//! elimination-free stack (see `stack.rs`; the vendor tests in
//! `crossbeam::utils` pin the `Backoff` thresholds this trigger rides on).
//!
//! # Protocol
//!
//! Each slot is one `AtomicUsize` with three states:
//!
//! * `EMPTY` (0) — nobody here;
//! * `BUSY` (1) — an offer was just claimed; the pusher has not yet
//!   acknowledged (transient, settled only by that pusher);
//! * any other value — a waiting pusher's node pointer (node alignment
//!   keeps pointers disjoint from the sentinels).
//!
//! Pusher (`try_eliminate_push`): E1 CAS `EMPTY → node` (Release, so the
//! claimant acquires the node's payload); E2 bounded wait — plain spinning,
//! probing the slot with Relaxed loads (nothing is dereferenced off the
//! probe); E3 cancel CAS `node → EMPTY` (Relaxed — success means no one
//! ever saw the node, failure means the claim CAS already happened and the
//! slot reads `BUSY`), then a Relaxed `EMPTY` store to retire the `BUSY`
//! sentinel. A cancel **must** be a CAS: a blind `EMPTY` store races the
//! claim and hands the node to both sides — the seeded
//! `lost-elimination double-return` twin in
//! `lfrt-interleave::models::elimination`.
//!
//! Popper (`try_eliminate_pop`): D1 scan the live slots with Relaxed
//! loads; D2 claim CAS `node → BUSY` (Acquire, pairing with E1's Release).
//! The winning CAS *is* the transfer of ownership: the caller reads the
//! payload strictly **after** it. Reading the payload off the D1 probe
//! instead is the classic exchanger ABA (the node can be cancelled,
//! recycled by the pool, and re-offered at the same address with a new
//! payload between probe and CAS) — the seeded `exchange-slot ABA` twin.
//!
//! # Adaptation
//!
//! The live width (a power of two in `1..=SLOTS`) follows the
//! Hendler–Shavit–Shavit heuristic on the signals the stack already
//! produces: a pusher finding its slot occupied (pusher/pusher collision)
//! widens; a pusher timing out (no popper arrived) narrows. Both updates
//! are Relaxed load+store — a racy hint, not synchronization. Poppers scan
//! the whole live width, so a wider array never hides an offer from them.
//!
//! # Progress
//!
//! Every path is bounded: one CAS to install, a constant spin wait, one
//! CAS to cancel or claim per slot scanned. No loops retry a lost CAS —
//! failure means the *other* side made progress (an exchange happened or
//! an offer appeared), which is the lock-free win condition; the caller's
//! own retry loop (Theorem 2 scope) is back in `stack.rs`. Nothing here
//! allocates, and nothing here dereferences: payload reads stay with the
//! stack, which owns the node type.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crossbeam::utils::CachePadded;

use crate::stats::thread_hash;

/// Slot state: no offer parked.
const EMPTY: usize = 0;

/// Slot state: an offer was claimed and awaits the pusher's acknowledgment.
/// Disjoint from real pointers because nodes are at least word-aligned.
const BUSY: usize = 1;

/// Physical slots (the adaptive width never exceeds this). Eight matches
/// the pool's telemetry shard count: past ~8 simultaneously colliding
/// pairs, the head CAS itself is no longer the bottleneck on the core
/// counts this repo targets.
const SLOTS: usize = 8;

/// Spin passes a pusher waits for a claimant before cancelling: one
/// saturated `Backoff` burst (`2^SPIN_LIMIT` pause hints), the same bound
/// the stack's own retry pacing tops out at, so a parked offer lives about
/// as long as the colliding popper's next backoff window.
const WAIT_SPINS: usize = 64;

/// The exchanger array. One per elimination-enabled [`crate::TreiberStack`].
///
/// Exchanged values are opaque pointers: the exchanger never dereferences
/// them, it only moves exclusive ownership from a pusher to at most one
/// popper. The stack is responsible for reading the payload (after the
/// claim) and recycling the node.
pub struct EliminationArray {
    slots: [CachePadded<AtomicUsize>; SLOTS],
    /// Live width: a power of two in `1..=SLOTS`, adapted under contention.
    width: CachePadded<AtomicUsize>,
    /// Completed exchanges (claim CAS wins). Relaxed telemetry.
    hits: CachePadded<AtomicU64>,
    /// Attempts that found no partner (timeouts, occupied slots, empty
    /// scans). Relaxed telemetry.
    misses: CachePadded<AtomicU64>,
}

impl EliminationArray {
    /// An exchanger starting at width 1 (a single hot slot; collisions
    /// widen it).
    pub fn new() -> Self {
        Self {
            slots: std::array::from_fn(|_| CachePadded::new(AtomicUsize::new(EMPTY))),
            width: CachePadded::new(AtomicUsize::new(1)),
            hits: CachePadded::new(AtomicU64::new(0)),
            misses: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Offers `node` to a concurrent popper for one bounded wait.
    ///
    /// Returns `true` if a popper claimed the node — the push is complete
    /// and the caller must forget the node (ownership moved). Returns
    /// `false` if the offer was cancelled — the caller still exclusively
    /// owns the node and goes back to its head CAS loop.
    ///
    /// `node` must be a non-null pointer with alignment ≥ 2 (so it cannot
    /// collide with the [`EMPTY`]/[`BUSY`] sentinels); the exchanger never
    /// dereferences it.
    pub fn try_eliminate_push(&self, node: *mut u8) -> bool {
        let offer = node as usize;
        debug_assert!(offer > BUSY && offer & 1 == 0, "sentinel-colliding node");
        let width = self.live_width();
        let slot = &self.slots[thread_hash() & (width - 1)];
        // E1: park the offer. Release publishes the node's payload to the
        // claimant's Acquire CAS.
        if slot
            .compare_exchange(EMPTY, offer, Ordering::Release, Ordering::Relaxed)
            .is_err()
        {
            // Another pusher is parked here (or a claim is settling):
            // pusher/pusher collision — widen so the next attempts spread.
            self.widen(width);
            self.miss();
            return false;
        }
        // E2: bounded wait. Pure spinning; the Relaxed probe only decides
        // when to stop early (the cancel CAS below is authoritative).
        for _ in 0..WAIT_SPINS {
            if slot.load(Ordering::Relaxed) != offer {
                break;
            }
            std::hint::spin_loop();
        }
        // E3: cancel. Success: nobody saw the node — we still own it.
        // Failure: the slot reads BUSY, a popper owns the node; retire the
        // sentinel so the slot can host the next offer.
        match slot.compare_exchange(offer, EMPTY, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => {
                // Timed out: no popper around — narrow toward the hot slot.
                self.narrow(width);
                self.miss();
                false
            }
            Err(_) => {
                slot.store(EMPTY, Ordering::Relaxed);
                self.hit();
                true
            }
        }
    }

    /// Scans the live slots for a waiting offer and claims one.
    ///
    /// Returns the claimed node pointer — the caller now exclusively owns
    /// it (the matching push has returned or will return success) — or
    /// `None` if no offer could be claimed this pass.
    pub fn try_eliminate_pop(&self) -> Option<*mut u8> {
        let width = self.live_width();
        let start = thread_hash();
        for i in 0..width {
            let slot = &self.slots[(start + i) & (width - 1)];
            // D1: probe. Relaxed is fine — nothing is read through this
            // value; the claim CAS below re-checks it.
            let observed = slot.load(Ordering::Relaxed);
            if observed <= BUSY {
                continue;
            }
            // D2: claim. Acquire pairs with the offer's Release so the
            // payload read that follows (in stack.rs, strictly after this
            // CAS) sees the pusher's writes. Failure: the pusher cancelled
            // or another popper won — move on, both mean progress.
            if slot
                .compare_exchange(observed, BUSY, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                self.hit();
                return Some(observed as *mut u8);
            }
        }
        self.miss();
        None
    }

    /// Current live width (always a power of two in `1..=SLOTS`).
    pub fn width(&self) -> usize {
        self.width.load(Ordering::Relaxed).clamp(1, SLOTS)
    }

    /// Completed exchanges so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Exchange attempts that found no partner so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn live_width(&self) -> usize {
        self.width()
    }

    /// Racy grow hint (lost updates are fine: this is pacing, not state).
    fn widen(&self, observed: usize) {
        if observed < SLOTS {
            self.width.store(observed * 2, Ordering::Relaxed);
        }
    }

    /// Racy shrink hint.
    fn narrow(&self, observed: usize) {
        if observed > 1 {
            self.width.store(observed / 2, Ordering::Relaxed);
        }
    }

    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        lfrt_trace::emit(
            lfrt_trace::EventKind::ElimHit,
            lfrt_trace::Site::StackElim,
            self.width() as u64,
        );
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        lfrt_trace::emit(
            lfrt_trace::EventKind::ElimMiss,
            lfrt_trace::Site::StackElim,
            self.width() as u64,
        );
    }
}

impl Default for EliminationArray {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for EliminationArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EliminationArray")
            .field("width", &self.width())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A dummy exclusively-owned "node" address (never dereferenced).
    fn fake_node(cell: &mut u64) -> *mut u8 {
        (cell as *mut u64).cast()
    }

    #[test]
    fn pop_scan_finds_nothing_on_empty_array() {
        let e = EliminationArray::new();
        assert_eq!(e.try_eliminate_pop(), None);
        assert_eq!(e.hits(), 0);
        assert_eq!(e.misses(), 1);
    }

    #[test]
    fn lone_push_times_out_and_keeps_ownership() {
        let e = EliminationArray::new();
        let mut cell = 7u64;
        assert!(!e.try_eliminate_push(fake_node(&mut cell)));
        assert_eq!(e.hits(), 0);
        // The cancelled offer left the array empty for the next pass.
        assert_eq!(e.try_eliminate_pop(), None);
    }

    #[test]
    fn offer_then_claim_round_trips_the_pointer() {
        // Drive the slot protocol directly: install an offer the way a
        // pusher's E1 does, then claim it as a popper.
        let e = EliminationArray::new();
        let mut cell = 9u64;
        let node = fake_node(&mut cell);
        e.slots[0]
            .compare_exchange(EMPTY, node as usize, Ordering::Release, Ordering::Relaxed)
            .unwrap();
        assert_eq!(e.try_eliminate_pop(), Some(node));
        // The slot is BUSY until the pusher acknowledges: invisible to
        // further poppers.
        assert_eq!(e.try_eliminate_pop(), None);
        assert_eq!(e.slots[0].load(Ordering::Relaxed), BUSY);
    }

    #[test]
    fn width_adapts_within_bounds() {
        let e = EliminationArray::new();
        assert_eq!(e.width(), 1);
        for w in [2, 4, 8, 8] {
            e.widen(e.width());
            assert_eq!(e.width(), w);
        }
        for w in [4, 2, 1, 1] {
            e.narrow(e.width());
            assert_eq!(e.width(), w);
        }
    }

    #[test]
    fn concurrent_pairs_eventually_eliminate() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        // A pusher parks offers in a loop while a popper scans: at least
        // one exchange must land, and the exchanged pointer must be one of
        // the pusher's (ownership transfer, not invention).
        let e = Arc::new(EliminationArray::new());
        let stop = Arc::new(AtomicBool::new(false));
        let pusher = {
            let e = Arc::clone(&e);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut cell = 0u64;
                let node = (&mut cell as *mut u64).cast::<u8>() as usize;
                let mut taken = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if e.try_eliminate_push(node as *mut u8) {
                        taken += 1;
                    }
                }
                (node, taken)
            })
        };
        let mut claimed = Vec::new();
        for _ in 0..200_000 {
            if let Some(p) = e.try_eliminate_pop() {
                claimed.push(p as usize);
            }
            if !claimed.is_empty() {
                break;
            }
        }
        stop.store(true, Ordering::Relaxed);
        let (node, taken) = pusher.join().expect("pusher panicked");
        for p in &claimed {
            assert_eq!(*p, node, "claimed a pointer nobody offered");
        }
        // On a 1-CPU box the popper may never overlap a parked offer; when
        // it did, both sides must agree on the count.
        assert_eq!(taken as usize, claimed.len(), "hit accounting disagrees");
    }
}
