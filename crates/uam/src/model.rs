use crate::UamError;

/// The unimodal arbitrary arrival model `⟨l, a, W⟩`.
///
/// During **any** sliding window of `window` ticks, at most `max_arrivals`
/// and at least `min_arrivals` jobs of the task arrive. The periodic model is
/// the special case `⟨1, 1, W⟩` (see [`Uam::periodic`]).
///
/// # Examples
///
/// ```
/// use lfrt_uam::Uam;
///
/// # fn main() -> Result<(), lfrt_uam::UamError> {
/// let uam = Uam::new(1, 3, 100)?;
/// // Worst case over an interval of length 250 (Theorem 2's counting):
/// // a * (ceil(250/100) + 1) = 3 * 4 = 12.
/// assert_eq!(uam.max_arrivals_in(250), 12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Uam {
    min_arrivals: u32,
    max_arrivals: u32,
    window: u64,
}

impl Uam {
    /// Creates a UAM with minimum `l = min_arrivals`, maximum
    /// `a = max_arrivals`, and window `W = window` ticks.
    ///
    /// # Errors
    ///
    /// Returns [`UamError`] if `window` or `max_arrivals` is zero, or if
    /// `min_arrivals > max_arrivals`.
    pub fn new(min_arrivals: u32, max_arrivals: u32, window: u64) -> Result<Self, UamError> {
        if window == 0 {
            return Err(UamError::ZeroWindow);
        }
        if max_arrivals == 0 {
            return Err(UamError::ZeroMaxArrivals);
        }
        if min_arrivals > max_arrivals {
            return Err(UamError::MinExceedsMax {
                min: min_arrivals,
                max: max_arrivals,
            });
        }
        Ok(Self {
            min_arrivals,
            max_arrivals,
            window,
        })
    }

    /// The periodic special case `⟨1, 1, period⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn periodic(period: u64) -> Self {
        Self::new(1, 1, period).expect("period must be positive")
    }

    /// The minimum number of arrivals `l` per window.
    #[inline]
    pub fn min_arrivals(&self) -> u32 {
        self.min_arrivals
    }

    /// The maximum number of arrivals `a` per window.
    #[inline]
    pub fn max_arrivals(&self) -> u32 {
        self.max_arrivals
    }

    /// The window length `W` in ticks.
    #[inline]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Upper bound on arrivals within **any** interval of length `interval`:
    /// `a · (⌈interval / W⌉ + 1)`.
    ///
    /// This is the counting argument at the heart of the paper's Theorem 2
    /// (and of `n_i^max` in Lemma 4): the first and last windows may each be
    /// only partially overlapped by the interval, yet contribute a full burst
    /// of `a` arrivals at their extremes.
    #[inline]
    pub fn max_arrivals_in(&self, interval: u64) -> u64 {
        u64::from(self.max_arrivals) * (interval.div_ceil(self.window) + 1)
    }

    /// Lower bound on arrivals within any interval of length `interval`:
    /// `l · ⌊interval / W⌋` (the `n_i^min` of Lemma 4).
    #[inline]
    pub fn min_arrivals_in(&self, interval: u64) -> u64 {
        u64::from(self.min_arrivals) * (interval / self.window)
    }

    /// Long-run maximum arrival *rate* in jobs per tick (`a / W`), the weight
    /// used in the AUR upper bounds of Lemmas 4 and 5.
    #[inline]
    pub fn max_rate(&self) -> f64 {
        f64::from(self.max_arrivals) / self.window as f64
    }

    /// Long-run minimum arrival rate in jobs per tick (`l / W`), the weight
    /// used in the AUR lower bounds of Lemmas 4 and 5.
    #[inline]
    pub fn min_rate(&self) -> f64 {
        f64::from(self.min_arrivals) / self.window as f64
    }

    /// Fits the tightest UAM `⟨l, a, window⟩` describing `trace` for the
    /// given window length — model identification from observed arrivals.
    ///
    /// `a` is the largest count in any consecutive window touched by the
    /// trace; `l` is the smallest count over the aligned windows fully
    /// inside `[0, horizon)` (zero if some window is empty). The returned
    /// model always admits the trace:
    /// `trace.conforms_to(&fitted)` holds by construction.
    ///
    /// Returns `None` for an empty trace or zero window.
    pub fn fit(trace: &crate::ArrivalTrace, window: u64, horizon: u64) -> Option<Self> {
        if window == 0 || trace.is_empty() {
            return None;
        }
        let times = trace.times();
        let mut max_count = 0usize;
        let mut idx = 0;
        while idx < times.len() {
            let start = (times[idx] / window) * window;
            let end = start + window;
            let hi = times.partition_point(|&t| t < end);
            max_count = max_count.max(hi - idx);
            idx = hi;
        }
        let full_windows = horizon / window;
        let mut min_count = usize::MAX;
        for k in 0..full_windows {
            let start = k * window;
            min_count = min_count.min(trace.count_in(start, start + window));
        }
        if full_windows == 0 {
            min_count = 0;
        }
        let a = u32::try_from(max_count).ok()?;
        let l = u32::try_from(min_count.min(max_count)).unwrap_or(u32::MAX);
        Self::new(l, a.max(1), window).ok()
    }

    /// Fits models at every candidate window and returns the one with the
    /// lowest implied long-run rate `a/W` — the most informative envelope
    /// for the trace (interference bounds scale with `a/W`). Ties prefer
    /// the larger window.
    ///
    /// Returns `None` for an empty trace or no valid candidates.
    pub fn fit_best(
        trace: &crate::ArrivalTrace,
        candidate_windows: &[u64],
        horizon: u64,
    ) -> Option<Self> {
        candidate_windows
            .iter()
            .filter_map(|&w| Self::fit(trace, w, horizon))
            .min_by(|a, b| {
                a.max_rate()
                    .partial_cmp(&b.max_rate())
                    .expect("rates are finite")
                    .then(b.window().cmp(&a.window()))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert_eq!(Uam::new(1, 1, 0).unwrap_err(), UamError::ZeroWindow);
        assert_eq!(Uam::new(0, 0, 10).unwrap_err(), UamError::ZeroMaxArrivals);
        assert_eq!(
            Uam::new(5, 2, 10).unwrap_err(),
            UamError::MinExceedsMax { min: 5, max: 2 }
        );
        assert!(Uam::new(0, 2, 10).is_ok()); // l = 0 is a valid "may be idle" model
    }

    #[test]
    fn periodic_is_one_one_w() {
        let p = Uam::periodic(50);
        assert_eq!(p.min_arrivals(), 1);
        assert_eq!(p.max_arrivals(), 1);
        assert_eq!(p.window(), 50);
    }

    #[test]
    fn max_arrivals_counting_matches_theorem_two() {
        let uam = Uam::new(1, 3, 100).unwrap();
        // ceil(250/100) + 1 = 4 windows' worth.
        assert_eq!(uam.max_arrivals_in(250), 12);
        // Interval shorter than the window still admits 2a (back-to-back
        // bursts at either end): ceil(10/100) + 1 = 2.
        assert_eq!(uam.max_arrivals_in(10), 6);
        // Exact multiple: ceil(200/100) + 1 = 3.
        assert_eq!(uam.max_arrivals_in(200), 9);
    }

    #[test]
    fn min_arrivals_counting() {
        let uam = Uam::new(2, 5, 100).unwrap();
        assert_eq!(uam.min_arrivals_in(250), 4); // 2 * floor(2.5)
        assert_eq!(uam.min_arrivals_in(99), 0);
    }

    #[test]
    fn fit_identifies_bursts_and_gaps() {
        use crate::ArrivalTrace;
        // Windows of 10: [0,10) has 3 arrivals, [10,20) none, [20,30) one.
        let trace = ArrivalTrace::new(vec![1, 2, 2, 25]);
        let fitted = Uam::fit(&trace, 10, 30).expect("non-empty");
        assert_eq!(fitted.max_arrivals(), 3);
        assert_eq!(fitted.min_arrivals(), 0);
        assert!(trace.conforms_to(&fitted).is_ok());
    }

    #[test]
    fn fit_of_periodic_trace_is_periodic_model() {
        use crate::ArrivalTrace;
        let trace = ArrivalTrace::new((0..10).map(|k| k * 100).collect());
        let fitted = Uam::fit(&trace, 100, 1_000).expect("non-empty");
        assert_eq!(fitted.min_arrivals(), 1);
        assert_eq!(fitted.max_arrivals(), 1);
    }

    #[test]
    fn fit_best_prefers_informative_windows() {
        use crate::ArrivalTrace;
        // Strictly periodic at 100: the window 100 fits ⟨1,1,100⟩ at rate
        // 0.01 — tighter than W=10 (rate 0.1) and than W=250 (a=3, rate
        // 0.012).
        let trace = ArrivalTrace::new((0..50).map(|k| k * 100).collect());
        let best = Uam::fit_best(&trace, &[10, 100, 250], 5_000).expect("non-empty");
        assert_eq!(best.window(), 100);
        // And in general: the chosen model has the minimal rate among the
        // candidates.
        for &w in &[10u64, 100, 250] {
            let fitted = Uam::fit(&trace, w, 5_000).expect("non-empty");
            assert!(best.max_rate() <= fitted.max_rate() + 1e-12);
        }
        assert!(trace.conforms_to(&best).is_ok());
    }

    #[test]
    fn fit_rejects_degenerate_inputs() {
        use crate::ArrivalTrace;
        assert_eq!(Uam::fit(&ArrivalTrace::empty(), 10, 100), None);
        assert_eq!(Uam::fit(&ArrivalTrace::new(vec![1]), 0, 100), None);
    }

    #[test]
    fn rates() {
        let uam = Uam::new(1, 4, 200).unwrap();
        assert!((uam.max_rate() - 0.02).abs() < 1e-12);
        assert!((uam.min_rate() - 0.005).abs() < 1e-12);
    }
}
