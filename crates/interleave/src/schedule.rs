use std::fmt;
use std::str::FromStr;

/// A serialized interleaving: the sequence of thread ids chosen at each
/// scheduling decision of one execution.
///
/// The string form is the thread ids joined by `.` — `"0.1.1.0.2"` means
/// "thread 0 steps, then thread 1 twice, then 0, then 2". A failing
/// exploration prints this string; feeding it to [`crate::replay`] re-runs
/// the exact interleaving.
///
/// # Examples
///
/// ```
/// use lfrt_interleave::Schedule;
///
/// let s: Schedule = "0.1.1.0".parse().unwrap();
/// assert_eq!(s.steps(), &[0, 1, 1, 0]);
/// assert_eq!(s.to_string(), "0.1.1.0");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule(Vec<usize>);

impl Schedule {
    /// A schedule making the given choices in order.
    pub fn new(choices: Vec<usize>) -> Self {
        Self(choices)
    }

    /// The thread chosen at each decision, in order.
    pub fn steps(&self) -> &[usize] {
        &self.0
    }

    /// Number of scheduling decisions recorded.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the schedule is empty (no decisions).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, tid) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{tid}")?;
        }
        Ok(())
    }
}

/// Error parsing a [`Schedule`] string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScheduleError(String);

impl fmt::Display for ParseScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid schedule string: {}", self.0)
    }
}

impl std::error::Error for ParseScheduleError {}

impl FromStr for Schedule {
    type Err = ParseScheduleError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(Self(Vec::new()));
        }
        s.split('.')
            .map(|part| {
                part.trim()
                    .parse::<usize>()
                    .map_err(|_| ParseScheduleError(format!("bad thread id {part:?} in {s:?}")))
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_display() {
        let s = Schedule::new(vec![0, 1, 2, 1, 0]);
        let text = s.to_string();
        assert_eq!(text, "0.1.2.1.0");
        assert_eq!(text.parse::<Schedule>().unwrap(), s);
    }

    #[test]
    fn empty_schedule() {
        let s: Schedule = "".parse().unwrap();
        assert!(s.is_empty());
        assert_eq!(s.to_string(), "");
    }

    #[test]
    fn rejects_garbage() {
        assert!("0.x.1".parse::<Schedule>().is_err());
    }

    #[test]
    fn tolerates_whitespace() {
        let s: Schedule = " 0 . 10 . 2 ".parse().unwrap();
        assert_eq!(s.steps(), &[0, 10, 2]);
    }
}
