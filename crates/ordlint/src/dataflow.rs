//! Local, per-function dataflow approximations.
//!
//! Everything here is a *textual, forward-only* analysis over one cleaned
//! function body: `let` bindings and simple assignments propagate a taint
//! set; dereference forms (`*x`, `x.deref()`, `x.as_ref()`, ...) mark uses.
//! Taint is never killed — reassignment from an untainted value does not
//! clear it — and loop-carried flows (a use textually *before* the binding)
//! are not seen. Both choices keep the pass trivially deterministic; the
//! misses are exactly what the weak-memory explorer covers dynamically, and
//! false positives land in the justified baseline.

/// One `let` binding or simple `x = rhs` assignment.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Bound identifier.
    pub name: String,
    /// Byte offset of the identifier (order key for propagation).
    pub offset: usize,
    /// Half-open byte range of the right-hand side.
    pub rhs: (usize, usize),
}

use lfrt_srcscan::lex::is_ident_char;

/// Collects `let [mut] x = rhs;` bindings and simple `x = rhs;`
/// assignments inside `clean[span]`, in source order.
pub fn bindings(clean: &str, span: (usize, usize)) -> Vec<Binding> {
    let bytes = clean.as_bytes();
    let mut out = Vec::new();
    let mut i = span.0;
    while i < span.1 {
        if !is_ident_char(bytes[i]) || (i > 0 && is_ident_char(bytes[i - 1])) {
            i += 1;
            continue;
        }
        let start = i;
        while i < span.1 && is_ident_char(bytes[i]) {
            i += 1;
        }
        let word = &clean[start..i];
        if word == "let" {
            if let Some(b) = parse_let(clean, span, i) {
                i = b.rhs.1;
                out.push(b);
            }
        } else if let Some(b) = parse_assign(clean, span, start, i) {
            i = b.rhs.1;
            out.push(b);
        }
    }
    out
}

fn skip_ws(bytes: &[u8], mut i: usize, end: usize) -> usize {
    while i < end && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

fn parse_let(clean: &str, span: (usize, usize), after_let: usize) -> Option<Binding> {
    let bytes = clean.as_bytes();
    let mut i = skip_ws(bytes, after_let, span.1);
    // Optional `mut`.
    if clean[i..].starts_with("mut") && !is_ident_char(*bytes.get(i + 3)?) {
        i = skip_ws(bytes, i + 3, span.1);
    }
    if i >= span.1 || !is_ident_char(bytes[i]) {
        return None; // destructuring patterns are out of scope
    }
    let name_start = i;
    while i < span.1 && is_ident_char(bytes[i]) {
        i += 1;
    }
    let name = clean[name_start..i].to_string();
    // Skip an optional `: Type` annotation up to the `=` (statement depth).
    i = skip_ws(bytes, i, span.1);
    if bytes.get(i) == Some(&b':') {
        while i < span.1 && bytes[i] != b'=' && bytes[i] != b';' {
            i += 1;
        }
    }
    if bytes.get(i) != Some(&b'=') || bytes.get(i + 1) == Some(&b'=') {
        return None; // `let x;` or something unexpected
    }
    let rhs_start = i + 1;
    let rhs_end = statement_end(bytes, rhs_start, span.1);
    Some(Binding {
        name,
        offset: name_start,
        rhs: (rhs_start, rhs_end),
    })
}

fn parse_assign(
    clean: &str,
    span: (usize, usize),
    name_start: usize,
    name_end: usize,
) -> Option<Binding> {
    let bytes = clean.as_bytes();
    // Only statement-position targets: the previous significant byte must
    // end a statement, open a block, or end a match arm.
    let prev = bytes[span.0..name_start]
        .iter()
        .rev()
        .copied()
        .find(|b| !b.is_ascii_whitespace());
    if !matches!(prev, None | Some(b';' | b'{' | b'}' | b'>' | b',' | b'(')) {
        return None;
    }
    let i = skip_ws(bytes, name_end, span.1);
    // Compound assignment (`+=`, ...) is impossible here: the `=` directly
    // follows the identifier (modulo whitespace) by construction.
    if bytes.get(i) != Some(&b'=') || matches!(bytes.get(i + 1), Some(&b'=') | Some(&b'>')) {
        return None;
    }
    let rhs_start = i + 1;
    let rhs_end = statement_end(bytes, rhs_start, span.1);
    Some(Binding {
        name: clean[name_start..name_end].to_string(),
        offset: name_start,
        rhs: (rhs_start, rhs_end),
    })
}

/// Scans to the `;` (or `,`/`}` closing a match arm) ending the statement
/// that starts at `from`, respecting bracket nesting.
fn statement_end(bytes: &[u8], from: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = from;
    while i < end {
        match bytes[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' => depth -= 1,
            b'}' => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            b';' | b',' if depth == 0 => return i,
            _ => {}
        }
        if depth < 0 {
            return i;
        }
        i += 1;
    }
    end
}

/// Whether `text` contains `word` as a standalone identifier — not a field
/// (`.word`), not a path segment (`word::`/`::word`), not a substring.
pub fn contains_word(text: &str, word: &str) -> bool {
    find_word(text, word, 0).is_some()
}

/// First occurrence of standalone identifier `word` in `text` at or after
/// byte `from`.
pub fn find_word(text: &str, word: &str, from: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    let w = word.as_bytes();
    if w.is_empty() {
        return None;
    }
    let mut i = from;
    while i + w.len() <= bytes.len() {
        if &bytes[i..i + w.len()] == w
            && (i == 0 || !is_ident_char(bytes[i - 1]))
            && (i + w.len() == bytes.len() || !is_ident_char(bytes[i + w.len()]))
        {
            let dot_field = i > 0 && bytes[i - 1] == b'.';
            let path_seg = (i > 0 && bytes[i - 1] == b':') || bytes.get(i + w.len()) == Some(&b':');
            if !dot_field && !path_seg {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

/// Propagates taint through `bindings`: a binding whose right-hand side
/// mentions an already-tainted identifier taints its own name. `seeds` are
/// (identifier, offset) pairs tainted from the start.
pub fn propagate(
    clean: &str,
    bindings: &[Binding],
    seeds: &[(String, usize)],
) -> Vec<(String, usize)> {
    let mut tainted: Vec<(String, usize)> = seeds.to_vec();
    for b in bindings {
        let rhs = &clean[b.rhs.0..b.rhs.1];
        let hit = tainted
            .iter()
            .any(|(name, at)| *at <= b.offset && contains_word(rhs, name));
        if hit && !tainted.iter().any(|(n, _)| n == &b.name) {
            tainted.push((b.name.clone(), b.offset));
        }
    }
    tainted
}

/// First dereference-shaped use of `ident` in `clean[span]` at or after
/// `from`: `*ident` (tight, not multiplication) or
/// `ident.deref()`/`.deref_mut()`/`.as_ref()`/`.as_mut()`.
pub fn deref_use_after(
    clean: &str,
    span: (usize, usize),
    ident: &str,
    from: usize,
) -> Option<usize> {
    let text = &clean[span.0..span.1];
    let base = span.0;
    let mut i = from.saturating_sub(base);
    while let Some(pos) = find_word(text, ident, i) {
        let bytes = text.as_bytes();
        // `*ident`: the star must be adjacent and not a multiplication
        // (previous significant byte an identifier char or `)`).
        if pos > 0 && bytes[pos - 1] == b'*' {
            let prev = bytes[..pos - 1]
                .iter()
                .rev()
                .copied()
                .find(|b| !b.is_ascii_whitespace());
            let multiplication =
                matches!(prev, Some(p) if is_ident_char(p) || p == b')' || p == b']');
            if !multiplication {
                return Some(base + pos);
            }
        }
        let after = &text[pos + ident.len()..];
        if ["deref()", "deref_mut()", "as_ref()", "as_mut()"]
            .iter()
            .any(|m| after.starts_with(&format!(".{m}")))
        {
            return Some(base + pos);
        }
        i = pos + ident.len();
    }
    None
}

/// The identifier bound by the first `Err(ident)` pattern at or after
/// `from` in `clean[span]`, with its offset.
pub fn err_binding_after(
    clean: &str,
    span: (usize, usize),
    from: usize,
) -> Option<(String, usize)> {
    let text = &clean[span.0..span.1];
    let base = span.0;
    let mut i = from.saturating_sub(base);
    while let Some(pos) = find_word(text, "Err", i) {
        let bytes = text.as_bytes();
        let mut j = pos + 3;
        if bytes.get(j) == Some(&b'(') {
            j += 1;
            let start = j;
            while j < bytes.len() && is_ident_char(bytes[j]) {
                j += 1;
            }
            if j > start && bytes.get(j) == Some(&b')') {
                let ident = text[start..j].to_string();
                if ident != "_" {
                    return Some((ident, base + start));
                }
            }
        }
        i = pos + 3;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full(clean: &str) -> (usize, usize) {
        (0, clean.len())
    }

    #[test]
    fn let_and_assignment_bindings() {
        let src =
            "let sentinel = Owned::new(x); let sentinel = sentinel.into_shared(g); node = next;";
        let b = bindings(src, full(src));
        let names: Vec<&str> = b.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, ["sentinel", "sentinel", "node"]);
        assert!(src[b[0].rhs.0..b[0].rhs.1].contains("Owned::new"));
        assert!(src[b[2].rhs.0..b[2].rhs.1].contains("next"));
    }

    #[test]
    fn match_arm_assignment_is_a_binding() {
        let src = "match r { Ok(_) => return, Err(actual) => current = actual, }";
        let b = bindings(src, full(src));
        assert_eq!(b.len(), 1, "{b:?}");
        assert_eq!(b[0].name, "current");
    }

    #[test]
    fn comparison_is_not_an_assignment() {
        let src = "if first == second { x = 1; }";
        let b = bindings(src, full(src));
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].name, "x");
    }

    #[test]
    fn word_matching_respects_fields_and_paths() {
        assert!(contains_word("a + new", "new"));
        assert!(!contains_word("e.new", "new"));
        assert!(!contains_word("Owned::new(x)", "new"));
        assert!(!contains_word("renewal", "new"));
        assert!(contains_word("store(sentinel, Relaxed)", "sentinel"));
    }

    #[test]
    fn taint_propagates_through_rebinding() {
        let src = "let s = Owned::new(n); let s = s.into_shared(g); let t = s;";
        let b = bindings(src, full(src));
        let tainted = propagate(src, &b, &[(String::from("s"), b[0].offset)]);
        assert!(tainted.iter().any(|(n, _)| n == "t"));
    }

    #[test]
    fn deref_forms() {
        let src = "let a = *v; node.deref().next; w.as_ref(); x * y;";
        assert!(deref_use_after(src, full(src), "v", 0).is_some());
        assert!(deref_use_after(src, full(src), "node", 0).is_some());
        assert!(deref_use_after(src, full(src), "w", 0).is_some());
        assert!(
            deref_use_after(src, full(src), "y", 0).is_none(),
            "multiplication"
        );
        assert!(
            deref_use_after(src, full(src), "v", src.len() / 2).is_none(),
            "respects from"
        );
    }

    #[test]
    fn err_binding_extraction() {
        let src = "match c { Ok(p) => p, Err(actual) => { current = actual; } }";
        let (name, off) = err_binding_after(src, full(src), 0).expect("found");
        assert_eq!(name, "actual");
        assert!(off < src.len());
        assert!(err_binding_after("r.is_err()", (0, 10), 0).is_none());
    }
}
