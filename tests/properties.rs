//! Property-based system tests: on arbitrary (seeded) UAM workloads, the
//! simulator + RUA stack upholds its global invariants under every sharing
//! discipline.

use lockfree_rt::core::{Edf, RuaLockBased, RuaLockFree};
use lockfree_rt::sim::mp::MpEngine;
use lockfree_rt::sim::workload::{ArrivalStyle, TufClass, WorkloadSpec};
use lockfree_rt::sim::{Engine, OverheadModel, SharingMode, SimConfig, SimOutcome, UaScheduler};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        2usize..8,    // tasks
        1usize..5,    // objects
        0usize..5,    // accesses per job
        0u64..3,      // tuf class selector / arrival style selector
        20u32..130,   // load percent
        1u32..4,      // burst
        any::<u64>(), // seed
    )
        .prop_map(
            |(tasks, objects, accesses, style, load_pct, burst, seed)| WorkloadSpec {
                num_tasks: tasks,
                num_objects: objects,
                accesses_per_job: accesses,
                tuf_class: if style % 2 == 0 {
                    TufClass::Step
                } else {
                    TufClass::Heterogeneous
                },
                target_load: f64::from(load_pct) / 100.0,
                window_range: (3_000, 12_000),
                max_burst: burst,
                critical_time_frac: 0.9,
                arrival_style: match style {
                    0 => ArrivalStyle::Periodic,
                    1 => ArrivalStyle::RandomUam { intensity: 3.0 },
                    _ => ArrivalStyle::BackToBackBurst,
                },
                horizon: 120_000,
                read_fraction: 0.0,
                seed,
            },
        )
}

fn run<S: UaScheduler>(spec: &WorkloadSpec, sharing: SharingMode, scheduler: S) -> SimOutcome {
    let (tasks, traces) = spec.build().expect("valid workload");
    Engine::new(
        tasks,
        traces,
        SimConfig::new(sharing).overhead(OverheadModel::per_op(0.1)),
    )
    .expect("valid engine")
    .run(scheduler)
}

fn check_invariants(outcome: &SimOutcome, sharing: SharingMode) {
    let m = &outcome.metrics;
    // Conservation: every released job resolves exactly once.
    assert_eq!(m.released(), m.completed() + m.aborted());
    assert_eq!(outcome.records.len() as u64, m.released());
    // Ratios live in [0, 1].
    assert!((0.0..=1.0).contains(&m.aur()), "AUR {}", m.aur());
    assert!((0.0..=1.0).contains(&m.cmr()), "CMR {}", m.cmr());
    // Discipline-specific impossibilities.
    match sharing {
        SharingMode::LockBased { .. } => {
            assert_eq!(m.retries(), 0, "lock-based sharing cannot retry");
        }
        SharingMode::LockFree { .. } | SharingMode::Ideal => {
            assert_eq!(m.blockings(), 0, "lock-free/ideal sharing cannot block");
        }
    }
    // Per-record sanity: resolution after arrival, never past the critical
    // time (completion strictly before, abort exactly at or before due to
    // deadlock resolution), utility only from completions.
    for r in &outcome.records {
        assert!(r.resolved_at >= r.arrival);
        if !r.completed {
            assert_eq!(r.utility, 0.0);
        }
        assert!(r.utility >= 0.0 && r.utility.is_finite());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn invariants_hold_under_lock_free_rua(spec in arb_spec()) {
        let sharing = SharingMode::LockFree { access_ticks: 20 };
        let outcome = run(&spec, sharing, RuaLockFree::new());
        check_invariants(&outcome, sharing);
    }

    #[test]
    fn invariants_hold_under_lock_based_rua(spec in arb_spec()) {
        let sharing = SharingMode::LockBased { access_ticks: 60 };
        let outcome = run(&spec, sharing, RuaLockBased::new());
        check_invariants(&outcome, sharing);
    }

    #[test]
    fn invariants_hold_under_edf(spec in arb_spec()) {
        let sharing = SharingMode::Ideal;
        let outcome = run(&spec, sharing, Edf::new());
        check_invariants(&outcome, sharing);
    }

    /// Same spec, same seed, same scheduler => identical outcome.
    #[test]
    fn runs_are_reproducible(spec in arb_spec()) {
        let sharing = SharingMode::LockFree { access_ticks: 15 };
        let a = run(&spec, sharing, RuaLockFree::new());
        let b = run(&spec, sharing, RuaLockFree::new());
        prop_assert_eq!(a.records, b.records);
        prop_assert_eq!(a.metrics, b.metrics);
    }

    /// Measured retries respect Theorem 2 on every generated workload.
    #[test]
    fn theorem2_always_holds(spec in arb_spec()) {
        use lockfree_rt::analysis::RetryBoundInput;
        let (tasks, traces) = spec.build().expect("valid workload");
        let params: Vec<(lockfree_rt::uam::Uam, u64)> =
            tasks.iter().map(|t| (*t.uam(), t.tuf().critical_time())).collect();
        let outcome = Engine::new(
            tasks,
            traces,
            SimConfig::new(SharingMode::LockFree { access_ticks: 50 }),
        )
        .expect("valid engine")
        .run(RuaLockFree::new());
        for r in &outcome.records {
            let bound = RetryBoundInput::for_task(&params, r.task.index()).retry_bound();
            prop_assert!(
                r.retries <= bound,
                "job {} of task {}: {} retries > bound {}",
                r.id, r.task, r.retries, bound
            );
        }
    }

    /// The multiprocessor engine at m = 1 is record-for-record identical to
    /// the uniprocessor engine, on arbitrary workloads and both RUA
    /// variants — a differential check of two independent event loops.
    #[test]
    fn mp_engine_with_one_cpu_equals_engine(spec in arb_spec()) {
        for lock_based in [false, true] {
            let sharing = if lock_based {
                SharingMode::LockBased { access_ticks: 40 }
            } else {
                SharingMode::LockFree { access_ticks: 15 }
            };
            let (tasks, traces) = spec.build().expect("valid workload");
            let uni = Engine::new(tasks, traces, SimConfig::new(sharing))
                .expect("valid engine");
            let uni = if lock_based {
                uni.run(RuaLockBased::new())
            } else {
                uni.run(RuaLockFree::new())
            };
            let (tasks, traces) = spec.build().expect("valid workload");
            let mp = MpEngine::new(tasks, traces, SimConfig::new(sharing), 1)
                .expect("valid engine");
            let mp = if lock_based {
                mp.run(RuaLockBased::new())
            } else {
                mp.run(RuaLockFree::new())
            };
            prop_assert_eq!(&uni.records, &mp.records);
            prop_assert_eq!(&uni.metrics, &mp.metrics);
        }
    }

    /// More processors never lose utility on the same workload.
    #[test]
    fn extra_cpus_never_hurt(spec in arb_spec()) {
        let sharing = SharingMode::LockFree { access_ticks: 15 };
        let mut prev = -1.0f64;
        for cpus in [1usize, 2, 4] {
            let (tasks, traces) = spec.build().expect("valid workload");
            let outcome = MpEngine::new(tasks, traces, SimConfig::new(sharing), cpus)
                .expect("valid engine")
                .run(RuaLockFree::new());
            let aur = outcome.metrics.aur();
            // Greedy UA scheduling is not optimal, so allow small slack.
            prop_assert!(aur >= prev - 0.08, "{cpus} CPUs: AUR {aur} < {prev}");
            prev = prev.max(aur);
        }
    }

    /// Zero-overhead ideal sharing dominates (or ties) costly sharing on
    /// the same workload and scheduler.
    #[test]
    fn ideal_is_an_upper_bound(spec in arb_spec()) {
        let ideal = run(&spec, SharingMode::Ideal, RuaLockFree::new());
        let costly = run(
            &spec,
            SharingMode::LockFree { access_ticks: 100 },
            RuaLockFree::new(),
        );
        // Allow a small tolerance: UA scheduling is greedy, not optimal, so
        // pathological cases can invert slightly.
        prop_assert!(
            ideal.metrics.aur() >= costly.metrics.aur() - 0.12,
            "ideal {} far below costly {}",
            ideal.metrics.aur(),
            costly.metrics.aur()
        );
    }
}
