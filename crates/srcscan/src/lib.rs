//! Shared lexical machinery for the workspace's static checkers.
//!
//! Both `lfrt-ordlint` (memory-ordering lint) and `lfrt-progress`
//! (progress-guarantee lint) work the same way: load source files, blank
//! comments and string literals byte-for-byte so pattern matching cannot
//! trip over `".load("` inside a doc comment, then run token-level
//! analyses over the cleaned text. This crate is that common substrate,
//! extracted so the two checkers cannot drift apart on the subtle parts
//! (raw-string blanking, receiver-chain walking, deterministic file
//! ordering):
//!
//! * [`source`] — [`source::SourceFile`] and the offset-preserving
//!   [`source::blank`] pass (comments, strings, raw strings, byte
//!   strings, char literals vs lifetimes).
//! * [`lex`] — identifier/bracket helpers and the backwards
//!   receiver-chain walker shared by site extraction in both linters.
//! * [`walk`] — deterministic `.rs` inventory under a set of roots, with
//!   `/`-separated paths relative to the scan root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lex;
pub mod source;
pub mod walk;
