//! Nested critical sections and deadlock resolution in action (§3.3/§3.5
//! of the paper): two "transactions" take two locks in opposite orders,
//! deadlock at runtime, and RUA's detection aborts the least-utility victim
//! so the other commits. The trace log shows the whole story.
//!
//! Run with: `cargo run --example nested_transactions`

use lockfree_rt::core::RuaLockBased;
use lockfree_rt::sim::{Engine, ObjectId, Segment, SharingMode, SimConfig, TaskSpec, TraceEvent};
use lockfree_rt::tuf::Tuf;
use lockfree_rt::uam::{ArrivalTrace, Uam};

fn acquire(o: usize) -> Segment {
    Segment::Acquire {
        object: ObjectId::new(o),
    }
}
fn release(o: usize) -> Segment {
    Segment::Release {
        object: ObjectId::new(o),
    }
}

fn transaction(
    name: &str,
    utility: f64,
    critical: u64,
    first: usize,
    second: usize,
) -> Result<TaskSpec, Box<dyn std::error::Error>> {
    Ok(TaskSpec::builder(name)
        .tuf(Tuf::step(utility, critical)?)
        .uam(Uam::periodic(100_000))
        .segments(vec![
            acquire(first),
            Segment::Compute(300), // work under the outer lock
            acquire(second),
            Segment::Compute(300), // work under both locks
            release(second),
            release(first),
        ])
        .build()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // "audit" locks ledger(O0) then index(O1); "transfer" (10× utility)
    // locks index(O1) then ledger(O0). Their interleaving deadlocks.
    let audit = transaction("audit", 1.0, 50_000, 0, 1)?;
    let transfer = transaction("transfer", 10.0, 5_000, 1, 0)?;
    let outcome = Engine::new(
        vec![audit, transfer],
        vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![100])],
        SimConfig::new(SharingMode::LockBased { access_ticks: 50 }).trace(true),
    )?
    .run(RuaLockBased::new());

    println!("event log:");
    for rec in outcome.trace.records() {
        match rec.event {
            TraceEvent::LockAcquired { job, object } => {
                println!("  t={:>5}  {job} acquired {object}", rec.at);
            }
            TraceEvent::Blocked { job, object } => {
                println!("  t={:>5}  {job} BLOCKED on {object}", rec.at);
            }
            TraceEvent::Aborted { job, reason } => {
                println!(
                    "  t={:>5}  {job} ABORTED ({reason:?}) — deadlock resolved",
                    rec.at
                );
            }
            TraceEvent::Woken { job, object } => {
                println!("  t={:>5}  {job} woken ({object} released)", rec.at);
            }
            TraceEvent::Completed { job, utility } => {
                println!("  t={:>5}  {job} completed (utility {utility})", rec.at);
            }
            _ => {}
        }
    }

    let transfer_rec = outcome
        .records
        .iter()
        .find(|r| r.task.index() == 1)
        .expect("transfer resolved");
    assert!(
        transfer_rec.completed,
        "the valuable transaction must commit"
    );
    println!(
        "\ntotal utility {:.0} of {:.0} possible — the audit was sacrificed to the deadlock.",
        outcome
            .metrics
            .per_task()
            .iter()
            .map(|t| t.utility_accrued)
            .sum::<f64>(),
        outcome
            .metrics
            .per_task()
            .iter()
            .map(|t| t.utility_possible)
            .sum::<f64>(),
    );
    Ok(())
}
