//! One-command reproduction: runs every paper experiment in sequence by
//! invoking the sibling binaries (same build profile, same defaults) and
//! streaming their output.
//!
//! The shared runner flags pass straight through: `--quick` and
//! `--threads N` are forwarded to every child, and `--json <path>` makes
//! each child write its own report to a scratch directory, after which the
//! reports are merged into one document (15 `experiments` entries — figures
//! 8, 9, 10–13, 14a/14b, the five tables, plus the `uncontended_ops` and
//! `churn_footprint` points the CI perf gate consumes) at `<path>`. The
//! merged document keeps each child's deterministic payload byte-for-byte,
//! so the `--threads 1` vs `--threads 8` identity check works on it too.
//!
//! `--trace <path>` likewise hands every child its own flight-recorder
//! destination (see `lfrt_bench::trace`) and merges the per-child trace
//! reports into one document at `<path>`.
//!
//! Usage: `cargo run -p lfrt-bench --release --bin paper_all --
//! [--quick] [--threads N] [--json <path>] [--trace <path>]`

use std::path::PathBuf;
use std::process::Command;

use lfrt_bench::json::{self, Json};
use lfrt_bench::Args;

fn main() {
    let started = std::time::Instant::now();
    let args = Args::from_env();
    let quick = args.quick();
    let json_path = args.json_path();
    let trace_path = args.trace_path();

    let me = std::env::current_exe().expect("own path");
    let bin_dir = me.parent().expect("bin directory").to_path_buf();
    let runs: &[(&str, &[&str])] = &[
        ("fig8_access_times", &[]),
        ("fig9_cml", &[]),
        ("fig10_13_aur_cmr", &["--load", "0.4", "--tufs", "step"]),
        ("fig10_13_aur_cmr", &["--load", "0.4", "--tufs", "hetero"]),
        ("fig10_13_aur_cmr", &["--load", "1.1", "--tufs", "step"]),
        ("fig10_13_aur_cmr", &["--load", "1.1", "--tufs", "hetero"]),
        ("fig14_readers", &[]),
        ("retry_bound_table", &[]),
        ("sojourn_crossover", &[]),
        ("taxonomy_table", &[]),
        ("crash_starvation", &[]),
        ("mp_scaling", &[]),
        ("uncontended_ops", &[]),
        ("churn_footprint", &[]),
    ];

    // Scratch directory for the children's individual reports.
    let scratch = (json_path.is_some() || trace_path.is_some()).then(|| {
        let dir = std::env::temp_dir().join(format!("paper_all_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    });

    let threads = args.threads().to_string();
    let mut failed = Vec::new();
    let mut child_reports: Vec<PathBuf> = Vec::new();
    let mut child_traces: Vec<PathBuf> = Vec::new();
    for (i, (bin, extra)) in runs.iter().enumerate() {
        println!(
            "\n==================== {bin} {} ====================",
            extra.join(" ")
        );
        let mut command = Command::new(bin_dir.join(bin));
        command.args(*extra).args(["--threads", &threads]);
        if quick {
            command.arg("--quick");
        }
        if let (Some(dir), true) = (&scratch, json_path.is_some()) {
            let child_path = dir.join(format!("{i:02}_{bin}.json"));
            command.arg("--json").arg(&child_path);
            child_reports.push(child_path);
        }
        if let (Some(dir), true) = (&scratch, trace_path.is_some()) {
            let child_path = dir.join(format!("{i:02}_{bin}.trace.json"));
            command.arg("--trace").arg(&child_path);
            child_traces.push(child_path);
        }
        let status = command
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            failed.push(format!("{bin} {}", extra.join(" ")));
        }
    }

    if let (Some(path), true) = (&json_path, failed.is_empty()) {
        merge(path, &child_reports, args.threads(), quick, started);
    }
    if let (Some(path), true) = (&trace_path, failed.is_empty()) {
        merge(path, &child_traces, args.threads(), quick, started);
    }
    if let Some(dir) = &scratch {
        let _ = std::fs::remove_dir_all(dir);
    }

    println!("\n====================================================");
    if failed.is_empty() {
        println!("all experiments completed; see EXPERIMENTS.md for the recorded shapes.");
    } else {
        println!("FAILED experiments: {failed:?}");
        std::process::exit(1);
    }
}

/// Concatenates the children's `experiments` arrays (in run order) into one
/// document with fresh run metadata.
fn merge(
    path: &std::path::Path,
    child_reports: &[PathBuf],
    threads: usize,
    quick: bool,
    started: std::time::Instant,
) {
    let mut experiments = Vec::new();
    for child in child_reports {
        let text = std::fs::read_to_string(child)
            .unwrap_or_else(|e| panic!("read {}: {e}", child.display()));
        let doc = json::parse(&text).unwrap_or_else(|e| panic!("parse {}: {e}", child.display()));
        let entries = doc
            .get("experiments")
            .and_then(Json::as_array)
            .unwrap_or_else(|| panic!("{}: no experiments array", child.display()));
        experiments.extend(entries.iter().cloned());
    }
    let count = experiments.len();
    let doc = Json::Obj(vec![
        ("schema_version".into(), 1u64.into()),
        (
            "meta".into(),
            Json::Obj(vec![
                ("generator".into(), "lfrt-bench".into()),
                ("git_rev".into(), json::git_rev().into()),
                ("threads".into(), threads.into()),
                ("quick".into(), quick.into()),
                (
                    "duration_secs".into(),
                    started.elapsed().as_secs_f64().into(),
                ),
            ]),
        ),
        ("experiments".into(), Json::Arr(experiments)),
    ]);
    std::fs::write(path, doc.to_string_pretty())
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("wrote {count} experiment(s) to {}", path.display());
}
