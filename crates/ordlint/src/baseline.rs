//! The justified-findings baseline (`ordlint.toml`).
//!
//! A finding that is *intentional* — a constructor publishing with
//! `Relaxed` before the object escapes, a `Drop` walking nodes it owns
//! exclusively — gets an `[[allow]]` entry instead of a code change. Every
//! entry **must** carry a non-empty `justification`; an entry that matches
//! no current finding is *stale* and fails the run just like an
//! unbaselined finding, so the baseline can only ever shrink or be
//! consciously re-justified.
//!
//! The format is the tiny TOML subset below, parsed by hand (the build is
//! offline; no toml crate):
//!
//! ```toml
//! [[allow]]
//! rule = "ORD002"
//! file = "crates/lockfree/src/stack.rs"
//! function = "drop"
//! receiver = "self.top"
//! justification = "Drop takes &mut self: exclusive access, nothing to acquire."
//! ```

use crate::rules::Finding;

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Rule ID the entry silences.
    pub rule: String,
    /// File of the allowed finding (relative, `/` separators).
    pub file: String,
    /// Enclosing function of the allowed finding.
    pub function: String,
    /// Normalized receiver of the allowed finding.
    pub receiver: String,
    /// Why the finding is intentional. Required, non-empty.
    pub justification: String,
    /// 1-based line of the entry's `[[allow]]` header, for error messages.
    pub line: usize,
}

impl Entry {
    fn key(&self) -> (String, String, String, String) {
        (
            self.rule.clone(),
            self.file.clone(),
            self.function.clone(),
            self.receiver.clone(),
        )
    }
}

/// Parses the baseline file.
///
/// # Errors
///
/// Returns a `line: message` string for unknown keys, values that are not
/// double-quoted strings, content outside an `[[allow]]` block, duplicate
/// entries, or entries missing `rule`/`file`/`justification`.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let mut entries: Vec<Entry> = Vec::new();
    let mut current: Option<Entry> = None;
    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            finish(&mut entries, current.take(), lineno)?;
            current = Some(Entry {
                rule: String::new(),
                file: String::new(),
                function: String::new(),
                receiver: String::new(),
                justification: String::new(),
                line: lineno,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "{lineno}: expected `key = \"value\"`, got `{line}`"
            ));
        };
        let Some(entry) = current.as_mut() else {
            return Err(format!("{lineno}: `{line}` outside an [[allow]] entry"));
        };
        let value = value.trim();
        let unquoted = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| {
                format!(
                    "{lineno}: value of `{}` must be a quoted string",
                    key.trim()
                )
            })?
            .replace("\\\"", "\"");
        match key.trim() {
            "rule" => entry.rule = unquoted,
            "file" => entry.file = unquoted,
            "function" => entry.function = unquoted,
            "receiver" => entry.receiver = unquoted,
            "justification" => entry.justification = unquoted,
            other => return Err(format!("{lineno}: unknown key `{other}`")),
        }
    }
    let end = text.lines().count();
    finish(&mut entries, current.take(), end)?;
    Ok(entries)
}

fn strip_comment(line: &str) -> &str {
    // A `#` inside a quoted value stays; this subset never nests quotes.
    let mut in_str = false;
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' if i == 0 || bytes[i - 1] != b'\\' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn finish(entries: &mut Vec<Entry>, entry: Option<Entry>, lineno: usize) -> Result<(), String> {
    let Some(entry) = entry else { return Ok(()) };
    if entry.rule.is_empty() || entry.file.is_empty() {
        return Err(format!(
            "{}: [[allow]] entry needs at least `rule` and `file`",
            entry.line
        ));
    }
    if entry.justification.trim().is_empty() {
        return Err(format!(
            "{}: [[allow]] entry for {} in {} has no justification — every \
             baselined finding must say why it is intentional",
            entry.line, entry.rule, entry.file
        ));
    }
    if entries.iter().any(|e| e.key() == entry.key()) {
        return Err(format!(
            "{lineno}: duplicate [[allow]] entry for {:?}",
            entry.key()
        ));
    }
    entries.push(entry);
    Ok(())
}

/// The outcome of matching findings against the baseline.
#[derive(Debug, Default)]
pub struct MatchResult {
    /// Findings covered by an entry, with the entry's justification.
    pub baselined: Vec<(Finding, String)>,
    /// Findings with no matching entry — these fail the run.
    pub unbaselined: Vec<Finding>,
    /// Entries matching no finding — these fail the run too.
    pub stale: Vec<Entry>,
}

/// Matches `findings` against `entries` on (rule, file, function,
/// receiver). One entry may cover several findings at the same key (e.g. a
/// rule firing twice in one function on the same receiver).
pub fn apply(findings: Vec<Finding>, entries: &[Entry]) -> MatchResult {
    let mut result = MatchResult::default();
    let mut used = vec![false; entries.len()];
    for finding in findings {
        let key = finding.key();
        match entries.iter().position(|e| e.key() == key) {
            Some(i) => {
                used[i] = true;
                result
                    .baselined
                    .push((finding, entries[i].justification.clone()));
            }
            None => result.unbaselined.push(finding),
        }
    }
    result.stale = entries
        .iter()
        .zip(&used)
        .filter(|&(_, u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# The workspace baseline.
[[allow]]
rule = "ORD002"
file = "crates/lockfree/src/stack.rs"
function = "drop"
receiver = "self.top"
justification = "Drop takes &mut self: exclusive access."
"#;

    fn finding(rule: &'static str, file: &str, function: &str, receiver: &str) -> Finding {
        Finding {
            rule,
            severity: "error",
            file: file.into(),
            line: 1,
            function: function.into(),
            receiver: receiver.into(),
            message: String::new(),
        }
    }

    #[test]
    fn parses_a_valid_entry() {
        let entries = parse(GOOD).expect("valid");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "ORD002");
        assert_eq!(entries[0].receiver, "self.top");
        assert!(entries[0].justification.contains("exclusive"));
    }

    #[test]
    fn missing_justification_is_an_error() {
        let bad = "[[allow]]\nrule = \"ORD001\"\nfile = \"a.rs\"\n";
        let err = parse(bad).expect_err("must fail");
        assert!(err.contains("justification"), "{err}");
    }

    #[test]
    fn unknown_keys_and_bare_values_rejected() {
        assert!(parse("[[allow]]\nrule = \"R\"\nfile = \"f\"\nwhy = \"x\"\n").is_err());
        assert!(parse("[[allow]]\nrule = ORD001\n").is_err());
        assert!(parse("rule = \"ORD001\"\n").is_err());
    }

    #[test]
    fn duplicate_entries_rejected() {
        let dup = format!("{GOOD}\n{GOOD}");
        assert!(parse(&dup).expect_err("dup").contains("duplicate"));
    }

    #[test]
    fn matching_splits_baselined_unbaselined_stale() {
        let entries = parse(GOOD).expect("valid");
        let covered = finding("ORD002", "crates/lockfree/src/stack.rs", "drop", "self.top");
        let novel = finding(
            "ORD001",
            "crates/lockfree/src/queue.rs",
            "new",
            "queue.head",
        );
        let result = apply(vec![covered, novel], &entries);
        assert_eq!(result.baselined.len(), 1);
        assert_eq!(result.unbaselined.len(), 1);
        assert_eq!(result.unbaselined[0].rule, "ORD001");
        assert!(result.stale.is_empty());
        let stale = apply(Vec::new(), &entries);
        assert_eq!(stale.stale.len(), 1);
    }
}
