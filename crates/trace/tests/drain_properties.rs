//! Property-based tests for the flight recorder's drain accounting and the
//! histogram aggregator: random write/drain/wraparound interleavings must
//! preserve the conservation law
//!
//! ```text
//! kept + overwritten + discarded == written
//! ```
//!
//! (no event is ever double-counted or silently lost — it is kept, lost to
//! overwrite, or discarded as torn-suspect, exactly one of the three), and
//! histogram bucket totals must partition the recorded samples. Failing
//! cases persist to `drain_properties.proptest-regressions` next to this
//! file and replay before novel cases on the next run.
//!
//! The recorder is process-global, so every case serializes on
//! [`lfrt_trace::tests_serialize`] and flushes leftovers first; all writes
//! happen on the runner thread, so within a case the drain is quiescent and
//! the accounting must balance *exactly* — the fuzzing is over the op
//! sequence, not over concurrency (real-thread tearing is
//! `ring_properties.rs`; deterministic interleavings are
//! `interleave_mirror.rs`).

use proptest::prelude::*;

use lfrt_trace::{
    drain, emit, op_latency_ns, op_retries, set_enabled, EventKind, Histogram, Site, TraceSnapshot,
    RING_CAPACITY,
};

/// One step of a randomized recorder workload.
#[derive(Debug, Clone)]
enum Op {
    /// Emit this many events (values are the running write index).
    Write(usize),
    /// Drain mid-stream.
    Drain,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Bursts long enough that a handful of ops can lap the ring
        // (RING_CAPACITY = 4096).
        (1..3000usize).prop_map(Op::Write),
        Just(Op::Drain),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The conservation law over arbitrary write/drain interleavings,
    /// including multi-lap wraparounds and empty drains.
    #[test]
    fn drain_accounting_balances(ops in proptest::collection::vec(op_strategy(), 1..12)) {
        let _guard = lfrt_trace::tests_serialize();
        set_enabled(true);
        let _ = drain(); // flush another test's leftovers
        let mut written: u64 = 0;
        // Kept events must surface in write order, and only events that
        // were actually written.
        fn account(
            events: &[lfrt_trace::Event],
            stats: &lfrt_trace::DrainStats,
            written: u64,
            totals: &mut (u64, u64, u64),
        ) {
            for pair in events.windows(2) {
                assert!(pair[0].value < pair[1].value, "drain reordered events");
            }
            if let Some(last) = events.last() {
                assert!(last.value < written, "drained an event never written");
            }
            totals.0 += events.len() as u64;
            totals.1 += stats.overwritten;
            totals.2 += stats.discarded;
        }
        let mut totals = (0u64, 0u64, 0u64);
        for op in ops {
            match op {
                Op::Write(n) => {
                    for _ in 0..n {
                        emit(EventKind::EpochDefer, Site::Other, written);
                        written += 1;
                    }
                }
                Op::Drain => {
                    let (events, stats) = drain();
                    account(&events, &stats, written, &mut totals);
                }
            }
        }
        let (events, stats) = drain();
        account(&events, &stats, written, &mut totals);
        let (kept, overwritten, discarded) = totals;
        set_enabled(false);
        prop_assert_eq!(
            kept + overwritten + discarded,
            written,
            "conservation violated: kept {} + overwritten {} + discarded {} != written {}",
            kept, overwritten, discarded, written
        );
    }

    /// Single-burst wraparound: what survives is exactly the newest window
    /// (minus the one torn-suspect slot), in order, ending at the last
    /// write.
    #[test]
    fn wraparound_keeps_the_newest_window(extra in 1..5000usize) {
        let _guard = lfrt_trace::tests_serialize();
        set_enabled(true);
        let _ = drain();
        let total = (RING_CAPACITY + extra) as u64;
        for i in 0..total {
            emit(EventKind::EpochPin, Site::Epoch, i);
        }
        set_enabled(false);
        let (events, stats) = drain();
        prop_assert_eq!(stats.overwritten, extra as u64);
        prop_assert_eq!(stats.discarded, 1);
        prop_assert_eq!(events.len(), RING_CAPACITY - 1);
        prop_assert_eq!(events.first().unwrap().value, extra as u64 + 1);
        prop_assert_eq!(events.last().unwrap().value, total - 1);
    }

    /// Histogram bucket totals partition the samples: every sample lands in
    /// exactly one bucket, bucket bounds actually contain their samples,
    /// and the exact count/sum/min/max ride along unquantized.
    #[test]
    fn histogram_buckets_partition_samples(values in proptest::collection::vec(any::<u64>(), 0..200)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
            let b = Histogram::bucket_of(v);
            prop_assert!(v <= Histogram::bucket_ceiling(b), "sample above its bucket ceiling");
            if b > 0 {
                prop_assert!(v > Histogram::bucket_ceiling(b - 1), "sample below its bucket floor");
            }
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let bucket_total: u64 = h.nonzero_buckets().iter().map(|(_, n)| n).sum();
        prop_assert_eq!(bucket_total, h.count(), "bucket totals must partition the count");
        let exact_sum = values.iter().fold(0u64, |acc, &v| acc.saturating_add(v));
        prop_assert_eq!(h.sum(), exact_sum);
        prop_assert_eq!(h.min(), values.iter().min().copied().unwrap_or(0));
        prop_assert_eq!(h.max(), values.iter().max().copied().unwrap_or(0));
        if !values.is_empty() {
            // Percentiles are bucket-quantized but never above the exact max
            // and never below the exact min.
            for p in [0.0, 50.0, 99.0, 100.0] {
                let q = h.percentile(p);
                prop_assert!(q <= h.max() && q >= h.min().min(h.max()), "percentile {p} = {q} escapes [min, max]");
            }
        }
    }

    /// Merging histograms is the same as recording everything into one —
    /// the property the per-thread aggregation in `snapshot()` relies on.
    #[test]
    fn histogram_merge_matches_recording_everything(
        a in proptest::collection::vec(any::<u64>(), 0..100),
        b in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut all = Histogram::new();
        for &v in &a {
            ha.record(v);
            all.record(v);
        }
        for &v in &b {
            hb.record(v);
            all.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha, all);
    }

    /// The snapshot aggregator partitions kept events: per-kind counts sum
    /// to the drain's event count, each kind's value histogram holds
    /// exactly that kind's events, and `CasSuccess` ops additionally
    /// partition across sites with their packed latency/retry fields
    /// unpacked into the right histograms.
    #[test]
    fn snapshot_kind_and_site_counts_partition_events(
        events in proptest::collection::vec(
            (0..EventKind::ALL.len(), 0..Site::ALL.len(), any::<u64>()),
            0..300,
        )
    ) {
        let _guard = lfrt_trace::tests_serialize();
        set_enabled(true);
        let _ = drain();
        for &(kind, site, value) in &events {
            emit(EventKind::ALL[kind], Site::ALL[site], value);
        }
        set_enabled(false);
        let (drained, stats) = drain();
        // Below RING_CAPACITY nothing is lost, so the aggregator sees every
        // written event.
        prop_assert_eq!(drained.len(), events.len());
        let snap = TraceSnapshot::from_events(&drained, stats);
        let kind_total: u64 = snap.kinds.iter().map(|k| k.count).sum();
        prop_assert_eq!(kind_total, snap.events, "kind counts must partition the drain");
        for summary in &snap.kinds {
            prop_assert_eq!(
                summary.value.count(),
                summary.count,
                "kind {:?}: histogram holds a different population than its count",
                summary.kind
            );
            if let Some(retries) = &summary.retries {
                prop_assert_eq!(retries.count(), summary.count);
            }
        }
        let cas_total = snap.kind(EventKind::CasSuccess).map_or(0, |k| k.count);
        let site_total: u64 = snap.sites.iter().map(|s| s.ops).sum();
        prop_assert_eq!(site_total, cas_total, "site ops must partition CasSuccess events");
        // Spot-check the packed-field unpacking against a recomputation.
        if let Some(first_cas) = drained.iter().find(|e| e.kind == EventKind::CasSuccess) {
            let site = snap.site(first_cas.site).expect("site with a CAS op must be summarized");
            prop_assert!(site.latency_ns.max() >= op_latency_ns(first_cas.value) || site.ops > 1);
            prop_assert!(site.retries.max() >= op_retries(first_cas.value) || site.ops > 1);
        }
    }
}
