//! Batched-operation exploration: `push_n`/`pop_n` on the pooled stack and
//! `enqueue_batch`/`dequeue_batch` on the MS queue are ordinary element
//! loops under a single guard — the mirrors check that the claim "batching
//! changes amortization, not the protocol" actually holds under
//! interleaving and weak memory, and the partial-batch twin shows what the
//! single guard is buying: drop it mid-batch and the remainder of the
//! batch can CAS against a node that was recycled and republished in the
//! window (A → B → A), resurrecting a stale tail.

use std::sync::{Arc, Mutex};

use lfrt_interleave::models::{ModelMsQueue, ModelPoolStack};
use lfrt_interleave::{explore, replay, Config, FailureKind, MemoryMode, Plan};

type Cell = Arc<Mutex<Vec<u64>>>;

fn cell() -> Cell {
    Arc::new(Mutex::new(Vec::new()))
}

fn conservation_check(pushed: Vec<u64>, popped: Vec<Cell>, remaining: Vec<u64>) {
    let mut seen: Vec<u64> = popped
        .iter()
        .flat_map(|c| c.lock().unwrap().clone())
        .chain(remaining)
        .collect();
    seen.sort_unstable();
    let mut expected = pushed;
    expected.sort_unstable();
    assert_eq!(seen, expected, "elements lost or duplicated");
}

/// The CHESS preemption bound for the cross-mode faithful runs (see
/// `tests/pool_model.rs` for why 3).
const BOUND: Option<usize> = Some(3);

fn config(name: &'static str, memory: MemoryMode) -> Config {
    Config {
        memory,
        preemption_bound: BOUND,
        ..Config::exhaustive(name)
    }
}

fn all_modes() -> [(&'static str, MemoryMode); 3] {
    [
        ("sc", MemoryMode::Sc),
        (
            "tso",
            MemoryMode::StoreBuffer {
                bound: MemoryMode::DEFAULT_BOUND,
            },
        ),
        (
            "relaxed",
            MemoryMode::Relaxed {
                bound: MemoryMode::DEFAULT_BOUND,
                window: MemoryMode::DEFAULT_WINDOW,
            },
        ),
    ]
}

/// Partial-batch guard drop on the pooled stack. Scenario: stack `[1, 2, 3]`
/// (3 on top); t0 runs a two-element batch pop; t1 pops twice and pushes 4.
/// The twin drops the batch guard after the first element, so t1's retires
/// recycle immediately; the hazardous schedule parks t0 mid-second-pop
/// (holding pre-drop top/next snapshots), lets t1 drain the stack and push
/// 4 into a recycled node, and resumes t0 — whose CAS succeeds against the
/// recycled node and splices the stale `next` back in, resurrecting a
/// drained element. The faithful `pop_n` keeps every retire of the batch
/// behind the one guard, so no recycled node can match a parked CAS.
mod partial_batch_guard_drop {
    use super::*;

    fn scenario(guard_dropped: bool) -> Plan {
        // One constructor for both variants: the twin is selected per
        // *operation* (`pop_n_guard_dropped`), since the bug is a batch
        // dropping its guard, not a property of the pool.
        let stack = Arc::new(ModelPoolStack::new());
        stack.push_n(&[1, 2, 3]);
        let (pop0, pop1) = (cell(), cell());
        let s0 = Arc::clone(&stack);
        let r0 = Arc::clone(&pop0);
        let s1 = Arc::clone(&stack);
        let r1 = Arc::clone(&pop1);
        Plan::new()
            .thread(move || {
                let batch = if guard_dropped {
                    s0.pop_n_guard_dropped(2)
                } else {
                    s0.pop_n(2)
                };
                r0.lock().unwrap().extend(batch);
            })
            .thread(move || {
                let mut out = Vec::new();
                out.extend(s1.pop());
                out.extend(s1.pop());
                s1.push(4);
                r1.lock().unwrap().extend(out);
            })
            .check(move || {
                conservation_check(
                    vec![1, 2, 3, 4],
                    vec![pop0.clone(), pop1.clone()],
                    stack.drain_plain(),
                );
            })
    }

    #[test]
    fn guard_drop_is_caught_and_replayable() {
        let report = explore(&Config::exhaustive("batch-guard-drop"), || scenario(true));
        let failure = report.assert_fails();
        assert_eq!(failure.kind, FailureKind::Panic);
        assert!(
            failure.message.contains("lost or duplicated"),
            "{failure:?}"
        );
        let schedule = failure.schedule.clone();
        let err = std::panic::catch_unwind(move || replay(&schedule, || scenario(true)))
            .expect_err("replay must reproduce the stale-tail resurrection");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lost or duplicated"), "{msg}");
    }

    #[test]
    fn single_guard_batch_survives_every_memory_mode() {
        for (mode_name, memory) in all_modes() {
            explore(
                &config(
                    Box::leak(format!("batch-stack-{mode_name}").into_boxed_str()),
                    memory,
                ),
                || scenario(false),
            )
            .assert_ok();
        }
    }
}

/// Queue batches racing a single-element consumer: `enqueue_batch` must
/// publish each element with the full MS protocol (no torn batch), and
/// `dequeue_batch` must stop cleanly at empty.
mod queue_batches {
    use super::*;

    fn scenario() -> Plan {
        let queue = Arc::new(ModelMsQueue::new());
        queue.enqueue(1);
        let (pop0, pop1) = (cell(), cell());
        let q0 = Arc::clone(&queue);
        let r0 = Arc::clone(&pop0);
        let q1 = Arc::clone(&queue);
        let r1 = Arc::clone(&pop1);
        Plan::new()
            .thread(move || {
                q0.enqueue_batch(&[2, 3]);
                r0.lock().unwrap().extend(q0.dequeue());
            })
            .thread(move || {
                r1.lock().unwrap().extend(q1.dequeue_batch(2));
            })
            .check(move || {
                conservation_check(
                    vec![1, 2, 3],
                    vec![pop0.clone(), pop1.clone()],
                    queue.drain_plain(),
                );
                // FIFO within each consumer: batch order must follow queue
                // order even when the batches interleave.
                let batch = pop1.lock().unwrap().clone();
                let mut sorted = batch.clone();
                sorted.sort_unstable();
                assert_eq!(batch, sorted, "a batch dequeue reordered elements");
            })
    }

    #[test]
    fn interleaved_batches_survive_every_memory_mode() {
        for (mode_name, memory) in all_modes() {
            explore(
                &config(
                    Box::leak(format!("batch-queue-{mode_name}").into_boxed_str()),
                    memory,
                ),
                scenario,
            )
            .assert_ok();
        }
    }
}
