//! Theorem 2 against *measured* retries: the [`lockfree_rt::lockfree`]
//! objects count every failed CAS pass in their [`OpStats`], and on a
//! workload paced to conform to the UAM by construction, those measured
//! counters must stay within the analytic [`RetryBoundInput::retry_bound`].
//!
//! This closes the loop left open by `theorem2_retry_bound.rs`, which checks
//! the bound against the discrete-event simulator's *modeled* retries. Here
//! real OS threads hammer the real CAS loops; the arrival model is enforced
//! with barriers — one round = one job per task, so during any job's
//! execution window each other task releases at most one job, i.e. every
//! task behaves as a `Uam::new(1, 1, W)` source over a critical time of one
//! round.
//!
//! Per-task attribution: `OpStats` lives on the shared object, so the
//! per-task form of the bound is aggregated — with `jobs` jobs per task, the
//! object's total retry counter must stay below `Σ_i jobs · bound_i`.
//! (Per-task modeled retries are already checked job-by-job in the
//! simulator test.) The accounting identity `attempts = successes + retries`
//! is cross-checked against the ground-truth operation count the test
//! itself performed.

use std::sync::{Arc, Barrier};

use lockfree_rt::analysis::RetryBoundInput;
use lockfree_rt::lockfree::{CasRegister, OpStats, TreiberStack};
use lockfree_rt::uam::Uam;

const TASKS: usize = 4;
const ROUNDS: u64 = 1_000;
/// Logical length of one round in ticks: the critical time of every job and
/// the UAM window of every task. The real wall-clock pacing is the barrier;
/// the tick value only feeds the analytic bound.
const WINDOW: u64 = 10_000;

/// The symmetric per-job Theorem 2 bound for this workload: each of the
/// other `TASKS - 1` tasks is a `Uam(1, 1, WINDOW)` source over a critical
/// time of `WINDOW`, so `f ≤ 3·1 + 2·(TASKS-1)·1·(⌈W/W⌉+1)`.
fn per_job_bound() -> u64 {
    let others: Vec<Uam> = (1..TASKS)
        .map(|_| Uam::new(1, 1, WINDOW).expect("valid UAM"))
        .collect();
    RetryBoundInput {
        own_max_arrivals: 1,
        critical_time: WINDOW,
        others,
    }
    .retry_bound()
}

/// Runs `job` once per round per task, barrier-paced so that any job
/// overlaps at most one job of each other task, then checks the object's
/// measured counters: `attempts = successes + retries`, successes equal the
/// ground-truth op count, and total retries stay under the aggregated
/// Theorem 2 bound.
fn run_uam_paced<F>(stats_of: impl Fn() -> &'static OpStats, job: F, what: &str)
where
    F: Fn(usize, u64) + Send + Sync + 'static,
{
    let job = Arc::new(job);
    let barrier = Arc::new(Barrier::new(TASKS));
    std::thread::scope(|s| {
        for task in 0..TASKS {
            let job = Arc::clone(&job);
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                for round in 0..ROUNDS {
                    barrier.wait();
                    job(task, round);
                }
            });
        }
    });

    let snapshot = stats_of().snapshot();
    let total_ops = (TASKS as u64) * ROUNDS;
    assert_eq!(
        snapshot.successes(),
        total_ops,
        "{what}: one success per job, {total_ops} jobs"
    );
    assert!(
        snapshot.attempts >= snapshot.successes(),
        "{what}: attempts {} below successes {}",
        snapshot.attempts,
        snapshot.successes()
    );
    let aggregate_bound = total_ops * per_job_bound();
    assert!(
        snapshot.retries <= aggregate_bound,
        "{what}: measured {} retries over {} jobs, above the aggregated \
         Theorem 2 bound {} ({} per job)",
        snapshot.retries,
        total_ops,
        aggregate_bound,
        per_job_bound()
    );
}

#[test]
fn register_retries_stay_under_theorem2_bound() {
    // Leak the object so the closure handed to workers can borrow it
    // 'static-ly along with its stats; a test-lifetime leak of one register
    // is harmless.
    let reg: &'static CasRegister = Box::leak(Box::new(CasRegister::new(0)));
    run_uam_paced(
        || reg.stats(),
        move |_task, _round| {
            // One shared-object access per job: a read-modify-write on the
            // single contended word, the paper's primitive lock-free op.
            reg.update(|v| v + 1);
        },
        "cas-register",
    );
    assert_eq!(reg.load(), (TASKS as u64) * ROUNDS, "every update landed");
}

#[test]
fn stack_push_retries_stay_under_theorem2_bound() {
    let stack: &'static TreiberStack<u64> = Box::leak(Box::new(TreiberStack::new()));
    run_uam_paced(
        || stack.stats(),
        move |task, round| {
            stack.push((task as u64) * ROUNDS + round);
        },
        "treiber-push",
    );
    // Conservation: every pushed element is still there, exactly once.
    let mut drained = Vec::new();
    while let Some(v) = stack.pop() {
        drained.push(v);
    }
    drained.sort_unstable();
    let expected: Vec<u64> = (0..(TASKS as u64) * ROUNDS).collect();
    assert_eq!(drained, expected);
}

#[test]
fn measured_ops_are_declared_lock_free_in_the_progress_manifest() {
    // Theorem 2's retry bound is meaningless for an op that can block, so
    // the two ops this file measures must carry (at least) a lock_free
    // declaration in progress.toml — the statically checked contract
    // (`cargo run -p lfrt-progress`). If either ever degrades to
    // `blocking`, this test fails before the bound comparison can lie.
    let manifest_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("progress.toml");
    let text = std::fs::read_to_string(manifest_path).expect("progress.toml");
    let manifest = lfrt_progress::manifest::parse(&text).expect("progress.toml parses");
    for op in ["CasRegister::update", "TreiberStack::push"] {
        let decl = manifest
            .op(op)
            .unwrap_or_else(|| panic!("{op} must be declared in progress.toml"));
        assert!(
            decl.class.at_least_lock_free(),
            "{op} is measured against the Theorem 2 retry bound and must be \
             lock_free or stronger, not {}",
            decl.class
        );
    }
}
