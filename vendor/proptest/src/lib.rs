//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy/runner subset this workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! [`any`], [`Just`], [`collection::vec`], [`prop_oneof!`], and the
//! [`proptest!`] test macro with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` rendering (via the assertion message), but is not minimized.
//! * **Deterministic seeding.** Each test's case stream is a pure function
//!   of the test function's name, so failures reproduce exactly across runs
//!   and machines. Set `PROPTEST_CASES` to raise or lower the case count
//!   (default 64) without touching code.
//! * `prop_assert!`/`prop_assert_eq!` panic immediately instead of
//!   returning `Err`, which under this runner reports the same failure.
//!
//! Like the real crate, the runner honors `*.proptest-regressions` files:
//! before generating novel cases, each test re-runs the seeds recorded in
//! the `cc <hex>` lines of the sibling regressions file (the first 16 hex
//! digits are the [`TestRng`] state, so files written by real proptest
//! remain parseable). When a generated case fails, the runner prints a
//! ready-to-paste `cc` line for that case.

use std::ops::{Range, RangeInclusive};
use std::path::PathBuf;

pub mod collection;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// The runner's random source (SplitMix64; deterministic per test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h }
    }

    /// A generator resumed from a recorded state (the value of a `cc` line
    /// in a `*.proptest-regressions` file).
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The current internal state. Recording it immediately before
    /// generating a case makes that case replayable via
    /// [`TestRng::from_seed`].
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a whole-domain default strategy ([`any`]).
pub trait Arbitrary {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning many magnitudes.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let exp = (rng.below(61) as i32 - 30) as f64;
        (unit - 0.5) * exp.exp2()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Uniform choice between boxed strategies of one value type
/// (the engine behind [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// The sibling regressions file for a test source path: `foo/bar.rs` →
/// `foo/bar.proptest-regressions`, resolved against the working directory
/// first (cargo runs test binaries from the package root) and
/// `CARGO_MANIFEST_DIR` second.
fn regression_path(source_file: &str) -> PathBuf {
    let relative = PathBuf::from(source_file).with_extension("proptest-regressions");
    if relative.exists() {
        return relative;
    }
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(root) => {
            let joined = PathBuf::from(root).join(&relative);
            if joined.exists() {
                joined
            } else {
                relative
            }
        }
        None => relative,
    }
}

/// Parses the seeds out of a regressions file body: one per `cc <hex>` line,
/// taking the first 16 hex digits as the RNG state. Tolerates the 64-digit
/// hashes real proptest writes as well as this runner's 16-digit seeds;
/// comments (`#`) and blank lines are skipped.
fn parse_regression_seeds(body: &str) -> Vec<u64> {
    body.lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            let token = rest.split_whitespace().next()?;
            let head: String = token.chars().take(16).collect();
            u64::from_str_radix(&head, 16).ok()
        })
        .collect()
}

/// Recorded case seeds for a test source file (empty when the file has no
/// sibling `*.proptest-regressions`). Called by the [`proptest!`] expansion
/// with `file!()`; each returned seed is re-run before novel cases.
#[doc(hidden)]
pub fn persisted_seeds(source_file: &str) -> Vec<u64> {
    match std::fs::read_to_string(regression_path(source_file)) {
        Ok(body) => parse_regression_seeds(&body),
        Err(_) => Vec::new(),
    }
}

/// Armed across one case's execution: if the case panics, prints the
/// ready-to-paste `cc` line that replays it. Disarmed on success.
#[doc(hidden)]
pub struct PersistGuard {
    seed: u64,
    source_file: &'static str,
    test: &'static str,
    armed: bool,
}

impl PersistGuard {
    /// Arms the guard for one case.
    pub fn new(seed: u64, source_file: &'static str, test: &'static str) -> Self {
        Self {
            seed,
            source_file,
            test,
            armed: true,
        }
    }

    /// The case completed without panicking.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for PersistGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            let path = regression_path(self.source_file);
            eprintln!(
                "proptest: test {} failed; replay this case by adding the line below to {}:\n\
                 cc {:016x} # seed for {}",
                self.test,
                path.display(),
                self.seed,
                self.test
            );
        }
    }
}

/// Everything a property test file usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Asserts a condition inside a property test body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { (<$crate::ProptestConfig as Default>::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            // Persisted failures first: every `cc` seed from the sibling
            // `*.proptest-regressions` file replays before novel cases.
            for __seed in $crate::persisted_seeds(file!()) {
                let mut __rng = $crate::TestRng::from_seed(__seed);
                let __guard = $crate::PersistGuard::new(__seed, file!(), stringify!($name));
                let ($($pat,)+) = ($($crate::Strategy::generate(&($strategy), &mut __rng),)+);
                $body
                __guard.disarm();
            }
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                let __seed = rng.state();
                let __guard = $crate::PersistGuard::new(__seed, file!(), stringify!($name));
                let ($($pat,)+) = ($($crate::Strategy::generate(&($strategy), &mut rng),)+);
                $body
                __guard.disarm();
            }
        }
        $crate::__proptest_tests! { ($config); $($rest)* }
    };
    (($config:expr);) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = TestRng::deterministic("ranges_and_maps");
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = TestRng::deterministic("union_arms");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let mut rng = TestRng::deterministic("vec_sizes");
        let s = collection::vec(any::<u64>(), 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn regression_lines_parse_both_formats() {
        let body = "# comment\n\n\
                    cc 95ebcaf36e8ec286dbc49a18b6871c31a08b80cd23f996eab1f23c172bd2e615 # real proptest hash\n\
                    cc 00000000deadbeef # this runner's short form\n\
                    not a cc line\n\
                    cc xyz # unparseable, skipped\n";
        assert_eq!(
            crate::parse_regression_seeds(body),
            vec![0x95eb_caf3_6e8e_c286, 0xdead_beef]
        );
    }

    #[test]
    fn from_seed_replays_the_recorded_case() {
        let mut rng = TestRng::deterministic("replay");
        rng.next_u64();
        let seed = rng.state();
        let strategy = collection::vec(0u32..1000, 3..8);
        let original = strategy.generate(&mut rng);
        let mut replay = TestRng::from_seed(seed);
        assert_eq!(strategy.generate(&mut replay), original);
    }

    #[test]
    fn missing_regression_file_yields_no_seeds() {
        assert!(crate::persisted_seeds("src/lib.rs").is_empty());
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        let mut c = TestRng::deterministic("other");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, tuples, and asserts all compose.
        #[test]
        fn macro_end_to_end(v in collection::vec(0u32..100, 0..10), (a, b) in (0u8..4, 1u16..9)) {
            prop_assert!(v.iter().all(|&x| x < 100));
            prop_assert!(a < 4);
            prop_assert_ne!(b, 0);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
