//! **§1.1 crash-starvation experiment** — the paper's motivating argument
//! against locks: "deadlocks can occur when lock holders crash, causing
//! indefinite starvation to blockers."
//!
//! One task per run is fault-injected to crash inside its object access;
//! everyone else keeps needing the object. The table sweeps the crash time
//! and reports the accrued utility under lock-based vs lock-free sharing:
//! lock-based collapses to (almost) zero the moment the holder dies holding
//! the lock, lock-free barely notices.
//!
//! Usage: `cargo run -p lfrt-bench --release --bin crash_starvation --
//! [--seeds 5] [--json <path>] [--threads N] [--quick]`

use lfrt_bench::json::{self, Point, Report};
use lfrt_bench::runner::Sweep;
use lfrt_bench::stats::Summary;
use lfrt_bench::{table, Args};
use lfrt_core::{RuaLockBased, RuaLockFree};
use lfrt_sim::{
    AccessKind, Engine, ObjectId, Segment, SharingMode, SimConfig, TaskSpec, Ticks, UaScheduler,
};
use lfrt_tuf::Tuf;
use lfrt_uam::{ArrivalGenerator, ArrivalTrace, RandomUamArrivals, Uam};

const HORIZON: u64 = 400_000;
const CRASHES: [Option<u64>; 4] = [None, Some(50), Some(150), Some(190)];

fn build(crash_after: Option<Ticks>, seed: u64) -> (Vec<TaskSpec>, Vec<ArrivalTrace>) {
    let mut tasks = Vec::new();
    let mut traces = Vec::new();
    // The potential crasher: long object access early in its job.
    let mut builder = TaskSpec::builder("crasher")
        .tuf(Tuf::step(2.0, 45_000).expect("valid tuf"))
        .uam(Uam::periodic(50_000))
        .segments(vec![
            Segment::Compute(100),
            Segment::Access {
                object: ObjectId::new(0),
                kind: AccessKind::Write,
            },
            Segment::Compute(100),
        ]);
    if let Some(c) = crash_after {
        builder = builder.crash_after(c);
    }
    tasks.push(builder.build().expect("valid task"));
    traces.push(ArrivalTrace::new(vec![0]));
    // Six healthy tasks sharing the same object.
    for i in 0..6 {
        let uam = Uam::new(1, 2, 20_000).expect("valid");
        tasks.push(
            TaskSpec::builder(format!("worker{i}"))
                .tuf(Tuf::step(5.0, 18_000).expect("valid tuf"))
                .uam(uam)
                .segments(vec![
                    Segment::Compute(200),
                    Segment::Access {
                        object: ObjectId::new(0),
                        kind: AccessKind::Write,
                    },
                    Segment::Compute(200),
                ])
                .build()
                .expect("valid task"),
        );
        traces.push(
            RandomUamArrivals::new(uam, seed * 100 + i)
                .with_intensity(2.0)
                .generate(HORIZON),
        );
    }
    (tasks, traces)
}

fn run<S: UaScheduler>(
    crash_after: Option<Ticks>,
    seed: u64,
    sharing: SharingMode,
    scheduler: S,
) -> f64 {
    let (tasks, traces) = build(crash_after, seed);
    Engine::new(tasks, traces, SimConfig::new(sharing).record_jobs(false))
        .expect("valid engine")
        .run(scheduler)
        .metrics
        .aur()
}

fn main() {
    let started = std::time::Instant::now();
    let args = Args::from_env();
    let trace = lfrt_bench::trace::Session::from_args(&args, "crash_starvation");
    let quick = args.quick();
    let seeds = args.get_u64("seeds", if quick { 2 } else { 5 });
    println!("# §1.1 crash starvation: a lock holder dies mid-critical-section");
    println!("# 1 crasher + 6 workers on one object; r = 2000 µs, s = 100 µs; {seeds} seeds");

    // One point per (crash scenario, seed); each evaluates both disciplines.
    let points: Vec<(Option<u64>, u64)> = CRASHES
        .iter()
        .flat_map(|&c| (0..seeds).map(move |seed| (c, seed)))
        .collect();
    let results = Sweep::new("crash_starvation", points)
        .threads(args.threads())
        .run(|&(crash, seed)| {
            let lb = run(
                crash,
                seed,
                SharingMode::LockBased {
                    access_ticks: 2_000,
                },
                RuaLockBased::new(),
            );
            let lf = run(
                crash,
                seed,
                SharingMode::LockFree { access_ticks: 100 },
                RuaLockFree::new(),
            );
            [lf, lb]
        });

    let mut report = Report::new("crash_starvation", "crash", "AUR after a lock-holder crash")
        .config("seeds", seeds)
        .config("r_ticks", 2_000u64)
        .config("s_ticks", 100u64)
        .config("horizon", HORIZON);

    let mut rows = Vec::new();
    for (i, &crash) in CRASHES.iter().enumerate() {
        let label = match crash {
            None => "no crash".to_string(),
            // The access starts 100 ticks in; crashes at ≥100 die holding it.
            Some(c) if c < 100 => format!("crash at {c} (before lock)"),
            Some(c) => format!("crash at {c} (HOLDING lock)"),
        };
        let chunk = &results[i * seeds as usize..(i + 1) * seeds as usize];
        let lf: Vec<f64> = chunk.iter().map(|c| c[0]).collect();
        let lb: Vec<f64> = chunk.iter().map(|c| c[1]).collect();
        rows.push(vec![
            label.clone(),
            Summary::of(&lf).display(3),
            Summary::of(&lb).display(3),
        ]);
        report.points.push(Point {
            params: vec![
                (
                    "crash_after".into(),
                    crash.map_or(json::Json::Null, Into::into),
                ),
                ("scenario".into(), label.into()),
            ],
            seeds: (0..seeds).collect(),
            metrics: vec![
                ("aur_lock_free".into(), json::summary_of(&lf)),
                ("aur_lock_based".into(), json::summary_of(&lb)),
            ],
            timing: Vec::new(),
        });
    }
    table::print(
        "Accrued utility ratio after a holder crash",
        &["scenario", "AUR lock-free", "AUR lock-based"],
        &rows,
    );
    println!("\nshape check: lock-based collapses when the crash lands inside the critical");
    println!("section (the lock is never released); lock-free is indifferent to the crash.");

    if let Some(path) = args.json_path() {
        let meta = json::RunMeta::capture(args.threads(), quick);
        json::write_reports(&path, &[report], meta, started).expect("write JSON report");
    }
    trace.finish(args.threads(), args.quick());
}
