use std::error::Error;
use std::fmt;

/// Error returned when constructing an invalid task or simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A task was given no execution segments.
    EmptySegments {
        /// The task's name.
        task: String,
    },
    /// A task's total compute time was zero.
    ZeroComputeTime {
        /// The task's name.
        task: String,
    },
    /// A required task field was missing from the builder.
    MissingField {
        /// The field's name.
        field: &'static str,
    },
    /// The number of arrival traces did not match the number of tasks.
    TraceCountMismatch {
        /// Tasks supplied.
        tasks: usize,
        /// Traces supplied.
        traces: usize,
    },
    /// A task references more objects than the simulation declares.
    UnknownObject {
        /// The task's name.
        task: String,
        /// The out-of-range object index.
        object: usize,
    },
    /// A task's explicit `Acquire`/`Release` segments are not properly
    /// nested (LIFO), re-acquire a held object, or leave a lock held at
    /// job completion.
    UnbalancedLocking {
        /// The task's name.
        task: String,
        /// What went wrong.
        detail: String,
    },
    /// Explicit `Acquire`/`Release` segments (nested critical sections)
    /// only make sense under lock-based sharing.
    NestedRequiresLockBased {
        /// The offending task's name.
        task: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EmptySegments { task } => {
                write!(f, "task {task} has no execution segments")
            }
            SimError::ZeroComputeTime { task } => {
                write!(f, "task {task} has zero total compute time")
            }
            SimError::MissingField { field } => {
                write!(f, "task builder is missing required field `{field}`")
            }
            SimError::TraceCountMismatch { tasks, traces } => {
                write!(f, "{tasks} tasks but {traces} arrival traces supplied")
            }
            SimError::UnknownObject { task, object } => {
                write!(f, "task {task} accesses undeclared object index {object}")
            }
            SimError::UnbalancedLocking { task, detail } => {
                write!(f, "task {task} has unbalanced explicit locking: {detail}")
            }
            SimError::NestedRequiresLockBased { task } => write!(
                f,
                "task {task} uses explicit acquire/release segments, which require lock-based sharing"
            ),
        }
    }
}

impl Error for SimError {}
