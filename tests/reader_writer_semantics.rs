//! The multi-writer/multi-reader asymmetry (§7 frames the problem class):
//! under lock-free sharing, reads are invalidated by concurrent writes but
//! never invalidate anyone — so an all-reader workload retries **zero**
//! times no matter the contention, while the same workload with writes
//! retries. Also demonstrates, on multiprocessors, that true concurrency
//! can push retries *past* the uniprocessor Theorem 2 bound — the reason
//! the paper scopes the theorem to a single processor.

use lockfree_rt::analysis::RetryBoundInput;
use lockfree_rt::core::RuaLockFree;
use lockfree_rt::sim::mp::MpEngine;
use lockfree_rt::sim::workload::{ArrivalStyle, TufClass, WorkloadSpec};
use lockfree_rt::sim::{AccessKind, Engine, ObjectId, Segment, SharingMode, SimConfig, TaskSpec};
use lockfree_rt::tuf::Tuf;
use lockfree_rt::uam::{ArrivalTrace, Uam};

fn spec(read_fraction: f64, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        num_tasks: 8,
        num_objects: 1,
        accesses_per_job: 4,
        tuf_class: TufClass::Step,
        target_load: 0.9,
        window_range: (5_000, 15_000),
        max_burst: 2,
        critical_time_frac: 0.9,
        arrival_style: ArrivalStyle::RandomUam { intensity: 3.0 },
        horizon: 300_000,
        read_fraction,
        seed,
    }
}

#[test]
fn all_reader_workload_never_retries() {
    for seed in 0..5 {
        let (tasks, traces) = spec(1.0, seed).build().expect("valid workload");
        let outcome = Engine::new(
            tasks,
            traces,
            SimConfig::new(SharingMode::LockFree { access_ticks: 200 }),
        )
        .expect("valid engine")
        .run(RuaLockFree::new());
        assert_eq!(
            outcome.metrics.retries(),
            0,
            "seed {seed}: reads cannot invalidate reads"
        );
        assert!(outcome.metrics.released() > 20);
    }
}

#[test]
fn writers_cause_retries_on_the_same_workload() {
    let mut any = false;
    for seed in 0..5 {
        let (tasks, traces) = spec(0.0, seed).build().expect("valid workload");
        let outcome = Engine::new(
            tasks,
            traces,
            SimConfig::new(SharingMode::LockFree { access_ticks: 200 }),
        )
        .expect("valid engine")
        .run(RuaLockFree::new());
        any |= outcome.metrics.retries() > 0;
    }
    assert!(
        any,
        "the write variant of the workload must retry somewhere"
    );
}

#[test]
fn readers_do_retry_when_writers_interfere() {
    // One writer, one reader of the same object, staggered so the writer
    // commits mid-read: the reader retries (reads are not immune, they are
    // just harmless to others).
    let reader = TaskSpec::builder("reader")
        .tuf(Tuf::step(1.0, 50_000).expect("valid tuf"))
        .uam(Uam::periodic(100_000))
        .segments(vec![
            Segment::Compute(10),
            Segment::Access {
                object: ObjectId::new(0),
                kind: AccessKind::Read,
            },
        ])
        .build()
        .expect("valid task");
    let writer = TaskSpec::builder("writer")
        .tuf(Tuf::step(10.0, 500).expect("valid tuf"))
        .uam(Uam::periodic(100_000))
        .segments(vec![Segment::Access {
            object: ObjectId::new(0),
            kind: AccessKind::Write,
        }])
        .build()
        .expect("valid task");
    let outcome = Engine::new(
        vec![reader, writer],
        vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![50])],
        SimConfig::new(SharingMode::LockFree { access_ticks: 100 }),
    )
    .expect("valid engine")
    .run(RuaLockFree::new());
    let reader_rec = outcome
        .records
        .iter()
        .find(|r| r.task.index() == 0)
        .expect("ran");
    assert_eq!(
        reader_rec.retries, 1,
        "the writer's commit invalidates the in-flight read"
    );
}

#[test]
fn true_concurrency_can_exceed_the_uniprocessor_bound() {
    // Theorem 2 counts scheduling events; on one processor a retry needs a
    // preemption. With 4 CPUs hammering one object, a job can retry many
    // times with *no* scheduling events in between — the bound, valid on
    // one processor (checked exhaustively in tests/theorem2_retry_bound.rs),
    // is demonstrably not a multiprocessor bound. This is the measured
    // motivation for the paper's §7 future work.
    // The key: each hammer JOB performs 25 back-to-back writes, keeping its
    // CPU fully busy and committing every 100 ticks while adding only
    // two scheduling events per 2.5 ms — commits, not events, are what
    // invalidate concurrent attempts.
    let victim = TaskSpec::builder("victim")
        .tuf(Tuf::step(1.0, 50_000).expect("valid tuf"))
        .uam(Uam::periodic(1_000_000))
        .segments(vec![Segment::Access {
            object: ObjectId::new(0),
            kind: AccessKind::Write,
        }])
        .build()
        .expect("valid task");
    let hammer_access = Segment::Access {
        object: ObjectId::new(0),
        kind: AccessKind::Write,
    };
    let mut tasks = vec![victim];
    let mut traces = vec![ArrivalTrace::new(vec![0])];
    for h in 0..2 {
        tasks.push(
            TaskSpec::builder(format!("hammer{h}"))
                .tuf(Tuf::step(10.0, 2_500).expect("valid tuf"))
                .uam(Uam::new(1, 1, 2_500).expect("valid"))
                .segments(vec![hammer_access; 25])
                .build()
                .expect("valid task"),
        );
        traces.push(ArrivalTrace::new(
            (0..24).map(|k| h * 50 + k * 2_500).collect(),
        ));
    }
    // Uniprocessor Theorem 2 bound for the victim.
    let bound = RetryBoundInput {
        own_max_arrivals: 1,
        critical_time: 50_000,
        others: vec![Uam::new(1, 1, 2_500).expect("valid"); 2],
    }
    .retry_bound();
    let outcome = MpEngine::new(
        tasks,
        traces,
        SimConfig::new(SharingMode::LockFree { access_ticks: 100 }),
        3,
    )
    .expect("valid engine")
    .run(RuaLockFree::new());
    let victim_rec = outcome
        .records
        .iter()
        .find(|r| r.task.index() == 0)
        .expect("resolved");
    // The victim's 100-tick attempts lose to hammer commits landing every
    // ~50 ticks; over 50 ms it racks up far more retries than the
    // event-counting bound allows.
    assert!(
        victim_rec.retries > bound,
        "expected multiprocessor retries ({}) to exceed the uniprocessor bound ({bound})",
        victim_rec.retries
    );
}
