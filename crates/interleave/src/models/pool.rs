//! Models of the epoch-recycling node pool, mirroring
//! `crates/lockfree/src/pool.rs` and the pooled hot path of
//! `crates/lockfree/src/stack.rs`.
//!
//! Two algorithms are mirrored, each with a seeded-bug twin:
//!
//! - [`ModelPoolStack`] — a Treiber stack whose nodes come from a free
//!   cache and return to it through a **limbo** (the model of the epoch
//!   grace period). The faithful variant ([`ModelPoolStack::new`]) parks a
//!   retired node in limbo and only moves it to the reusable cache when all
//!   threads are quiescent ([`ModelPoolStack::advance_grace_plain`]) — the
//!   conservative rendering of "after two epoch advances". The seeded bug
//!   ([`ModelPoolStack::immediate_reuse`]) recycles straight into the cache,
//!   which is exactly the reuse-before-grace hazard `Guard::defer_recycle`
//!   exists to prevent: a parked pop can CAS against a node that was
//!   recycled and re-published under it (A → B → A), splicing stale state
//!   into the structure.
//! - [`ModelOverflow`] — the pool's cross-thread overflow stack: a Treiber
//!   stack of spill segments. The faithful variant mirrors the real
//!   **detach-all** refill: one `swap` takes the whole chain, the refiller
//!   keeps the head segment and re-pushes the rest — no overflow step ever
//!   reads a chain word of a segment the thread does not exclusively own.
//!   The seeded bug ([`ModelOverflow::stale_pop`]) is the superseded
//!   pop-one protocol: it reads the head segment's chain word *before*
//!   winning the pop CAS, so a segment popped and re-pushed while that
//!   refiller is parked makes its CAS succeed with a stale chain word,
//!   splicing a segment another thread still owns back into the overflow —
//!   the hazard (modeled here as double ownership; in the real code the
//!   stale read itself targets memory whose new owner may already be
//!   overwriting or freeing it) that motivated detach-all.
//!
//! As everywhere in [`crate::models`], cache/limbo bookkeeping that the real
//! code keeps in thread-local storage (invisible to other threads) is
//! modeled with mutexes and takes no scheduled step; every shared atomic of
//! the real hot path is an `_ord` operation with the real code's orderings,
//! so the same models explore soundly under sequential consistency,
//! [`crate::Config::store_buffer`], and [`crate::Config::relaxed`].

use std::sync::atomic::AtomicBool;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
use std::sync::{Arc, Mutex};

use crate::arena::NIL;
use crate::atomic::Atomic;
use crate::runtime;

/// A reusable stack node: payload and link are atomics because, unlike the
/// append-only [`crate::Arena`], a recycled node's fields are overwritten.
struct PoolNode {
    value: Atomic<u64>,
    next: Atomic<usize>,
}

/// A Treiber stack over a recycling node pool; see the module docs.
///
/// Step structure (matching `TreiberStack::push_in`/`pop_in` plus
/// `RawPool::acquire`/`recycle`):
/// - `alloc`: one scheduled write step for the acquire (like `Arena::alloc`),
///   then plain re-initialization stores (pre-publication memory).
/// - push: S1 `top.load(Acquire)`; plain `next` store; S2
///   `top.compare_exchange(top, new, Release, Relaxed)`.
/// - pop: S1 `top.load(Acquire)`; S2 `next.load(Relaxed)`; S3
///   `top.compare_exchange(top, next, Release, Relaxed)`; then the retire —
///   limbo (faithful) or straight back to the cache (seeded bug).
pub struct ModelPoolStack {
    top: Atomic<usize>,
    nodes: Mutex<Vec<Arc<PoolNode>>>,
    /// Reusable node indices — the model of the per-thread cache plus the
    /// overflow (TLS and `Vec` operations in the real code: not steps).
    cache: Mutex<Vec<usize>>,
    /// Retired nodes still inside their grace period.
    limbo: Mutex<Vec<usize>>,
    /// `true` = faithful (retire to limbo); `false` = seeded bug (retire
    /// straight to the cache). An atomic — *not* a modeled step, just twin
    /// configuration — because [`ModelPoolStack::pop_n_guard_dropped`]
    /// flips it mid-run to model a guard released in the middle of a batch.
    grace: AtomicBool,
}

impl ModelPoolStack {
    /// The faithful model: recycled nodes wait out the grace period.
    pub fn new() -> Self {
        Self::with_grace(true)
    }

    /// The seeded bug: a popped node is reusable immediately — no grace
    /// period. Reuse is FIFO (oldest freed first), the adversarial order
    /// that exposes the hazard in the smallest scenario; *any* order is
    /// unsound without grace, the real pool's LIFO included.
    pub fn immediate_reuse() -> Self {
        Self::with_grace(false)
    }

    fn with_grace(grace: bool) -> Self {
        Self {
            top: Atomic::new(NIL),
            nodes: Mutex::new(Vec::new()),
            cache: Mutex::new(Vec::new()),
            limbo: Mutex::new(Vec::new()),
            grace: AtomicBool::new(grace),
        }
    }

    fn grace_on(&self) -> bool {
        self.grace.load(Relaxed)
    }

    fn get(&self, idx: usize) -> Arc<PoolNode> {
        Arc::clone(&self.nodes.lock().unwrap_or_else(|e| e.into_inner())[idx])
    }

    /// Mirrors `RawPool::acquire` + node init: one scheduled step for the
    /// acquire, then plain stores — the block is exclusively owned (or so
    /// the buggy variant wrongly assumes) until the publish CAS.
    fn alloc(&self, value: u64) -> usize {
        runtime::step_write();
        let reused = {
            let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            if cache.is_empty() {
                None
            } else if self.grace_on() {
                cache.pop() // LIFO, like the real `Vec` cache
            } else {
                Some(cache.remove(0)) // adversarial FIFO (see `immediate_reuse`)
            }
        };
        match reused {
            Some(idx) => {
                let node = self.get(idx);
                node.value.store_plain(value);
                node.next.store_plain(NIL);
                idx
            }
            None => {
                let mut nodes = self.nodes.lock().unwrap_or_else(|e| e.into_inner());
                nodes.push(Arc::new(PoolNode {
                    value: Atomic::new(value),
                    next: Atomic::new(NIL),
                }));
                nodes.len() - 1
            }
        }
    }

    /// Mirrors the pooled `TreiberStack::push`.
    pub fn push(&self, value: u64) {
        let idx = self.alloc(value);
        let node = self.get(idx);
        loop {
            // S1: `self.top.load(Acquire)`.
            let top = self.top.load_ord(Acquire);
            // Pre-publication `new.next.store(top, Relaxed)`: not a step.
            node.next.store_plain(top);
            // S2: `self.top.compare_exchange(top, new, Release, Relaxed)`.
            if self
                .top
                .compare_exchange_ord(top, idx, Release, Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Mirrors the pooled `TreiberStack::pop`: the winning CAS is followed
    /// by the retire — `defer_recycle` in the real code.
    pub fn pop(&self) -> Option<u64> {
        loop {
            // S1: `self.top.load(Acquire)`.
            let top = self.top.load_ord(Acquire);
            if top == NIL {
                return None;
            }
            let node = self.get(top);
            // S2: `top_ref.next.load(Relaxed)`.
            let next = node.next.load_ord(Relaxed);
            // S3: `self.top.compare_exchange(top, next, Release, Relaxed)`.
            if self
                .top
                .compare_exchange_ord(top, next, Release, Relaxed)
                .is_ok()
            {
                let value = node.value.load_plain();
                let retire_to = if self.grace_on() {
                    &self.limbo
                } else {
                    &self.cache
                };
                retire_to
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(top);
                return Some(value);
            }
        }
    }

    /// Mirrors the pooled `TreiberStack::push_n`: one guard pins the whole
    /// batch, each element is an ordinary push. The single pin is invisible
    /// to the model (a guard adds no shared step), so the batch is simply
    /// the element loop — which is exactly the claim under test: batching
    /// changes amortization, not the protocol.
    pub fn push_n(&self, values: &[u64]) {
        for &value in values {
            self.push(value);
        }
    }

    /// Mirrors the pooled `TreiberStack::pop_n`: one guard pins the whole
    /// batch; pops stop at `n` elements or empty. Every retire of the batch
    /// stays grace-gated behind that one guard.
    pub fn pop_n(&self, n: usize) -> Vec<u64> {
        let mut out = Vec::new();
        for _ in 0..n {
            match self.pop() {
                Some(value) => out.push(value),
                None => break,
            }
        }
        out
    }

    /// The partial-batch seeded twin: the guard is dropped after the first
    /// element, as if `pop_n` re-pinned per element — from then on **every**
    /// retire in the structure (any thread) recycles immediately, modeling
    /// nodes whose grace period ended while this batch still holds stack
    /// snapshots from before the drop. The parked remainder of the batch can
    /// then CAS against a recycled-and-republished node (A → B → A) and
    /// resurrect a stale tail.
    pub fn pop_n_guard_dropped(&self, n: usize) -> Vec<u64> {
        let mut out = Vec::new();
        for _ in 0..n {
            match self.pop() {
                Some(value) => out.push(value),
                None => break,
            }
            // Seeded bug: the batch guard dies with the first element.
            self.grace.store(false, Relaxed);
        }
        out
    }

    /// Models the epoch collector after every pre-retirement guard has
    /// unpinned: limbo drains into the reusable cache. Single-threaded use
    /// only (between exploration phases or in checks), which is what makes
    /// the faithful model *conservative* — during exploration a retired
    /// node is never reused at all, just as the real collector never
    /// recycles a node some pinned thread may still reach.
    pub fn advance_grace_plain(&self) {
        let mut limbo = self.limbo.lock().unwrap_or_else(|e| e.into_inner());
        self.cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend(limbo.drain(..));
    }

    /// Post-check helper: drains remaining elements top-down without
    /// scheduling (single-threaded use only).
    pub fn drain_plain(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cursor = self.top.load_plain();
        while cursor != NIL {
            let node = self.get(cursor);
            out.push(node.value.load_plain());
            cursor = node.next.load_plain();
        }
        out
    }

    /// Post-check helper: `(live-in-stack, cached, in-limbo, ever-created)`
    /// node counts for the handout invariant — every node is in exactly one
    /// place.
    pub fn accounting_plain(&self) -> (usize, usize, usize, usize) {
        let mut live = 0;
        let mut cursor = self.top.load_plain();
        while cursor != NIL {
            live += 1;
            cursor = self.get(cursor).next.load_plain();
        }
        let cached = self.cache.lock().unwrap_or_else(|e| e.into_inner()).len();
        let limbo = self.limbo.lock().unwrap_or_else(|e| e.into_inner()).len();
        let created = self.nodes.lock().unwrap_or_else(|e| e.into_inner()).len();
        (live, cached, limbo, created)
    }
}

impl Default for ModelPoolStack {
    fn default() -> Self {
        Self::new()
    }
}

/// Segment-index sentinel for an empty overflow.
pub const SEG_NONE: usize = usize::MAX;

/// One spill segment: only its chain word matters to the protocol (the
/// real segment's `word1`; the blocks hanging off `word0` are inert here).
struct Seg {
    next: Atomic<usize>,
}

/// The pool's overflow stack: spill segments behind a plain head index —
/// see the module docs.
///
/// Step structure (matching `RawPool::push_segments`/`refill`):
/// - push: W1 `overflow.load(Relaxed)`; W2 `write_word1(tail, head)` — a
///   plain store in the faithful protocol (pre-publication memory no other
///   thread reads; the stale-pop twin schedules it `Relaxed` instead,
///   because *its* parked poppers do read it concurrently); W3
///   `overflow.compare_exchange(head, chain, Release, Relaxed)`.
/// - faithful pop (detach-all): R1 `overflow.load(Relaxed)` empty check;
///   R2 `overflow.swap(null, Acquire)` — the whole chain detaches before
///   any chain word is read, so the walk, the kept head segment, and the
///   re-push of the remainder all touch exclusively owned memory (plain
///   reads, then the push steps above).
/// - stale pop (seeded bug, the superseded protocol): R1
///   `overflow.load(Acquire)`; R2 `read_word1(seg)` — reads a segment the
///   head may no longer own; R3 `overflow.compare_exchange(cur, next,
///   Acquire, Relaxed)`, which can succeed against a re-pushed head and
///   splice the stale R2 value.
pub struct ModelOverflow {
    head: Atomic<usize>,
    segs: Vec<Seg>,
    /// `true` = faithful (detach-all refill); `false` = seeded bug (pop-one
    /// with a pre-CAS chain-word read).
    detach_all: bool,
}

impl ModelOverflow {
    /// The faithful model with `segments` pre-created (none pushed yet).
    pub fn new(segments: usize) -> Self {
        Self::with_protocol(segments, true)
    }

    /// The seeded bug: the superseded pop-one protocol, which reads the
    /// head segment's chain word before winning the pop CAS; a concurrent
    /// pop + re-push makes the CAS succeed with that stale word and splice
    /// a segment another thread owns back into the overflow.
    pub fn stale_pop(segments: usize) -> Self {
        Self::with_protocol(segments, false)
    }

    fn with_protocol(segments: usize, detach_all: bool) -> Self {
        assert!(segments < SEG_NONE);
        Self {
            head: Atomic::new(SEG_NONE),
            segs: (0..segments)
                .map(|_| Seg {
                    next: Atomic::new(SEG_NONE),
                })
                .collect(),
            detach_all,
        }
    }

    /// Mirrors `RawPool::push_segment`: publishes segment `idx`, which the
    /// caller must own exclusively.
    pub fn push(&self, idx: usize) {
        self.push_chain(idx, idx);
    }

    /// Mirrors `RawPool::push_segments`: publishes the exclusively owned
    /// chain `chain..=tail` with one CAS.
    fn push_chain(&self, chain: usize, tail: usize) {
        loop {
            // W1: `self.overflow.load(Relaxed)`.
            let head = self.head.load_ord(Relaxed);
            // W2: `write_word1(tail, head)` — see struct docs for why the
            // faithful protocol may keep this plain and the bug twin not.
            if self.detach_all {
                self.segs[tail].next.store_plain(head);
            } else {
                self.segs[tail].next.store_ord(head, Relaxed);
            }
            // W3: publish with Release; failure value discarded (Relaxed).
            if self
                .head
                .compare_exchange_ord(head, chain, Release, Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Mirrors `RawPool::refill`'s segment pop: returns the index of the
    /// segment kept, or `None` when the overflow is empty (including the
    /// detach-all window where another refiller holds the whole chain and
    /// has not yet pushed the remainder back — the real code's allocator
    /// miss).
    pub fn pop(&self) -> Option<usize> {
        if self.detach_all {
            // R1: `self.overflow.load(Relaxed)` empty check.
            if self.head.load_ord(Relaxed) == SEG_NONE {
                return None;
            }
            // R2: `self.overflow.swap(null, Acquire)` — detach everything.
            let seg = self.head.swap_ord(SEG_NONE, Acquire);
            if seg == SEG_NONE {
                return None; // lost the race to another refiller
            }
            // The chain is exclusively ours: plain reads, like the real
            // `read_word1` on owned memory.
            let rest = self.segs[seg].next.load_plain();
            if rest != SEG_NONE {
                let mut tail = rest;
                loop {
                    let next = self.segs[tail].next.load_plain();
                    if next == SEG_NONE {
                        break;
                    }
                    tail = next;
                }
                self.push_chain(rest, tail);
            }
            return Some(seg);
        }
        loop {
            // R1: `self.overflow.load(Acquire)`.
            let cur = self.head.load_ord(Acquire);
            if cur == SEG_NONE {
                return None;
            }
            // R2: `read_word1(seg)` — may read a segment the head no longer
            // owns: the seeded hazard.
            let next = self.segs[cur].next.load_ord(Relaxed);
            // R3: the CAS compares only the head index, so an A→B→A
            // re-push lets it succeed and publish the stale R2 value.
            if self
                .head
                .compare_exchange_ord(cur, next, Acquire, Relaxed)
                .is_ok()
            {
                return Some(cur);
            }
        }
    }

    /// Post-check helper: segment indices still chained in the overflow,
    /// head first (single-threaded use only).
    pub fn drain_plain(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cursor = self.head.load_plain();
        while cursor != SEG_NONE {
            out.push(cursor);
            cursor = self.segs[cursor].next.load_plain();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_stack_single_threaded_lifo_and_reuse() {
        let s = ModelPoolStack::new();
        s.push(1);
        s.push(2);
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
        // Retired nodes sit in limbo until grace advances…
        let (live, cached, limbo, created) = s.accounting_plain();
        assert_eq!((live, cached, limbo, created), (0, 0, 2, 2));
        // …after which pushes reuse them instead of creating new nodes.
        s.advance_grace_plain();
        s.push(3);
        s.push(4);
        let (live, cached, limbo, created) = s.accounting_plain();
        assert_eq!((live, cached, limbo, created), (2, 0, 0, 2));
        assert_eq!(s.drain_plain(), vec![4, 3]);
    }

    #[test]
    fn immediate_reuse_single_threaded_behaves() {
        // Absent interference the bug is invisible — that is the point.
        let s = ModelPoolStack::immediate_reuse();
        s.push(1);
        s.push(2);
        assert_eq!(s.pop(), Some(2));
        s.push(3); // reuses node of 2 immediately
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
        let (_, _, _, created) = s.accounting_plain();
        assert_eq!(created, 2, "the third push reused a freed node");
    }

    #[test]
    fn overflow_single_threaded_round_trip() {
        let o = ModelOverflow::new(3);
        o.push(0);
        o.push(1);
        o.push(2);
        assert_eq!(o.drain_plain(), vec![2, 1, 0]);
        assert_eq!(o.pop(), Some(2));
        assert_eq!(o.pop(), Some(1));
        o.push(1);
        assert_eq!(o.pop(), Some(1));
        assert_eq!(o.pop(), Some(0));
        assert_eq!(o.pop(), None);
    }
}
