//! Property-based tests: the concurrent objects agree with sequential models
//! and with their lock-based counterparts under arbitrary operation mixes.

use lfrt_lockfree::{
    CasRegister, ConcurrentQueue, ConcurrentStack, LockFreeQueue, LockedQueue, LockedStack,
    TreiberStack,
};
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Debug, Clone)]
enum Op {
    Push(u32),
    Pop,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![any::<u32>().prop_map(Op::Push), Just(Op::Pop)],
        0..200,
    )
}

proptest! {
    /// The lock-free queue behaves exactly like a VecDeque when used
    /// sequentially, for any operation mix.
    #[test]
    fn lockfree_queue_matches_model(ops in ops()) {
        let q = LockFreeQueue::new();
        let mut model = VecDeque::new();
        for op in &ops {
            match op {
                Op::Push(v) => {
                    q.enqueue(*v);
                    model.push_back(*v);
                }
                Op::Pop => prop_assert_eq!(q.dequeue(), model.pop_front()),
            }
            prop_assert_eq!(q.is_empty(), model.is_empty());
        }
        // Drain fully: remaining contents agree.
        while let Some(expected) = model.pop_front() {
            prop_assert_eq!(q.dequeue(), Some(expected));
        }
        prop_assert_eq!(q.dequeue(), None);
    }

    /// Lock-free and locked queues are observationally equivalent.
    #[test]
    fn queues_agree(ops in ops()) {
        let lf = LockFreeQueue::new();
        let lk = LockedQueue::new();
        for op in &ops {
            match op {
                Op::Push(v) => {
                    ConcurrentQueue::enqueue(&lf, *v);
                    ConcurrentQueue::enqueue(&lk, *v);
                }
                Op::Pop => prop_assert_eq!(
                    ConcurrentQueue::dequeue(&lf),
                    ConcurrentQueue::dequeue(&lk)
                ),
            }
        }
    }

    /// The Treiber stack behaves exactly like a Vec when used sequentially.
    #[test]
    fn treiber_stack_matches_model(ops in ops()) {
        let s = TreiberStack::new();
        let mut model = Vec::new();
        for op in &ops {
            match op {
                Op::Push(v) => {
                    s.push(*v);
                    model.push(*v);
                }
                Op::Pop => prop_assert_eq!(s.pop(), model.pop()),
            }
            prop_assert_eq!(s.is_empty(), model.is_empty());
        }
    }

    /// Lock-free and locked stacks are observationally equivalent.
    #[test]
    fn stacks_agree(ops in ops()) {
        let lf = TreiberStack::new();
        let lk = LockedStack::new();
        for op in &ops {
            match op {
                Op::Push(v) => {
                    ConcurrentStack::push(&lf, *v);
                    ConcurrentStack::push(&lk, *v);
                }
                Op::Pop => prop_assert_eq!(
                    ConcurrentStack::pop(&lf),
                    ConcurrentStack::pop(&lk)
                ),
            }
        }
    }

    /// Register updates compose: applying a sequence of deltas lands on the
    /// sum, and attempts always cover successes.
    #[test]
    fn register_updates_compose(deltas in proptest::collection::vec(0u64..1_000, 0..100)) {
        let r = CasRegister::new(0);
        for &d in &deltas {
            r.update(|v| v + d);
        }
        prop_assert_eq!(r.load(), deltas.iter().sum::<u64>());
        let snap = r.stats().snapshot();
        prop_assert_eq!(snap.successes(), deltas.len() as u64);
        prop_assert!(snap.attempts >= snap.retries);
    }
}

/// Dropping a partially drained queue under concurrent churn does not lose or
/// double-free elements (exercised with boxed payloads so sanitizers bite).
#[test]
fn queue_drop_under_churn() {
    use std::sync::Arc;
    for _ in 0..20 {
        let q = Arc::new(LockFreeQueue::new());
        let pusher = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..500 {
                    q.enqueue(Box::new(i));
                }
            })
        };
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut n = 0;
                for _ in 0..200 {
                    if q.dequeue().is_some() {
                        n += 1;
                    }
                }
                n
            })
        };
        pusher.join().expect("pusher panicked");
        popper.join().expect("popper panicked");
        drop(q); // remaining boxes freed exactly once
    }
}
