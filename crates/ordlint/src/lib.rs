//! Memory-ordering lint pass over the workspace's atomics.
//!
//! Reviewing the `Ordering` argument of every atomic access by hand is the
//! weakest link in a lock-free codebase: the SC interleaving explorer
//! (`lfrt-interleave` before its store-buffer mode) cannot see
//! weak-memory bugs, and nothing machine-checked watched the orderings
//! themselves. This crate closes that gap *statically*:
//!
//! 1. [`scan`] inventories every atomic access site whose arguments carry a
//!    literal `Ordering` token — load/store/swap/CAS/fetch and the `_ord`
//!    twins `lfrt-interleave`'s models use — with file, line, enclosing
//!    function, and normalized receiver.
//! 2. [`graph`] groups sites per file into a publication graph (which
//!    receivers are written where, read where, at which ordering).
//! 3. [`rules`] applies six local heuristics (ORD001–ORD006) over a
//!    forward-textual [`dataflow`] approximation.
//! 4. [`baseline`] matches the findings against the checked-in
//!    `ordlint.toml`; intentional patterns carry a written justification,
//!    and both unbaselined findings *and* stale entries fail the run.
//!
//! The companion dynamic check is `lfrt-interleave`'s
//! `MemoryMode::StoreBuffer`: what a rule merely suspects, a store-buffer
//! schedule can confirm with a replayable counterexample (see
//! `crates/interleave/tests/weak_memory.rs` and DESIGN.md §6b).
//!
//! Run it as `cargo run -p lfrt-ordlint` (add `--json <path>` for the CI
//! artifact, `--list` for the full inventory).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod dataflow;
pub mod graph;
pub mod report;
pub mod rules;
pub mod scan;
/// Comment/string blanking and [`source::SourceFile`], shared with
/// `lfrt-progress` via `lfrt-srcscan`.
pub use lfrt_srcscan::source;

use std::io;
use std::path::{Path, PathBuf};

use baseline::MatchResult;
use graph::GraphEntry;
use rules::Finding;
use scan::Site;
use source::SourceFile;

/// Everything one run produces, pre-baseline-matching included.
#[derive(Debug)]
pub struct Analysis {
    /// Scan root as given on the command line.
    pub root: String,
    /// Relative paths of every scanned file.
    pub files: Vec<String>,
    /// Every qualifying site, as (file, site), in scan order.
    pub sites: Vec<(String, Site)>,
    /// Publication graph over all files.
    pub graph: Vec<GraphEntry>,
    /// Baseline match outcome.
    pub matched: MatchResult,
}

/// Scan roots inside a workspace checkout: the root package's `src/` plus
/// every crate's `src/` and `benches/`, plus `vendor/crossbeam/src`. Most
/// vendored stand-ins and all `tests/` directories are deliberately out of
/// scope — vendor code usually mirrors external crates' published APIs
/// (orderings arrive in variables there anyway), and test code exercises
/// odd orderings on purpose. The vendored `crossbeam` is the exception:
/// since it grew a real epoch reclamation scheme (global-epoch/record
/// protocol with its own fence pairing), its orderings are first-party
/// lock-free algorithm code and get the same scrutiny as `crates/`.
fn workspace_dirs(root: &Path) -> Vec<PathBuf> {
    let mut dirs = vec![root.join("src")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut crates: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crates.sort();
        for c in crates {
            dirs.push(c.join("src"));
            dirs.push(c.join("benches"));
        }
    }
    dirs.push(root.join("vendor").join("crossbeam").join("src"));
    dirs.retain(|d| d.is_dir());
    dirs
}

/// Loads every source file under `root`.
///
/// A workspace checkout (a `crates/` directory exists) is scanned through
/// [`workspace_dirs`]; any other root — a fixture directory in tests — is
/// walked recursively for `.rs` files.
///
/// # Errors
///
/// Propagates I/O errors from directory walks and file reads.
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    if root.join("crates").is_dir() {
        lfrt_srcscan::walk::collect_dirs(root, &workspace_dirs(root))
    } else {
        lfrt_srcscan::walk::collect_recursive(root)
    }
}

/// Scans `root` and applies the rules; the result still needs
/// [`baseline::apply`] (see [`analyze_with_baseline`]).
///
/// # Errors
///
/// Propagates I/O errors from [`collect_sources`].
pub fn analyze(root: &Path) -> io::Result<(Analysis, Vec<Finding>)> {
    let sources = collect_sources(root)?;
    let mut analysis = Analysis {
        root: root.display().to_string(),
        files: Vec::new(),
        sites: Vec::new(),
        graph: Vec::new(),
        matched: MatchResult::default(),
    };
    let mut findings = Vec::new();
    for sf in &sources {
        let scanned = scan::scan_file(sf);
        findings.extend(rules::run_rules(sf, &scanned));
        analysis
            .graph
            .extend(graph::publication_graph(&sf.rel_path, &scanned));
        analysis
            .sites
            .extend(scanned.sites.into_iter().map(|s| (sf.rel_path.clone(), s)));
        analysis.files.push(sf.rel_path.clone());
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok((analysis, findings))
}

/// Full pipeline: scan, rules, baseline match.
///
/// `baseline_text` is the content of `ordlint.toml`; pass `""` for an
/// empty baseline.
///
/// # Errors
///
/// I/O errors from the scan, or the baseline parse error string.
pub fn analyze_with_baseline(root: &Path, baseline_text: &str) -> Result<Analysis, String> {
    let entries = baseline::parse(baseline_text)?;
    let (mut analysis, findings) = analyze(root).map_err(|e| format!("scan failed: {e}"))?;
    analysis.matched = baseline::apply(findings, &entries);
    Ok(analysis)
}

/// The workspace root this crate was built in (two levels above the crate
/// manifest) — the default `--root`.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}
