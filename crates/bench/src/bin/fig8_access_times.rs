//! **Figure 8** — lock-based (`r`) and lock-free (`s`) shared-object access
//! times under an increasing number of shared objects, 10 tasks.
//!
//! The paper measured both on QNX Neutrino: `s` is the cost of a
//! Michael–Scott queue operation; `r` is the cost of going through
//! lock-based RUA's resource-sharing machinery — the lock operation itself
//! plus the scheduler activations that every lock and unlock request
//! triggers, whose dependency-chain work grows as jobs hold and wait on more
//! objects.
//!
//! Here both are measured in real wall-clock nanoseconds on the host:
//!
//! * `s(k)`: mean latency of a lock-free queue op with 10 threads hammering
//!   `k` queues;
//! * `r(k)`: mean latency of a mutex queue op under the same contention,
//!   plus two invocations (lock + unlock event) of `RuaLockBased::schedule`
//!   over a 10-job population whose blocking chains deepen with `k` —
//!   mirroring how more shared objects entangle more jobs.
//!
//! Expected shape (paper): `r ≫ s`; `r` grows with the object count, `s`
//! stays nearly flat.
//!
//! All results of this experiment are host wall-clock measurements, so in
//! the JSON report they live under each point's `timing` section — nothing
//! here is part of the deterministic payload, and the sweep always runs on
//! one worker thread (overlapping timing runs would disturb each other).
//!
//! Usage: `cargo run -p lfrt-bench --release --bin fig8_access_times
//! [-- --samples 2000 --contention 10] [--json <path>] [--quick]`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use lfrt_bench::json::{self, Point, Report};
use lfrt_bench::runner::Sweep;
use lfrt_bench::stats::Summary;
use lfrt_bench::synth::SyntheticWorkload;
use lfrt_bench::{table, Args};
use lfrt_core::RuaLockBased;
use lfrt_lockfree::{ConcurrentQueue, LockFreeQueue, LockedQueue};
use lfrt_sim::UaScheduler;

const TASKS: usize = 10;

fn main() {
    let started = std::time::Instant::now();
    let args = Args::from_env();
    let trace = lfrt_bench::trace::Session::from_args(&args, "fig8_access_times");
    let quick = args.quick();
    let samples = args.get_u64("samples", if quick { 400 } else { 2_000 }) as usize;
    let contention = args.get_u64("contention", TASKS as u64) as usize;
    let object_counts: Vec<usize> = if quick {
        vec![1, 4, 10]
    } else {
        (1..=10).collect()
    };

    println!("# Figure 8: shared-object access times (host wall-clock)");
    println!("# contention threads = {contention}, samples per point = {samples}");

    // Wall-clock measurement: always one worker, whatever --threads says —
    // concurrent points would contend for the CPU and skew each other.
    let results = Sweep::new("fig8", object_counts.clone())
        .threads(1)
        .run(|&k| {
            let s = measure_queue_ops(
                (0..k).map(|_| LockFreeQueue::new()).collect::<Vec<_>>(),
                contention,
                samples,
            );
            let mutex_part = measure_queue_ops(
                (0..k).map(|_| LockedQueue::new()).collect::<Vec<_>>(),
                contention,
                samples,
            );
            let sched_part = measure_lock_path_scheduling(k, samples);
            (s, mutex_part, sched_part)
        });

    let mut report = Report::new(
        "fig8_access_times",
        "8",
        "Object access time vs shared objects",
    )
    .config("samples", samples)
    .config("contention_threads", contention)
    .config("num_tasks", TASKS);

    let mut rows = Vec::new();
    for (&k, (s, mutex_part, sched_part)) in object_counts.iter().zip(&results) {
        let r_mean = mutex_part.mean + 2.0 * sched_part.mean;
        let r_ci = (mutex_part.ci95.powi(2) + (2.0 * sched_part.ci95).powi(2)).sqrt();
        rows.push(vec![
            k.to_string(),
            s.display(0),
            format!("{r_mean:.0} ± {r_ci:.0}"),
            format!("{:.1}", r_mean / s.mean.max(1.0)),
        ]);
        report.points.push(Point {
            params: vec![("objects".into(), k.into())],
            seeds: Vec::new(),
            metrics: Vec::new(), // wall-clock only — see module docs
            timing: vec![
                ("s_ns".into(), (s).into()),
                ("r_mutex_ns".into(), (mutex_part).into()),
                ("r_sched_ns".into(), (sched_part).into()),
                ("r_ns_mean".into(), r_mean.into()),
                ("r_ns_ci95".into(), r_ci.into()),
                ("r_over_s".into(), (r_mean / s.mean.max(1.0)).into()),
            ],
        });
    }
    table::print(
        "Figure 8: object access time vs number of shared objects",
        &["objects", "s (lock-free, ns)", "r (lock-based, ns)", "r/s"],
        &rows,
    );
    println!("\nshape check: r >> s throughout; r grows with objects, s stays flat.");

    if let Some(path) = args.json_path() {
        let meta = json::RunMeta::capture(1, quick);
        json::write_reports(&path, &[report], meta, started).expect("write JSON report");
    }
    trace.finish(args.threads(), args.quick());
}

/// Mean per-op latency (ns) of `threads` workers performing
/// enqueue+dequeue pairs round-robin over the given queues.
fn measure_queue_ops<Q: ConcurrentQueue<u64> + 'static>(
    queues: Vec<Q>,
    threads: usize,
    samples: usize,
) -> Summary {
    let queues = Arc::new(queues);
    let stop = Arc::new(AtomicBool::new(false));
    // Background contention from threads-1 workers while one thread samples.
    std::thread::scope(|scope| {
        for w in 0..threads.saturating_sub(1) {
            let queues = Arc::clone(&queues);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut i = w;
                while !stop.load(Ordering::Relaxed) {
                    let q = &queues[i % queues.len()];
                    q.enqueue(i as u64);
                    let _ = q.dequeue();
                    i = i.wrapping_add(1);
                }
            });
        }
        let mut latencies = Vec::with_capacity(samples);
        // Warm up.
        for i in 0..1_000 {
            let q = &queues[i % queues.len()];
            q.enqueue(i as u64);
            let _ = q.dequeue();
        }
        for i in 0..samples {
            let q = &queues[i % queues.len()];
            let t0 = Instant::now();
            q.enqueue(i as u64);
            let _ = q.dequeue();
            let dt = t0.elapsed().as_nanos() as f64 / 2.0; // per op
            latencies.push(dt);
        }
        stop.store(true, Ordering::Relaxed);
        Summary::of(&latencies)
    })
}

/// Mean latency (ns) of one lock-based RUA scheduler invocation over a
/// 10-job population whose dependency chains deepen with the object count.
fn measure_lock_path_scheduling(objects: usize, samples: usize) -> Summary {
    let workload = SyntheticWorkload::new(TASKS);
    // More shared objects entangle more jobs per chain (capped at the task
    // count): with 1 object chains are short; with 10 they span every task.
    let chain_length = objects.clamp(1, TASKS);
    let ctx = workload.chained(TASKS, chain_length);
    let mut scheduler = RuaLockBased::new();
    // Warm up.
    for _ in 0..100 {
        let _ = scheduler.schedule(&ctx);
    }
    let mut latencies = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        let decision = scheduler.schedule(&ctx);
        let dt = t0.elapsed().as_nanos() as f64;
        std::hint::black_box(decision);
        latencies.push(dt);
    }
    Summary::of(&latencies)
}
