use crate::{ArrivalTrace, Uam};

/// Descriptive statistics of an arrival trace, for experiment reports.
///
/// # Examples
///
/// ```
/// use lfrt_uam::{ArrivalTrace, TraceStats};
///
/// let trace = ArrivalTrace::new(vec![0, 10, 10, 40]);
/// let stats = TraceStats::of(&trace).expect("non-empty trace");
/// assert_eq!(stats.count, 4);
/// assert_eq!(stats.min_gap, 0);
/// assert_eq!(stats.max_gap, 30);
/// assert!((stats.mean_gap - 40.0 / 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Number of arrivals.
    pub count: usize,
    /// First arrival time.
    pub first: u64,
    /// Last arrival time.
    pub last: u64,
    /// Smallest inter-arrival gap (0 for simultaneous arrivals).
    pub min_gap: u64,
    /// Largest inter-arrival gap.
    pub max_gap: u64,
    /// Mean inter-arrival gap.
    pub mean_gap: f64,
}

impl TraceStats {
    /// Summarizes `trace`; `None` if it is empty.
    pub fn of(trace: &ArrivalTrace) -> Option<Self> {
        let times = trace.times();
        let (&first, &last) = (times.first()?, times.last()?);
        let mut min_gap = u64::MAX;
        let mut max_gap = 0;
        for w in times.windows(2) {
            let gap = w[1] - w[0];
            min_gap = min_gap.min(gap);
            max_gap = max_gap.max(gap);
        }
        if times.len() == 1 {
            min_gap = 0;
        }
        let mean_gap = if times.len() > 1 {
            (last - first) as f64 / (times.len() - 1) as f64
        } else {
            0.0
        };
        Some(Self {
            count: times.len(),
            first,
            last,
            min_gap,
            max_gap,
            mean_gap,
        })
    }

    /// Burstiness against a UAM: the peak consecutive-window occupancy as a
    /// fraction of the allowed maximum `a` (1.0 = some window is saturated).
    pub fn peak_window_occupancy(trace: &ArrivalTrace, uam: &Uam) -> f64 {
        let w = uam.window();
        let times = trace.times();
        let mut peak = 0usize;
        let mut idx = 0;
        while idx < times.len() {
            let window_start = (times[idx] / w) * w;
            let window_end = window_start + w;
            let hi = times.partition_point(|&t| t < window_end);
            peak = peak.max(hi - idx);
            idx = hi;
        }
        peak as f64 / f64::from(uam.max_arrivals())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArrivalGenerator, BackToBackBurst, PeriodicArrivals};

    #[test]
    fn empty_trace_has_no_stats() {
        assert_eq!(TraceStats::of(&ArrivalTrace::empty()), None);
    }

    #[test]
    fn singleton_trace() {
        let s = TraceStats::of(&ArrivalTrace::new(vec![42])).expect("one arrival");
        assert_eq!((s.count, s.first, s.last), (1, 42, 42));
        assert_eq!((s.min_gap, s.max_gap), (0, 0));
        assert_eq!(s.mean_gap, 0.0);
    }

    #[test]
    fn periodic_trace_gaps_are_uniform() {
        let trace = PeriodicArrivals::new(100).generate(1_000);
        let s = TraceStats::of(&trace).expect("arrivals");
        assert_eq!(s.min_gap, 100);
        assert_eq!(s.max_gap, 100);
        assert!((s.mean_gap - 100.0).abs() < 1e-12);
    }

    #[test]
    fn burst_generators_saturate_their_windows() {
        let uam = Uam::new(1, 3, 100).expect("valid");
        let trace = BackToBackBurst::new(uam).generate(10_000);
        assert_eq!(TraceStats::peak_window_occupancy(&trace, &uam), 1.0);
        // A lonely arrival uses a third of the budget.
        let sparse = ArrivalTrace::new(vec![5]);
        assert!((TraceStats::peak_window_occupancy(&sparse, &uam) - 1.0 / 3.0).abs() < 1e-12);
    }
}
