use lfrt_sim::{Decision, JobId, SchedulerContext, UaScheduler};

use crate::ops::OpsCounter;

/// Earliest-critical-time-first: the classic EDF baseline.
///
/// EDF is optimal during underloads (it meets all critical times whenever
/// any algorithm can) and is the schedule RUA degenerates to for step TUFs
/// without object sharing during underloads. During overloads it thrashes,
/// which is exactly the contrast the UA schedulers exist to fix.
///
/// Cost: one sort, `O(n log n)` reported operations.
///
/// # Examples
///
/// ```
/// use lfrt_core::Edf;
/// use lfrt_sim::UaScheduler;
///
/// assert_eq!(Edf::new().name(), "edf");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Edf {
    _private: (),
}

impl Edf {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl UaScheduler for Edf {
    fn name(&self) -> &str {
        "edf"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        let mut ops = OpsCounter::new();
        let mut order: Vec<JobId> = ctx.jobs.iter().map(|j| j.id).collect();
        order.sort_by(|&a, &b| {
            ops.tick();
            let ka = ctx.job(a).map(|j| j.absolute_critical_time);
            let kb = ctx.job(b).map(|j| j.absolute_critical_time);
            ka.cmp(&kb).then(a.cmp(&b))
        });
        Decision {
            order,
            ops: ops.total(),
            aborts: Vec::new(),
        }
    }
}
