//! **§4.1 taxonomy table** — preemption behaviour by scheduler class
//! (static / job-level dynamic / fully dynamic), plus sojourn percentiles.
//!
//! One bursty UAM workload, five schedulers. The table reports scheduler
//! invocations, total preemptions, and the Lemma 1 ratio (preemptions per
//! invocation — necessarily ≤ 1), alongside AUR and sojourn percentiles.
//! Under overload the utility-accrual rows accrue visibly more utility
//! than the priority baselines, and every class respects Lemma 1.
//!
//! Usage: `cargo run -p lfrt-bench --release --bin taxonomy_table --
//! [--seed 3] [--load 0.8] [--json <path>] [--threads N] [--quick]`

use lfrt_bench::json::{self, Point, Report};
use lfrt_bench::runner::Sweep;
use lfrt_bench::{table, Args};
use lfrt_core::{Edf, Lbesa, Llf, Rm, RuaLockFree};
use lfrt_sim::workload::{ArrivalStyle, TufClass, WorkloadSpec};
use lfrt_sim::{sojourn_percentiles, Engine, SharingMode, SimConfig, SimOutcome};

const SCHEDULERS: [(&str, &str); 5] = [
    ("rm", "static"),
    ("edf", "job-level dynamic"),
    ("llf", "fully dynamic"),
    ("lbesa", "fully dynamic (UA)"),
    ("rua-lock-free", "fully dynamic (UA)"),
];

fn main() {
    let started = std::time::Instant::now();
    let args = Args::from_env();
    let trace = lfrt_bench::trace::Session::from_args(&args, "taxonomy_table");
    let quick = args.quick();
    let seed = args.get_u64("seed", 3);
    let load = args.get_f64("load", 1.3);
    let horizon = args.get_u64("horizon", if quick { 300_000 } else { 800_000 });

    let spec = WorkloadSpec {
        num_tasks: 8,
        num_objects: 4,
        accesses_per_job: 3,
        tuf_class: TufClass::Step,
        target_load: load,
        window_range: (8_000, 24_000),
        max_burst: 2,
        critical_time_frac: 0.9,
        arrival_style: ArrivalStyle::RandomUam { intensity: 3.0 },
        horizon,
        read_fraction: 0.0,
        seed,
    };
    println!("# §4.1 scheduler taxonomy: preemption behaviour by priority class");
    println!("# load {load}, seed {seed}, lock-free objects (s = 10 µs)");

    // One sweep point per scheduler, identical workload each.
    let outcomes = Sweep::new("taxonomy", SCHEDULERS.to_vec())
        .threads(args.threads())
        .run(|&(name, _)| -> SimOutcome {
            let (tasks, traces) = spec.build().expect("valid workload");
            let engine = Engine::new(
                tasks,
                traces,
                SimConfig::new(SharingMode::LockFree { access_ticks: 10 }),
            )
            .expect("valid engine");
            match name {
                "rm" => engine.run(Rm::new()),
                "edf" => engine.run(Edf::new()),
                "llf" => engine.run(Llf::new()),
                "lbesa" => engine.run(Lbesa::new()),
                _ => engine.run(RuaLockFree::new()),
            }
        });

    let mut report = Report::new(
        "taxonomy_table",
        "table:taxonomy",
        "Preemptions by scheduler class",
    )
    .config("seed", seed)
    .config("load", load)
    .config("horizon", horizon)
    .config("s_ticks", 10u64);

    let mut rows = Vec::new();
    for ((name, class), outcome) in SCHEDULERS.iter().zip(&outcomes) {
        let m = &outcome.metrics;
        assert!(
            m.preemptions() <= m.sched_invocations,
            "Lemma 1 violated by {name}"
        );
        let p = sojourn_percentiles(&outcome.records);
        let (p50, p99) = p.map_or((0, 0), |p| (p.p50, p.p99));
        let ratio = m.preemptions() as f64 / m.sched_invocations.max(1) as f64;
        rows.push(vec![
            (*name).to_string(),
            (*class).to_string(),
            m.sched_invocations.to_string(),
            m.preemptions().to_string(),
            format!("{ratio:.3}"),
            format!("{:.3}", m.aur()),
            p50.to_string(),
            p99.to_string(),
        ]);
        report.points.push(Point {
            params: vec![
                ("scheduler".into(), (*name).into()),
                ("class".into(), (*class).into()),
            ],
            seeds: vec![seed],
            metrics: vec![
                ("invocations".into(), m.sched_invocations.into()),
                ("preemptions".into(), m.preemptions().into()),
                ("preempt_per_invoke".into(), ratio.into()),
                ("aur".into(), m.aur().into()),
                ("p50_sojourn".into(), p50.into()),
                ("p99_sojourn".into(), p99.into()),
            ],
            timing: Vec::new(),
        });
    }
    table::print(
        "Preemptions by scheduler class (Lemma 1: preempt/invoke ≤ 1)",
        &[
            "scheduler",
            "class",
            "invocations",
            "preemptions",
            "preempt/invoke",
            "AUR",
            "p50 sojourn",
            "p99 sojourn",
        ],
        &rows,
    );
    println!("\nshape check: Lemma 1 holds for every class; under overload the UA rows bank more utility.");

    if let Some(path) = args.json_path() {
        let meta = json::RunMeta::capture(args.threads(), quick);
        json::write_reports(&path, &[report], meta, started).expect("write JSON report");
    }
    trace.finish(args.threads(), args.quick());
}
