//! Instrumented atomic cells: every operation is a scheduling yield point.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::runtime::{step_read, step_write, weak_session, WeakSession, MAX_THREADS};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The shared storage behind an [`Atomic`]. Kept behind an `Arc` so the
/// type-erased commit closures handed to the runtime's store buffers can
/// outlive the borrow of the cell that issued them.
struct Inner<T> {
    /// The globally visible value.
    main: Mutex<T>,
    /// Per model thread: values of this cell sitting in that thread's store
    /// buffer, oldest first. The runtime's `BufferedStore` entries for this
    /// cell correspond 1:1 and in order, so each commit pops the front.
    pending: Mutex<Vec<VecDeque<T>>>,
    /// Superseded values, oldest first, kept `window` deep under
    /// [`crate::MemoryMode::Relaxed`] (empty otherwise): `history[len - a]`
    /// is the value `a` versions older than `main`. Tracks the runtime's
    /// per-location version counter in lockstep — every commit is
    /// serialized through the controller, and exploration factories build
    /// fresh cells per execution, so entries never leak across runs.
    history: Mutex<Vec<T>>,
    /// `(run id, location id)` assigned by the current store-buffer
    /// execution; the run id guard stops ids leaking across executions.
    loc: Mutex<Option<(u64, usize)>>,
}

/// A model atomic cell. Each `load`/`store`/`swap`/`compare_exchange`/
/// `fetch_add` is one *step* of the owning model thread: the scheduler
/// decides the interleaving of these operations across threads, which is
/// exactly the granularity at which lock-free algorithms differ.
///
/// The ordering-less legacy operations behave as `SeqCst`. The `_ord`
/// variants declare the `std::sync::atomic::Ordering` the mirrored real code
/// uses; under [`crate::MemoryMode::Sc`] the declaration is recorded but
/// changes nothing, while under [`crate::MemoryMode::StoreBuffer`] `Relaxed`
/// and `Release` stores sit in a per-thread store buffer until a flush step
/// commits them (see `MemoryMode`'s docs for the full visibility rules).
///
/// Outside a model execution the operations behave like ordinary
/// sequentially-consistent atomics with no yielding, so models remain usable
/// from plain unit tests.
pub struct Atomic<T> {
    inner: Arc<Inner<T>>,
}

impl<T: Copy> Atomic<T> {
    /// A cell holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: Arc::new(Inner {
                main: Mutex::new(value),
                pending: Mutex::new((0..MAX_THREADS).map(|_| VecDeque::new()).collect()),
                history: Mutex::new(Vec::new()),
                loc: Mutex::new(None),
            }),
        }
    }

    /// The value this thread observes: its own newest buffered store to this
    /// cell if one exists (store-to-load forwarding), else global memory.
    fn observe(&self, session: Option<&WeakSession>) -> T {
        if let Some(session) = session {
            let pending = lock(&self.inner.pending);
            if let Some(v) = pending[session.tid()].back() {
                return *v;
            }
        }
        *lock(&self.inner.main)
    }

    /// Replaces the globally visible value, pushing the superseded one into
    /// the bounded stale-value history when the mode keeps one (`window` >
    /// 0, i.e. [`crate::MemoryMode::Relaxed`]). An associated function so
    /// the type-erased flush closures can commit through the `Arc`.
    fn commit_value(inner: &Inner<T>, value: T, window: usize) {
        let old = std::mem::replace(&mut *lock(&inner.main), value);
        if window > 0 {
            let mut history = lock(&inner.history);
            history.push(old);
            if history.len() > window {
                history.remove(0);
            }
        }
    }

    /// Commits `value` at this step (globally visible immediately — `SeqCst`
    /// stores and RMW writes) and records the version bump with the runtime
    /// when the mode keeps a stale window.
    fn commit_now(&self, session: Option<&WeakSession>, value: T) {
        let window = session.map_or(0, |s| s.window());
        Self::commit_value(&self.inner, value, window);
        if window > 0 {
            let session = session.expect("a stale window implies a session");
            session.committed(session.loc(&self.inner.loc));
        }
    }

    /// Applies the stale-set effect of an RMW's outcome ordering: an
    /// `Acquire`-class outcome drains the calling thread's stale set, like
    /// an acquire load.
    fn rmw_stale(session: Option<&WeakSession>, outcome: Ordering) {
        if let Some(s) = session {
            if s.window() > 0
                && matches!(
                    outcome,
                    Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
                )
            {
                s.drain_stale();
            }
        }
    }

    /// Reads the value. One step. Equivalent to `load_ord(SeqCst)`: under
    /// [`crate::MemoryMode::Relaxed`] the stale set drains first (a `SeqCst`
    /// load is acquire-class), so the freshest committed value is returned.
    pub fn load(&self) -> T {
        step_read();
        let session = weak_session();
        if let Some(s) = &session {
            if s.window() > 0 {
                s.drain_stale();
            }
        }
        self.observe(session.as_ref())
    }

    /// Writes the value. One step. Equivalent to `store_ord(value, SeqCst)`:
    /// under a store-buffer mode the issuing thread's buffer drains first and
    /// the store becomes globally visible at this step.
    pub fn store(&self, value: T) {
        step_write();
        let session = weak_session();
        if let Some(s) = &session {
            s.drain();
        }
        self.commit_now(session.as_ref(), value);
    }

    /// Replaces the value, returning the previous one. One step, `SeqCst`.
    pub fn swap(&self, value: T) -> T {
        step_write();
        let session = weak_session();
        if let Some(s) = &session {
            s.drain();
        }
        let prev = *lock(&self.inner.main);
        self.commit_now(session.as_ref(), value);
        Self::rmw_stale(session.as_ref(), Ordering::SeqCst);
        prev
    }

    /// Compare-and-swap: if the cell equals `current`, writes `new` and
    /// returns `Ok(current)`; otherwise returns `Err(actual)`. One step,
    /// whether it succeeds or fails — mirroring a hardware CAS. `SeqCst`.
    pub fn compare_exchange(&self, current: T, new: T) -> Result<T, T>
    where
        T: PartialEq,
    {
        step_write();
        let session = weak_session();
        if let Some(s) = &session {
            s.drain();
        }
        let actual = *lock(&self.inner.main);
        let result = if actual == current {
            self.commit_now(session.as_ref(), new);
            Ok(current)
        } else {
            Err(actual)
        };
        Self::rmw_stale(session.as_ref(), Ordering::SeqCst);
        result
    }

    /// Adds `rhs`, returning the previous value. One step, `SeqCst`.
    pub fn fetch_add(&self, rhs: T) -> T
    where
        T: std::ops::Add<Output = T>,
    {
        step_write();
        let session = weak_session();
        if let Some(s) = &session {
            s.drain();
        }
        let prev = *lock(&self.inner.main);
        self.commit_now(session.as_ref(), prev + rhs);
        Self::rmw_stale(session.as_ref(), Ordering::SeqCst);
        prev
    }

    /// Non-yielding read, for code that owns the cell exclusively by
    /// protocol: post-CAS payload reads, post-join invariant checks, drains.
    /// Mirrors the real implementations' non-atomic accesses to memory they
    /// have just won exclusive ownership of. Reads global memory only —
    /// never another thread's buffered stores.
    pub fn load_plain(&self) -> T {
        *lock(&self.inner.main)
    }

    /// Non-yielding write, for pre-publication initialization: stores that
    /// other threads cannot observe until a later release/CAS step publishes
    /// them (e.g. setting a new node's `next` before the push CAS). Writes
    /// global memory directly, bypassing any store buffer — a model that
    /// wants initialization to be *reorderable* must use
    /// [`Atomic::store_ord`] with `Relaxed` instead.
    pub fn store_plain(&self, value: T) {
        *lock(&self.inner.main) = value;
    }
}

/// The `_ord` operations buffer typed values inside runtime-owned closures,
/// hence the extra `Send + 'static` bounds (model values are `Copy` ids and
/// counters, so this costs nothing in practice).
impl<T: Copy + Send + 'static> Atomic<T> {
    /// Buffers one store of `value` in the issuing thread's store buffer.
    fn buffer(&self, session: &WeakSession, value: T, release: bool) {
        let loc = session.loc(&self.inner.loc);
        let tid = session.tid();
        let window = session.window();
        lock(&self.inner.pending)[tid].push_back(value);
        let inner = Arc::clone(&self.inner);
        session.buffer_store(
            loc,
            release,
            Box::new(move || {
                let v = lock(&inner.pending)[tid]
                    .pop_front()
                    .expect("runtime flushed a store this cell never buffered");
                Self::commit_value(&inner, v, window);
            }),
        );
    }

    /// Drains per the success-ordering class of a read-modify-write: a
    /// `Release`-or-stronger RMW does not overtake the store buffer (full
    /// drain); a `Relaxed`/`Acquire` RMW acts on coherent memory, so only
    /// this cell's own buffered stores must land first.
    fn rmw_drain(&self, session: &WeakSession, success: Ordering) {
        match success {
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst => session.drain(),
            Ordering::Relaxed | Ordering::Acquire => {
                session.drain_location(session.loc(&self.inner.loc));
            }
            _ => unreachable!(),
        }
    }

    /// Reads the value with a declared load ordering. One step.
    ///
    /// Under [`crate::MemoryMode::Sc`] and [`crate::MemoryMode::StoreBuffer`]
    /// the ordering does not change what the load returns (no load–load
    /// reordering there — see DESIGN.md §6b); the declaration exists so
    /// models document the real code faithfully. Under
    /// [`crate::MemoryMode::Relaxed`] a `Relaxed` load is eligible for
    /// stale-read decisions (it may return a value up to `window` versions
    /// old, within the thread's coherence floor), while an
    /// `Acquire`/`SeqCst` load drains the stale set and returns the
    /// freshest committed value. Loads always forward from the issuing
    /// thread's own buffered stores first.
    ///
    /// # Panics
    ///
    /// Panics on `Release`/`AcqRel`, which are invalid for loads (as in
    /// `std`).
    pub fn load_ord(&self, order: Ordering) -> T {
        assert!(
            !matches!(order, Ordering::Release | Ordering::AcqRel),
            "there is no such thing as a release load"
        );
        let session = weak_session();
        if let Some(s) = &session {
            if s.window() > 0 {
                if order == Ordering::Relaxed {
                    // Store-to-load forwarding wins over staleness: with an
                    // own buffered store pending, the load returns it.
                    let forwards = !lock(&self.inner.pending)[s.tid()].is_empty();
                    if !forwards {
                        let loc = s.loc(&self.inner.loc);
                        // The park itself: the explorer picks fresh (plain
                        // thread id) or one of the readable stale ages.
                        return match s.relaxed_load(loc) {
                            Some(age) => {
                                let history = lock(&self.inner.history);
                                history[history.len() - age]
                            }
                            None => *lock(&self.inner.main),
                        };
                    }
                } else {
                    // Acquire/SeqCst: drain the stale set, read fresh.
                    step_read();
                    s.drain_stale();
                    return self.observe(session.as_ref());
                }
            }
        }
        step_read();
        self.observe(session.as_ref())
    }

    /// Writes the value with a declared store ordering. One step.
    ///
    /// Under a store-buffer mode, `Relaxed` and `Release` stores are
    /// *buffered*: globally invisible until a later flush step commits them
    /// (`Release` only from the front of the buffer). `SeqCst` drains the
    /// buffer and commits immediately.
    ///
    /// # Panics
    ///
    /// Panics on `Acquire`/`AcqRel`, which are invalid for stores (as in
    /// `std`).
    pub fn store_ord(&self, value: T, order: Ordering) {
        assert!(
            !matches!(order, Ordering::Acquire | Ordering::AcqRel),
            "there is no such thing as an acquire store"
        );
        step_write();
        match weak_session() {
            Some(session) => match order {
                Ordering::SeqCst => {
                    session.drain();
                    self.commit_now(Some(&session), value);
                }
                Ordering::Release => self.buffer(&session, value, true),
                Ordering::Relaxed => self.buffer(&session, value, false),
                _ => unreachable!(),
            },
            None => *lock(&self.inner.main) = value,
        }
    }

    /// Replaces the value, returning the previous one, with a declared RMW
    /// ordering. One step; the written value is globally visible at this
    /// step (hardware RMWs do not sit in the store buffer, and always act
    /// on the latest value — RMWs are coherent even under
    /// [`crate::MemoryMode::Relaxed`]).
    pub fn swap_ord(&self, value: T, order: Ordering) -> T {
        step_write();
        let session = weak_session();
        if let Some(s) = &session {
            self.rmw_drain(s, order);
        }
        let prev = *lock(&self.inner.main);
        self.commit_now(session.as_ref(), value);
        Self::rmw_stale(session.as_ref(), order);
        prev
    }

    /// Compare-and-swap with declared success and failure orderings. One
    /// step either way. The failure ordering affects only the returned
    /// load's synchronization, which the store-buffer mode does not model;
    /// it is declared so the mirror matches the real call site (and so the
    /// lint layer can check the pair).
    ///
    /// # Panics
    ///
    /// Panics on a `Release`/`AcqRel` failure ordering (invalid, as in
    /// `std`).
    pub fn compare_exchange_ord(
        &self,
        current: T,
        new: T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<T, T>
    where
        T: PartialEq,
    {
        assert!(
            !matches!(failure, Ordering::Release | Ordering::AcqRel),
            "there is no such thing as a release failure ordering"
        );
        step_write();
        let session = weak_session();
        if let Some(s) = &session {
            self.rmw_drain(s, success);
        }
        let actual = *lock(&self.inner.main);
        let result = if actual == current {
            self.commit_now(session.as_ref(), new);
            Ok(current)
        } else {
            // The failed CAS still observed the latest value (RMWs are
            // coherent), so the thread's floor here rises to it.
            if let Some(s) = &session {
                if s.window() > 0 {
                    s.observed_latest(s.loc(&self.inner.loc));
                }
            }
            Err(actual)
        };
        let outcome = if result.is_ok() { success } else { failure };
        Self::rmw_stale(session.as_ref(), outcome);
        result
    }

    /// Adds `rhs`, returning the previous value, with a declared RMW
    /// ordering. One step; globally visible at this step.
    pub fn fetch_add_ord(&self, rhs: T, order: Ordering) -> T
    where
        T: std::ops::Add<Output = T>,
    {
        step_write();
        let session = weak_session();
        if let Some(s) = &session {
            self.rmw_drain(s, order);
        }
        let prev = *lock(&self.inner.main);
        self.commit_now(session.as_ref(), prev + rhs);
        Self::rmw_stale(session.as_ref(), order);
        prev
    }
}

/// A model memory fence with a declared ordering.
///
/// Under [`crate::MemoryMode::Sc`] (and outside model executions) this is a
/// no-op — sequential consistency already orders everything. Under a
/// store-buffer mode a `Release`-or-stronger fence is one write step that
/// drains the issuing thread's store buffer: everything stored before the
/// fence is globally visible before anything stored after it, which is the
/// guarantee the real fence provides (the model commits eagerly at the
/// fence, a conservative subset of the orderings real hardware allows — see
/// DESIGN.md §6b). Under [`crate::MemoryMode::StoreBuffer`] an `Acquire`
/// fence is a no-op because load–load reordering is not modeled there;
/// under [`crate::MemoryMode::Relaxed`] it is one read step that drains the
/// issuing thread's stale set (nothing read after the fence may be older
/// than what was current at it — the invalidate-queue flush). `AcqRel` and
/// `SeqCst` fences apply both effects in a single write step.
///
/// # Panics
///
/// Panics on `Relaxed`, which is invalid for fences (as in `std`).
pub fn fence(order: Ordering) {
    assert!(
        order != Ordering::Relaxed,
        "fence with Relaxed ordering is a no-op and invalid"
    );
    if let Some(session) = weak_session() {
        let releases = matches!(
            order,
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
        );
        let acquires = matches!(
            order,
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
        ) && session.window() > 0;
        if releases {
            step_write();
            session.drain();
            if acquires {
                session.drain_stale();
            }
        } else if acquires {
            step_read();
            session.drain_stale();
        }
    }
}

impl<T: Copy + fmt::Debug> fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Atomic").field(&self.load_plain()).finish()
    }
}

impl<T: Copy + Default> Default for Atomic<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaves_like_a_plain_cell_outside_models() {
        let a = Atomic::new(5u64);
        assert_eq!(a.load(), 5);
        a.store(6);
        assert_eq!(a.swap(7), 6);
        assert_eq!(a.compare_exchange(7, 8), Ok(7));
        assert_eq!(a.compare_exchange(7, 9), Err(8));
        assert_eq!(a.fetch_add(10), 8);
        assert_eq!(a.load(), 18);
    }

    #[test]
    fn plain_accessors_bypass_scheduling() {
        let a = Atomic::new(1u32);
        a.store_plain(2);
        assert_eq!(a.load_plain(), 2);
    }

    #[test]
    fn works_with_option_values() {
        let a = Atomic::new(None::<u64>);
        assert_eq!(a.swap(Some(3)), None);
        assert_eq!(a.load(), Some(3));
    }

    #[test]
    fn ord_variants_match_outside_models() {
        let a = Atomic::new(1u64);
        assert_eq!(a.load_ord(Ordering::Acquire), 1);
        a.store_ord(2, Ordering::Release);
        assert_eq!(a.swap_ord(3, Ordering::AcqRel), 2);
        assert_eq!(
            a.compare_exchange_ord(3, 4, Ordering::AcqRel, Ordering::Acquire),
            Ok(3)
        );
        assert_eq!(
            a.compare_exchange_ord(3, 5, Ordering::Relaxed, Ordering::Relaxed),
            Err(4)
        );
        assert_eq!(a.fetch_add_ord(6, Ordering::Relaxed), 4);
        assert_eq!(a.load_ord(Ordering::Relaxed), 10);
        fence(Ordering::SeqCst); // no-op outside models, must not panic
    }

    #[test]
    #[should_panic(expected = "release load")]
    fn release_load_is_rejected() {
        Atomic::new(0u64).load_ord(Ordering::Release);
    }

    #[test]
    #[should_panic(expected = "acquire store")]
    fn acquire_store_is_rejected() {
        Atomic::new(0u64).store_ord(1, Ordering::Acquire);
    }
}
