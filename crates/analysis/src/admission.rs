//! Admission control: a *sufficient* schedulability test assembled from the
//! paper's worst-case ingredients.
//!
//! For each task the test charges, within one critical-time window:
//!
//! * its own demand — compute `u_i`, object accesses `t_acc·m_i`, plus the
//!   discipline's contention term (`s·f_i` retries via Theorem 2, or
//!   `r·min(m_i, n_i)` blocking via the paper's §5);
//! * interference — the maximal number of jobs every other task can release
//!   in the window (`a_j(⌈C_i/W_j⌉+1)`, the Theorem 2 counting), each at
//!   its own worst-case demand.
//!
//! A task is *admitted* when that worst case still beats its critical time;
//! an admitted set therefore meets all critical times under any
//! work-conserving discipline. The test is conservative — real runs do far
//! better — but everything it admits is safe, which is what admission
//! control is for.

use lfrt_uam::Uam;

/// A task as seen by the admission test.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionTask {
    /// Arrival model `⟨l, a, W⟩`.
    pub uam: Uam,
    /// Critical time `C` in ticks.
    pub critical_time: u64,
    /// Compute time `u` (excluding accesses), ticks.
    pub compute: u64,
    /// Shared-object accesses `m` per job.
    pub accesses: u64,
}

/// The sharing discipline whose worst case the test charges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Discipline {
    /// Lock-free sharing with per-attempt access time `s`.
    LockFree {
        /// Access time `s` in ticks.
        access_ticks: u64,
    },
    /// Lock-based sharing with critical-section length `r`.
    LockBased {
        /// Access time `r` in ticks.
        access_ticks: u64,
    },
}

/// Per-task admission verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskVerdict {
    /// Conservative worst-case sojourn time, ticks.
    pub worst_sojourn: u64,
    /// The task's critical time.
    pub critical_time: u64,
    /// Whether `worst_sojourn < critical_time`.
    pub admitted: bool,
}

/// The outcome of [`admit`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionReport {
    /// Verdicts, indexed like the input tasks.
    pub per_task: Vec<TaskVerdict>,
}

impl AdmissionReport {
    /// Whether every task was admitted.
    pub fn all_admitted(&self) -> bool {
        self.per_task.iter().all(|v| v.admitted)
    }
}

/// Runs the sufficient schedulability test for `tasks` under `discipline`.
///
/// # Examples
///
/// ```
/// use lfrt_analysis::admission::{admit, AdmissionTask, Discipline};
/// use lfrt_uam::Uam;
///
/// # fn main() -> Result<(), lfrt_uam::UamError> {
/// let tasks = vec![
///     AdmissionTask { uam: Uam::new(1, 1, 100_000)?, critical_time: 90_000, compute: 1_000, accesses: 2 },
///     AdmissionTask { uam: Uam::new(1, 1, 100_000)?, critical_time: 90_000, compute: 1_000, accesses: 2 },
/// ];
/// let report = admit(&tasks, Discipline::LockFree { access_ticks: 10 });
/// assert!(report.all_admitted());
/// # Ok(())
/// # }
/// ```
pub fn admit(tasks: &[AdmissionTask], discipline: Discipline) -> AdmissionReport {
    let per_task = (0..tasks.len())
        .map(|i| {
            let worst = worst_sojourn(tasks, i, discipline);
            TaskVerdict {
                worst_sojourn: worst,
                critical_time: tasks[i].critical_time,
                admitted: worst < tasks[i].critical_time,
            }
        })
        .collect();
    AdmissionReport { per_task }
}

/// The Theorem 2 retry bound of task `i`, evaluated over `tasks`.
fn retry_bound(tasks: &[AdmissionTask], i: usize) -> u64 {
    let own = &tasks[i];
    3 * u64::from(own.uam.max_arrivals()) + 2 * interference_x(tasks, i)
}

/// `x_i = Σ_{j≠i} a_j(⌈C_i/W_j⌉+1)` — the per-window interference count.
fn interference_x(tasks: &[AdmissionTask], i: usize) -> u64 {
    let c = tasks[i].critical_time;
    tasks
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != i)
        .map(|(_, t)| u64::from(t.uam.max_arrivals()) * (c.div_ceil(t.uam.window()) + 1))
        .sum()
}

/// One job's worst-case processor demand under the discipline (excluding
/// interference from other tasks).
fn own_demand(tasks: &[AdmissionTask], i: usize, discipline: Discipline) -> u64 {
    let t = &tasks[i];
    match discipline {
        Discipline::LockFree { access_ticks } => {
            if t.accesses == 0 {
                // No accesses, no retries: nothing to interfere with.
                return t.compute;
            }
            t.compute + access_ticks * (t.accesses + retry_bound(tasks, i))
        }
        Discipline::LockBased { access_ticks } => {
            // n_i ≤ 2a_i + x_i jobs can block it, one critical section each,
            // capped at its own access count (§5 of the paper).
            let n = 2 * u64::from(t.uam.max_arrivals()) + interference_x(tasks, i);
            t.compute + access_ticks * (t.accesses + t.accesses.min(n))
        }
    }
}

/// Conservative worst-case sojourn for task `i`: its own demand plus every
/// other task's maximal windowed demand.
fn worst_sojourn(tasks: &[AdmissionTask], i: usize, discipline: Discipline) -> u64 {
    let c = tasks[i].critical_time;
    let own = own_demand(tasks, i, discipline);
    let interference: u64 = tasks
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != i)
        .map(|(j, t)| {
            let jobs = u64::from(t.uam.max_arrivals()) * (c.div_ceil(t.uam.window()) + 1);
            jobs * own_demand(tasks, j, discipline)
        })
        .sum();
    own + interference
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(a: u32, w: u64, c: u64, compute: u64, m: u64) -> AdmissionTask {
        AdmissionTask {
            uam: Uam::new(1, a, w).expect("valid"),
            critical_time: c,
            compute,
            accesses: m,
        }
    }

    #[test]
    fn light_set_admitted_under_both_disciplines() {
        let tasks = vec![
            task(1, 100_000, 90_000, 1_000, 2),
            task(1, 100_000, 90_000, 1_000, 2),
            task(2, 200_000, 180_000, 2_000, 1),
        ];
        assert!(admit(&tasks, Discipline::LockFree { access_ticks: 10 }).all_admitted());
        assert!(admit(&tasks, Discipline::LockBased { access_ticks: 10 }).all_admitted());
    }

    #[test]
    fn heavy_task_breaks_admission() {
        let mut tasks = vec![task(1, 10_000, 9_000, 1_000, 1); 3];
        assert!(admit(&tasks, Discipline::LockFree { access_ticks: 5 }).all_admitted());
        // A monster task floods every window.
        tasks.push(task(3, 5_000, 4_500, 4_000, 1));
        let report = admit(&tasks, Discipline::LockFree { access_ticks: 5 });
        assert!(!report.all_admitted());
    }

    #[test]
    fn larger_access_time_never_helps() {
        let tasks = vec![
            task(1, 50_000, 45_000, 2_000, 3),
            task(2, 80_000, 70_000, 3_000, 2),
        ];
        let cheap = admit(&tasks, Discipline::LockFree { access_ticks: 5 });
        let pricey = admit(&tasks, Discipline::LockFree { access_ticks: 500 });
        for (a, b) in cheap.per_task.iter().zip(&pricey.per_task) {
            assert!(b.worst_sojourn >= a.worst_sojourn);
            if !a.admitted {
                assert!(!b.admitted, "raising s cannot admit a rejected task");
            }
        }
    }

    #[test]
    fn verdict_reports_margins() {
        let tasks = vec![task(1, 100_000, 90_000, 1_000, 0)];
        let report = admit(&tasks, Discipline::LockFree { access_ticks: 10 });
        assert_eq!(report.per_task.len(), 1);
        let v = report.per_task[0];
        assert_eq!(v.critical_time, 90_000);
        assert_eq!(
            v.worst_sojourn, 1_000,
            "a lone task with no accesses just computes"
        );
        assert!(v.admitted);
    }

    #[test]
    fn lock_based_charges_blocking_lock_free_charges_retries() {
        // With huge windows, x is small; compare the contention terms.
        let tasks = vec![
            task(1, 1_000_000, 900_000, 1_000, 10),
            task(1, 1_000_000, 900_000, 1_000, 10),
        ];
        // x = 1·(1+1) = 2; f = 3 + 4 = 7; n = 2+2 = 4.
        // lock-free own demand: 1000 + s·(10 + 7) = 1000 + 17s.
        let lf = admit(&tasks, Discipline::LockFree { access_ticks: 10 });
        assert_eq!(lf.per_task[0].worst_sojourn, (1_000 + 170) * 3);
        // lock-based own demand: 1000 + r·(10 + min(10,4)) = 1000 + 14r.
        let lb = admit(&tasks, Discipline::LockBased { access_ticks: 10 });
        assert_eq!(lb.per_task[0].worst_sojourn, (1_000 + 140) * 3);
    }
}
