//! Reclamation- and *reuse*-safety tests. Since the node pools landed, a
//! retired node is no longer freed — it is **recycled** into its pool after
//! the same grace period. The properties under test become:
//!
//! 1. retired nodes are eventually recycled (bounded memory under traffic);
//! 2. a node is *never* pooled while any guard taken before its retirement
//!    is still pinned (reuse-before-grace is the pool's ABA hazard);
//! 3. the payload's `Drop` runs exactly once — on the popping thread, never
//!    again when the node body recycles.
//!
//! Strategy: payloads carry a counting `Drop` (an `Arc<AtomicUsize>` bumped
//! on drop), so "the payload was dropped" is observable without touching the
//! allocator; node-level reclamation is observed through the collector's
//! global `retired`/`destroyed`/`recycle_retired`/`recycled` telemetry.
//! Because those counters are process-global, every test here serializes on
//! [`serial`]. Forward progress of the collector is driven explicitly with
//! `epoch::pin().flush()` cycles — production code gets the same effect
//! amortized over ordinary pins.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crossbeam::epoch;
use lfrt_lockfree::{LockFreeList, LockFreeQueue, TreiberStack};

/// Serializes tests in this binary (the epoch telemetry is process-global).
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A payload whose drop is observable.
#[derive(Debug)]
struct CountOnDrop(Arc<AtomicUsize>);

impl Drop for CountOnDrop {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

/// Drives the collector until `done()` holds or a generous bound is hit.
/// Returns whether `done()` held.
fn collect_until(done: impl Fn() -> bool) -> bool {
    for _ in 0..10_000 {
        if done() {
            return true;
        }
        epoch::pin().flush();
        std::thread::yield_now();
    }
    done()
}

/// Reclaims every node already retired on either path — destroy *or*
/// recycle (all racing threads must have quiesced). Used to reach a clean
/// baseline before taking deltas.
fn drain_backlog() -> bool {
    collect_until(|| {
        epoch::destroyed_count() >= epoch::retired_count()
            && epoch::recycled_count() >= epoch::recycle_retired_count()
    })
}

#[test]
fn stack_recycles_popped_nodes_after_quiescence() {
    let _guard = serial();
    let drops = Arc::new(AtomicUsize::new(0));
    let stack = TreiberStack::new();
    const N: usize = 100;
    for _ in 0..N {
        stack.push(CountOnDrop(Arc::clone(&drops)));
    }
    let before_recycled = epoch::recycled_count();
    for _ in 0..N {
        // The popped payload is dropped here; what the epoch collector owes
        // us is the *node body* — recycling it must not double-drop the
        // payload (the popper moved it out of the `ManuallyDrop` slot).
        drop(stack.pop().expect("stack has elements"));
    }
    assert_eq!(
        drops.load(Ordering::Relaxed),
        N,
        "each payload dropped exactly once by the popper"
    );
    // Retired nodes must eventually recycle into the pool, and recycling
    // must not re-drop payloads (the counter stays at N through collection).
    assert!(
        collect_until(|| epoch::recycled_count() >= before_recycled + N),
        "popped stack nodes were never recycled"
    );
    assert_eq!(
        drops.load(Ordering::Relaxed),
        N,
        "node recycling must not drop payloads a second time"
    );
}

#[test]
fn queue_recycles_dequeued_sentinels_after_quiescence() {
    let _guard = serial();
    let drops = Arc::new(AtomicUsize::new(0));
    let queue = LockFreeQueue::new();
    const N: usize = 100;
    for _ in 0..N {
        queue.enqueue(CountOnDrop(Arc::clone(&drops)));
    }
    let before_recycled = epoch::recycled_count();
    for _ in 0..N {
        drop(queue.dequeue().expect("queue has elements"));
    }
    assert_eq!(drops.load(Ordering::Relaxed), N);
    // Each dequeue retires the *old* sentinel (whose data slot is already
    // `None`), so N dequeues owe the pool N recycled node bodies.
    assert!(
        collect_until(|| epoch::recycled_count() >= before_recycled + N),
        "dequeued queue sentinels were never recycled"
    );
    assert_eq!(
        drops.load(Ordering::Relaxed),
        N,
        "sentinel recycling must not drop payloads a second time"
    );
}

#[test]
fn list_recycles_removed_nodes_after_quiescence() {
    let _guard = serial();
    let list = LockFreeList::new();
    const N: u64 = 100;
    for k in 0..N {
        assert!(list.insert(k));
    }
    let before_recycled = epoch::recycled_count();
    for k in 0..N {
        assert!(list.remove(k));
    }
    assert!(
        collect_until(|| epoch::recycled_count() >= before_recycled + N as usize),
        "removed list nodes were never recycled"
    );
}

/// The "never reused early" half — the pool's ABA safety argument. While
/// this thread holds a guard pinned at epoch `e`, the global epoch can
/// advance at most once (to `e + 2`), so a node retired at `e` or later sits
/// at numeric distance ≤ 2 — short of the two-advance (distance 4) grace
/// period — for as long as the guard lives. Nodes retired *after* the guard
/// was taken therefore must neither be destroyed **nor pooled for reuse**,
/// no matter how hard other threads drive the collector. A node that
/// reached the pool here could be re-acquired and overwritten while this
/// guard still holds a pre-retirement pointer to it — the classic
/// reuse-before-grace ABA. This is deterministic, not timing-dependent.
#[test]
fn no_recycling_while_a_reader_is_pinned() {
    let _guard = serial();
    // Reach a clean baseline first: anything retired by earlier tests gets
    // reclaimed now, so the strict equalities below can only be broken by an
    // early free/reuse of *our* nodes.
    assert!(drain_backlog(), "could not drain pre-existing garbage");

    let drops = Arc::new(AtomicUsize::new(0));
    let stack = Arc::new(TreiberStack::new());
    const N: usize = 50;

    let reader_pin = epoch::pin();

    for _ in 0..N {
        stack.push(CountOnDrop(Arc::clone(&drops)));
    }
    let destroyed_at_pin = epoch::destroyed_count();
    let recycled_at_pin = epoch::recycled_count();
    let recycle_retired_at_pin = epoch::recycle_retired_count();

    // Other threads pop everything and hammer the collector.
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let stack = Arc::clone(&stack);
            std::thread::spawn(move || {
                while stack.pop().is_some() {}
                for _ in 0..1_000 {
                    epoch::pin().flush();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("popper panicked");
    }

    assert_eq!(drops.load(Ordering::Relaxed), N, "all payloads popped");
    assert!(
        epoch::recycle_retired_count() >= recycle_retired_at_pin + N,
        "popped nodes were retired onto the recycle path"
    );
    assert_eq!(
        epoch::recycled_count(),
        recycled_at_pin,
        "nodes retired while a guard is pinned must not be pooled for reuse"
    );
    assert_eq!(
        epoch::destroyed_count(),
        destroyed_at_pin,
        "nodes retired while a guard is pinned must not be destroyed"
    );

    // Unpinning releases the grace period; everything becomes recyclable.
    drop(reader_pin);
    assert!(
        collect_until(|| epoch::recycled_count() >= recycled_at_pin + N),
        "nodes stayed unrecycled after the last guard unpinned"
    );
}

/// Multi-threaded churn: concurrent producers/consumers with collection
/// interleaved; afterwards every payload was dropped exactly once and the
/// retired-node backlog drains to zero — the bounded-memory property the
/// paper needs for long-running embedded workloads. With the pool, "drains"
/// means recycled, not freed: blocks park in thread caches and the overflow
/// stack instead of going back to the allocator.
#[test]
fn concurrent_churn_reclaims_everything_exactly_once() {
    let _guard = serial();
    const THREADS: usize = 4;
    const PER_THREAD: usize = 5_000;
    let drops = Arc::new(AtomicUsize::new(0));
    let queue = Arc::new(LockFreeQueue::new());

    let producers: Vec<_> = (0..THREADS)
        .map(|_| {
            let queue = Arc::clone(&queue);
            let drops = Arc::clone(&drops);
            std::thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    queue.enqueue(CountOnDrop(Arc::clone(&drops)));
                }
            })
        })
        .collect();
    let consumed = Arc::new(AtomicUsize::new(0));
    let consumers: Vec<_> = (0..THREADS)
        .map(|_| {
            let queue = Arc::clone(&queue);
            let consumed = Arc::clone(&consumed);
            std::thread::spawn(move || {
                while consumed.load(Ordering::Relaxed) < THREADS * PER_THREAD {
                    if let Some(v) = queue.dequeue() {
                        drop(v);
                        consumed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        std::hint::spin_loop();
                    }
                }
            })
        })
        .collect();
    for h in producers {
        h.join().expect("producer panicked");
    }
    for h in consumers {
        h.join().expect("consumer panicked");
    }

    assert_eq!(
        drops.load(Ordering::Relaxed),
        THREADS * PER_THREAD,
        "every payload dropped exactly once despite deferred node recycling"
    );
    // The backlog of retired-but-unreclaimed nodes must drain completely
    // once all threads are quiescent: bounded memory, not a slow leak.
    assert!(
        drain_backlog(),
        "retired-node backlog failed to drain: {} retired / {} destroyed, {} recycle-retired / {} recycled",
        epoch::retired_count(),
        epoch::destroyed_count(),
        epoch::recycle_retired_count(),
        epoch::recycled_count()
    );
}
