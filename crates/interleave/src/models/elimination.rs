//! Model of the elimination-backoff exchanger, mirroring
//! `crates/lockfree/src/elimination.rs` composed with the pooled Treiber
//! stack of `crates/lockfree/src/stack.rs` (`TreiberStack::with_elimination`).
//!
//! The exchanger's safety argument has two load-bearing clauses, and each
//! gets a seeded twin here:
//!
//! * **Payload after the claim** ([`ModelElimStack::preread_aba`]): an
//!   eliminated node recycles *directly* into the pool cache — no epoch
//!   grace is owed, because an exchanged node was never published to the
//!   stack. The flip side is that a node observed at a slot (D1) can be
//!   cancelled, eliminated by someone else, re-acquired from the cache and
//!   re-offered *at the same slot with a new payload* before the observer's
//!   claim CAS (D2) runs. The faithful popper therefore reads the payload
//!   strictly **after** winning D2; the twin pre-reads it at D1 and returns
//!   a stale value the schedule below makes both lost and duplicated —
//!   the exchange-slot ABA.
//! * **Cancel by CAS, not store** ([`ModelElimStack::blind_cancel`]): a
//!   pusher withdraws its offer with a CAS whose failure proves a popper
//!   claimed the node first. The twin "cancels" with a blind `EMPTY` store
//!   and treats the offer as withdrawn: racing a claim, the element comes
//!   back through the pusher's fallback push *and* through the claiming
//!   popper — the lost-elimination double-return.
//!
//! Step structure (matching `EliminationArray` — the stack ops are
//! [`super::pool::ModelPoolStack`]'s S-steps):
//! - offer (`try_eliminate_push`): E1 `slot.compare_exchange(EMPTY, node,
//!   Release, Relaxed)`; E2 the bounded wait, rendered as one `Relaxed`
//!   probe load (spin passes add no shared transitions beyond the last
//!   probe); E3 `slot.compare_exchange(node, EMPTY, Relaxed, Relaxed)` —
//!   on failure, the `EMPTY` acknowledgment store (Relaxed).
//! - take (`try_eliminate_pop`): D1 `slot.load(Relaxed)` probe; D2
//!   `slot.compare_exchange(node, BUSY, Acquire, Relaxed)`; payload read
//!   after D2 (exclusive, not a step) — the twin moves it before D2.
//!
//! Cache bookkeeping is thread-local in the real code (`Vec` ops, no
//! atomics) and takes no step, as everywhere in [`crate::models`].

use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
use std::sync::{Arc, Mutex};

use crate::arena::NIL;
use crate::atomic::Atomic;
use crate::runtime;

/// Slot state: no offer parked (the real code's null/0).
const EMPTY: usize = NIL;

/// Slot state: offer claimed, pusher acknowledgment pending (the real
/// code's sentinel 1; node indices never collide with it).
const BUSY: usize = NIL - 1;

/// A reusable stack node, as in [`super::pool::ModelPoolStack`].
struct ElimNode {
    value: Atomic<u64>,
    next: Atomic<usize>,
}

/// A pooled Treiber stack with a one-slot elimination exchanger; see the
/// module docs. One slot is the real array at its starting width — the
/// width adaptation only respreads *which* slot a thread probes and is
/// invisible to the per-slot protocol being checked here.
pub struct ModelElimStack {
    top: Atomic<usize>,
    slot: Atomic<usize>,
    nodes: Mutex<Vec<Arc<ElimNode>>>,
    /// Reusable node indices (thread caches + overflow: not steps). LIFO,
    /// like the real per-thread cache.
    cache: Mutex<Vec<usize>>,
    /// Nodes retired by *stack* pops, waiting out the grace period for the
    /// whole exploration (the conservative rendering of epoch reclamation).
    /// Eliminated nodes never come here — direct recycle is the faithful
    /// behavior under test.
    limbo: Mutex<Vec<usize>>,
    /// Seeded bug: read the payload at the D1 probe instead of after D2.
    preread: bool,
    /// Seeded bug: cancel with a blind store instead of the E3 CAS.
    blind_cancel: bool,
}

impl ModelElimStack {
    /// The faithful model.
    pub fn new() -> Self {
        Self::with_bugs(false, false)
    }

    /// The exchange-slot ABA twin: the popper pre-reads the payload at the
    /// D1 probe.
    pub fn preread_aba() -> Self {
        Self::with_bugs(true, false)
    }

    /// The lost-elimination double-return twin: the pusher cancels with a
    /// blind `EMPTY` store.
    pub fn blind_cancel() -> Self {
        Self::with_bugs(false, true)
    }

    fn with_bugs(preread: bool, blind_cancel: bool) -> Self {
        Self {
            top: Atomic::new(NIL),
            slot: Atomic::new(EMPTY),
            nodes: Mutex::new(Vec::new()),
            cache: Mutex::new(Vec::new()),
            limbo: Mutex::new(Vec::new()),
            preread,
            blind_cancel,
        }
    }

    fn get(&self, idx: usize) -> Arc<ElimNode> {
        Arc::clone(&self.nodes.lock().unwrap_or_else(|e| e.into_inner())[idx])
    }

    /// Mirrors `RawPool::acquire` + node init (one scheduled step, then
    /// plain stores on exclusively owned memory).
    fn alloc(&self, value: u64) -> usize {
        runtime::step_write();
        let reused = self.cache.lock().unwrap_or_else(|e| e.into_inner()).pop();
        match reused {
            Some(idx) => {
                let node = self.get(idx);
                node.value.store_plain(value);
                node.next.store_plain(NIL);
                idx
            }
            None => {
                let mut nodes = self.nodes.lock().unwrap_or_else(|e| e.into_inner());
                nodes.push(Arc::new(ElimNode {
                    value: Atomic::new(value),
                    next: Atomic::new(NIL),
                }));
                nodes.len() - 1
            }
        }
    }

    /// Returns an exclusively owned node to the cache (thread-local
    /// bookkeeping: not a step).
    fn recycle(&self, idx: usize) {
        self.cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(idx);
    }

    /// Mirrors the pooled `TreiberStack::push` head loop.
    pub fn push(&self, value: u64) {
        let idx = self.alloc(value);
        let node = self.get(idx);
        loop {
            // S1: `self.top.load(Acquire)`.
            let top = self.top.load_ord(Acquire);
            node.next.store_plain(top);
            // S2: `self.top.compare_exchange(top, new, Release, Relaxed)`.
            if self
                .top
                .compare_exchange_ord(top, idx, Release, Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Mirrors the pooled `TreiberStack::pop` head loop (retire → limbo:
    /// stack-popped nodes stay grace-gated).
    pub fn pop(&self) -> Option<u64> {
        loop {
            // S1: `self.top.load(Acquire)`.
            let top = self.top.load_ord(Acquire);
            if top == NIL {
                return None;
            }
            let node = self.get(top);
            // S2: `top_ref.next.load(Relaxed)`.
            let next = node.next.load_ord(Relaxed);
            // S3: `self.top.compare_exchange(top, next, Release, Relaxed)`.
            if self
                .top
                .compare_exchange_ord(top, next, Release, Relaxed)
                .is_ok()
            {
                let value = node.value.load_plain();
                self.limbo
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(top);
                return Some(value);
            }
        }
    }

    /// Mirrors `EliminationArray::try_eliminate_push` for one contended
    /// pass: `true` = a popper took the element (push complete), `false` =
    /// cancelled or slot occupied (the real code goes back to the head
    /// loop; callers model that with a fallback [`ModelElimStack::push`]).
    pub fn offer_push(&self, value: u64) -> bool {
        let idx = self.alloc(value);
        // E1: install the offer (Release publishes the payload).
        if self
            .slot
            .compare_exchange_ord(EMPTY, idx, Release, Relaxed)
            .is_err()
        {
            // Occupied: the real pusher keeps its node and re-enters the
            // head loop; handing it back to the cache models the same
            // ownership without an extra step.
            self.recycle(idx);
            return false;
        }
        // E2: the bounded wait — one Relaxed probe step stands in for the
        // spin loop's final read.
        let probe = self.slot.load_ord(Relaxed);
        let _ = probe;
        if self.blind_cancel {
            // Seeded bug: "cancel" unconditionally with a store. A claim
            // racing between E2 and this store owns the node too — the
            // fallback push then duplicates the element.
            self.slot.store_ord(EMPTY, Relaxed);
            self.recycle(idx);
            return false;
        }
        // E3: cancel by CAS; failure proves the claim happened.
        match self.slot.compare_exchange_ord(idx, EMPTY, Relaxed, Relaxed) {
            Ok(_) => {
                // Timed out: nobody saw the node; we still own it.
                self.recycle(idx);
                false
            }
            Err(_) => {
                // Claimed (slot reads BUSY): acknowledge so the slot can
                // host the next offer.
                self.slot.store_ord(EMPTY, Relaxed);
                true
            }
        }
    }

    /// Mirrors `EliminationArray::try_eliminate_pop` for one contended
    /// pass: a claimed node recycles directly into the cache (no grace —
    /// it was never published to the stack).
    pub fn take_pop(&self) -> Option<u64> {
        // D1: probe.
        let observed = self.slot.load_ord(Relaxed);
        if observed == EMPTY || observed == BUSY {
            return None;
        }
        let node = self.get(observed);
        // Seeded bug: payload read at the probe — before the claim CAS
        // proves the node still belongs to this offer.
        let preread_value = if self.preread {
            Some(node.value.load_plain())
        } else {
            None
        };
        // D2: claim (Acquire pairs with E1's Release).
        if self
            .slot
            .compare_exchange_ord(observed, BUSY, Acquire, Relaxed)
            .is_ok()
        {
            // Faithful: the payload read happens strictly after the CAS —
            // the node is exclusively ours (not a step).
            let value = match preread_value {
                Some(stale) => stale,
                None => node.value.load_plain(),
            };
            self.recycle(observed);
            Some(value)
        } else {
            None
        }
    }

    /// Post-check helper: drains remaining stack elements top-down without
    /// scheduling (single-threaded use only).
    pub fn drain_plain(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cursor = self.top.load_plain();
        while cursor != NIL {
            let node = self.get(cursor);
            out.push(node.value.load_plain());
            cursor = node.next.load_plain();
        }
        out
    }
}

impl Default for ModelElimStack {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_offer_times_out_and_falls_back() {
        let s = ModelElimStack::new();
        assert!(!s.offer_push(1), "no popper: the offer must cancel");
        s.push(1);
        assert_eq!(s.take_pop(), None, "slot must be empty after a cancel");
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn eliminated_node_recycles_into_cache() {
        let s = ModelElimStack::new();
        // Install an offer by hand (single-threaded, no waiting partner
        // would ever meet it otherwise).
        let idx = s.alloc(7);
        s.slot
            .compare_exchange_ord(EMPTY, idx, Release, Relaxed)
            .unwrap();
        assert_eq!(s.take_pop(), Some(7));
        let created = s.nodes.lock().unwrap().len();
        assert_eq!(created, 1);
        // The next alloc reuses the eliminated node: direct recycle.
        assert_eq!(s.alloc(8), idx);
    }
}
