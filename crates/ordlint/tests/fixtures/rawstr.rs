//! Regression fixture for byte-string blanking: the `\"` inside `b"x\"y"`
//! is a real escape (byte strings are not raw strings), so the literal
//! must not close early — a desync here used to swallow the load below.

fn tagged(flag: &AtomicUsize) -> usize {
    let _tag = b"x\"y";
    flag.load(Acquire)
}
