use crate::{TufError, TufShape};

/// A time/utility function: a [`TufShape`] paired with a critical time.
///
/// The critical time `C` is the (single) time at which the function drops to
/// zero utility; the TUF is zero for all `t >= C`. Time is relative to the
/// activity's arrival, so [`Tuf::utility`] takes a sojourn time.
///
/// # Examples
///
/// ```
/// use lfrt_tuf::Tuf;
///
/// # fn main() -> Result<(), lfrt_tuf::TufError> {
/// let tuf = Tuf::parabolic(8.0, 100)?;
/// assert_eq!(tuf.utility(0), 8.0);
/// assert!(tuf.utility(50) < 8.0);
/// assert_eq!(tuf.utility(100), 0.0);
/// assert!(tuf.is_non_increasing());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tuf {
    shape: TufShape,
    critical_time: u64,
}

impl Tuf {
    /// Creates a TUF from an arbitrary shape and critical time.
    ///
    /// # Errors
    ///
    /// Returns [`TufError`] if `critical_time` is zero, any utility value is
    /// not a finite non-negative number, or (for piecewise shapes) the points
    /// are empty, unsorted, or lie at/beyond the critical time.
    pub fn new(shape: TufShape, critical_time: u64) -> Result<Self, TufError> {
        if critical_time == 0 {
            return Err(TufError::ZeroCriticalTime);
        }
        for v in shape.utility_values() {
            if !v.is_finite() || v < 0.0 {
                return Err(TufError::InvalidUtility {
                    value: format!("{v}"),
                });
            }
        }
        if let TufShape::Exponential { rate, .. } = &shape {
            if !rate.is_finite() || *rate < 0.0 {
                return Err(TufError::InvalidUtility {
                    value: format!("rate {rate}"),
                });
            }
        }
        if let TufShape::PiecewiseLinear { points } = &shape {
            if points.is_empty() {
                return Err(TufError::EmptyPoints);
            }
            for (i, w) in points.windows(2).enumerate() {
                if w[1].0 <= w[0].0 {
                    return Err(TufError::UnsortedPoints { index: i + 1 });
                }
            }
            if let Some(&(t, _)) = points.iter().find(|&&(t, _)| t >= critical_time) {
                return Err(TufError::PointBeyondCriticalTime {
                    time: t,
                    critical_time,
                });
            }
        }
        Ok(Self {
            shape,
            critical_time,
        })
    }

    /// Creates a binary-valued downward step TUF — a classic deadline.
    ///
    /// # Errors
    ///
    /// See [`Tuf::new`].
    pub fn step(height: f64, critical_time: u64) -> Result<Self, TufError> {
        Self::new(TufShape::Step { height }, critical_time)
    }

    /// Creates a TUF decaying linearly from `initial` at `t = 0` to zero at
    /// the critical time.
    ///
    /// # Errors
    ///
    /// See [`Tuf::new`].
    pub fn linear_decreasing(initial: f64, critical_time: u64) -> Result<Self, TufError> {
        Self::new(
            TufShape::Linear {
                initial,
                final_utility: 0.0,
            },
            critical_time,
        )
    }

    /// Creates a linear TUF with explicit start and end utilities.
    ///
    /// # Errors
    ///
    /// See [`Tuf::new`].
    pub fn linear(initial: f64, final_utility: f64, critical_time: u64) -> Result<Self, TufError> {
        Self::new(
            TufShape::Linear {
                initial,
                final_utility,
            },
            critical_time,
        )
    }

    /// Creates a downward-parabolic TUF with maximum `peak` at `t = 0`.
    ///
    /// # Errors
    ///
    /// See [`Tuf::new`].
    pub fn parabolic(peak: f64, critical_time: u64) -> Result<Self, TufError> {
        Self::new(TufShape::Parabolic { peak }, critical_time)
    }

    /// Creates an exponentially decaying TUF `u(t) = initial · e^(−rate·t)`.
    ///
    /// # Errors
    ///
    /// See [`Tuf::new`]; additionally rejects negative or non-finite rates.
    pub fn exponential(initial: f64, rate: f64, critical_time: u64) -> Result<Self, TufError> {
        Self::new(TufShape::Exponential { initial, rate }, critical_time)
    }

    /// Creates a piecewise-linear TUF through the given `(time, utility)`
    /// control points.
    ///
    /// # Errors
    ///
    /// See [`Tuf::new`].
    pub fn piecewise(points: Vec<(u64, f64)>, critical_time: u64) -> Result<Self, TufError> {
        Self::new(TufShape::PiecewiseLinear { points }, critical_time)
    }

    /// Utility accrued by completing at sojourn time `t` (ticks since
    /// arrival). Zero at and after the critical time.
    #[inline]
    pub fn utility(&self, t: u64) -> f64 {
        self.shape.eval(t, self.critical_time)
    }

    /// The critical time `C`: the sojourn time at which utility drops to zero.
    #[inline]
    pub fn critical_time(&self) -> u64 {
        self.critical_time
    }

    /// The shape of this TUF.
    #[inline]
    pub fn shape(&self) -> &TufShape {
        &self.shape
    }

    /// Maximum utility this TUF can yield (its value at the best completion
    /// time). For non-increasing TUFs this equals `utility(0)`.
    #[inline]
    pub fn max_utility(&self) -> f64 {
        self.shape.max_utility()
    }

    /// Whether the TUF is non-increasing over `[0, C)` — the precondition of
    /// the paper's AUR bounds (Lemmas 4 and 5).
    #[inline]
    pub fn is_non_increasing(&self) -> bool {
        self.shape.is_non_increasing()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_critical_time_rejected() {
        assert_eq!(Tuf::step(1.0, 0).unwrap_err(), TufError::ZeroCriticalTime);
    }

    #[test]
    fn invalid_utilities_rejected() {
        assert!(matches!(
            Tuf::step(-1.0, 10),
            Err(TufError::InvalidUtility { .. })
        ));
        assert!(matches!(
            Tuf::step(f64::NAN, 10),
            Err(TufError::InvalidUtility { .. })
        ));
        assert!(matches!(
            Tuf::linear(1.0, f64::INFINITY, 10),
            Err(TufError::InvalidUtility { .. })
        ));
    }

    #[test]
    fn piecewise_validation() {
        assert_eq!(
            Tuf::piecewise(vec![], 10).unwrap_err(),
            TufError::EmptyPoints
        );
        assert_eq!(
            Tuf::piecewise(vec![(5, 1.0), (5, 2.0)], 10).unwrap_err(),
            TufError::UnsortedPoints { index: 1 }
        );
        assert_eq!(
            Tuf::piecewise(vec![(5, 1.0), (12, 2.0)], 10).unwrap_err(),
            TufError::PointBeyondCriticalTime {
                time: 12,
                critical_time: 10
            }
        );
        assert!(Tuf::piecewise(vec![(0, 4.0), (9, 1.0)], 10).is_ok());
    }

    #[test]
    fn exponential_validation() {
        assert!(Tuf::exponential(5.0, 0.01, 100).is_ok());
        assert!(matches!(
            Tuf::exponential(5.0, -0.1, 100),
            Err(TufError::InvalidUtility { .. })
        ));
        assert!(matches!(
            Tuf::exponential(5.0, f64::NAN, 100),
            Err(TufError::InvalidUtility { .. })
        ));
    }

    #[test]
    fn utility_zero_at_and_after_critical_time() {
        for tuf in [
            Tuf::step(5.0, 77).unwrap(),
            Tuf::linear_decreasing(5.0, 77).unwrap(),
            Tuf::parabolic(5.0, 77).unwrap(),
            Tuf::exponential(5.0, 0.01, 77).unwrap(),
            Tuf::piecewise(vec![(0, 5.0), (50, 1.0)], 77).unwrap(),
        ] {
            assert_eq!(tuf.utility(77), 0.0);
            assert_eq!(tuf.utility(78), 0.0);
            assert!(tuf.utility(76) > 0.0);
        }
    }

    #[test]
    fn accessors() {
        let tuf = Tuf::step(2.5, 42).unwrap();
        assert_eq!(tuf.critical_time(), 42);
        assert_eq!(tuf.max_utility(), 2.5);
        assert!(matches!(tuf.shape(), TufShape::Step { .. }));
    }

    #[test]
    fn step_utility_positive_strictly_before_critical_time() {
        let tuf = Tuf::step(1.0, 1).unwrap();
        assert_eq!(tuf.utility(0), 1.0);
        assert_eq!(tuf.utility(1), 0.0);
    }
}
