//! Log-bucketed (HDR-style) histograms for the drain/snapshot aggregator.
//!
//! A bucket per power of two keeps the footprint constant (65 counters)
//! while spanning the full 48-bit event-value range with bounded relative
//! error — the same trade HdrHistogram makes at precision 1. That is the
//! right shape for latency and retry distributions, whose tails matter more
//! than their means (Alistarh et al.: the practical-progress story lives in
//! the tail).

/// Power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `0` holds the value `0`; bucket `b ≥ 1` holds values in
/// `[2^(b-1), 2^b)`. Exact count/sum/min/max ride along, so means are exact
/// and only percentiles are bucket-quantized (reported as the bucket's
/// upper bound: pessimistic, never flattering).
///
/// # Examples
///
/// ```
/// use lfrt_trace::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1, 2, 3, 100, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.min(), 1);
/// assert_eq!(h.max(), 1000);
/// assert!(h.percentile(50.0) >= 3);
/// assert!(h.percentile(100.0) >= 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; Histogram::BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// One bucket for zero plus one per possible bit width.
    pub const BUCKETS: usize = 65;

    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; Histogram::BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a value: its bit width (0 for 0).
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive upper bound of a bucket (`2^b - 1`; 0 for bucket 0).
    pub fn bucket_ceiling(bucket: usize) -> u64 {
        if bucket >= 64 {
            u64::MAX
        } else {
            (1u64 << bucket) - 1
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of all samples, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at or below which `p` percent of samples fall, quantized to
    /// the containing bucket's upper bound (but never above the exact max).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_ceiling(bucket).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(ceiling, count)` pairs, in value order — the
    /// sparse export format for JSON reports.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| (Self::bucket_ceiling(b), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_ceiling(0), 0);
        assert_eq!(Histogram::bucket_ceiling(2), 3);
        assert_eq!(Histogram::bucket_ceiling(64), u64::MAX);
    }

    #[test]
    fn summary_stats_are_exact() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0);
        for v in [5, 10, 15] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 30);
        assert_eq!(h.min(), 5);
        assert_eq!(h.max(), 15);
        assert_eq!(h.mean(), 10.0);
    }

    #[test]
    fn percentiles_are_pessimistic_but_bounded() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0);
        // Median 500 lives in bucket [256, 512) → ceiling 511.
        assert!((500..=511).contains(&p50), "p50 = {p50}");
        assert_eq!(h.percentile(100.0), 1000); // clamped to exact max
        let p99 = h.percentile(99.0);
        assert!((990..=1023).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn merge_matches_recording_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in 0..100u64 {
            if v % 2 == 0 {
                a.record(v * 7)
            } else {
                b.record(v * 7)
            }
            all.record(v * 7);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn sparse_export_roundtrips_counts() {
        let mut h = Histogram::new();
        for v in [0, 0, 3, 3, 3, 700] {
            h.record(v);
        }
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets, vec![(0, 2), (3, 3), (1023, 1)]);
        let total: u64 = buckets.iter().map(|(_, n)| n).sum();
        assert_eq!(total, h.count());
    }
}
