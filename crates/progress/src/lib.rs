//! Static progress-guarantee and reclamation-safety lint.
//!
//! The paper's value proposition is *progress*: the Theorem 2 retry
//! bounds (`crates/analysis::retry_bound`, exercised by
//! `tests/theorem2_opstats.rs`) are sound only if every operation they
//! cover really is lock-free. A single blocking call on a hot path, an
//! unbounded non-CAS wait, or a use-after-retire silently voids the
//! analysis — and none of the existing checkers watch for that:
//! `ordlint` checks *orderings*, `interleave` checks *interleavings* of
//! hand-written models. This crate closes the gap statically:
//!
//! 1. [`scan`] parses the workspace sources (`src/`, `crates/lockfree`,
//!    `crates/trace`, `crates/core`, `vendor/crossbeam/src`) into
//!    impl-qualified functions with their lexical features.
//! 2. [`callgraph`] wires them into a per-function call graph with a
//!    precision-first resolution precedence.
//! 3. [`manifest`] reads `progress.toml`, which declares every public
//!    operation of `crates/lockfree` and the vendored epoch API as
//!    `wait_free` / `lock_free` / `blocking` (+ `no_alloc`) — and the
//!    analysis enforces that the declared set matches the public-fn set
//!    *exactly*, so the manifest and the API can only drift together.
//! 4. [`rules`] applies PRG001–PRG006 over functions and reachability.
//! 5. Findings diff against the `[[baseline]]` entries in the same file
//!    (unbaselined findings and stale entries both fail, same contract
//!    as `ordlint.toml`).
//!
//! Run it as `cargo run -p lfrt-progress` (add `--json <path>` for the
//! CI artifact, `--list` for the op/function inventory).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod manifest;
pub mod report;
pub mod rules;
pub mod scan;

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use lfrt_srcscan::source::SourceFile;

use callgraph::Graph;
use manifest::MatchResult;
use scan::FnInfo;

/// A declared op as reported (post-resolution).
#[derive(Debug, Clone)]
pub struct OpReport {
    /// Qualified name.
    pub name: String,
    /// Declared class name (`wait_free` | `lock_free` | `blocking`).
    pub class: String,
    /// Declared allocation-freedom.
    pub no_alloc: bool,
}

/// Everything one run produces.
#[derive(Debug)]
pub struct Analysis {
    /// Scan root as given.
    pub root: String,
    /// Relative paths of every scanned file.
    pub files: Vec<String>,
    /// Number of functions scanned.
    pub functions: usize,
    /// Declared ops.
    pub ops: Vec<OpReport>,
    /// Public fns in the coverage scope with no `[[op]]` declaration —
    /// these fail the run.
    pub undeclared: Vec<String>,
    /// `[[op]]` declarations matching no public fn in the coverage scope
    /// — these fail the run too.
    pub unresolved: Vec<String>,
    /// Baseline match outcome.
    pub matched: MatchResult,
}

/// Scan roots inside a workspace checkout. `src/` and `crates/core` are
/// scanned so call-graph edges *out of* scheduler code resolve, but only
/// `crates/lockfree` and the vendored epoch implementation carry declared
/// ops; `crates/trace` is scanned because the flight recorder rides on
/// every hot path.
fn workspace_dirs(root: &Path) -> Vec<PathBuf> {
    vec![
        root.join("src"),
        root.join("crates").join("lockfree").join("src"),
        root.join("crates").join("trace").join("src"),
        root.join("crates").join("core").join("src"),
        root.join("vendor").join("crossbeam").join("src"),
    ]
}

/// Whether `rel_path` is in the op-coverage scope: every `pub fn` here
/// must have a manifest entry, and every manifest entry must resolve
/// here. The epoch stand-in's public API is first-party lock-free code
/// (ROADMAP PR 4), so it gets the same contract as `crates/lockfree`.
fn workspace_coverage(rel_path: &str) -> bool {
    rel_path.starts_with("crates/lockfree/src/") || rel_path == "vendor/crossbeam/src/epoch.rs"
}

/// Loads sources for `root`: workspace layout when a `crates/` directory
/// exists, recursive otherwise (fixture directories in tests).
///
/// # Errors
///
/// Propagates I/O errors from the walk and file reads.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    if root.join("crates").is_dir() {
        lfrt_srcscan::walk::collect_dirs(root, &workspace_dirs(root))
    } else {
        lfrt_srcscan::walk::collect_recursive(root)
    }
}

/// Full pipeline: scan, call graph, coverage, rules, baseline match.
///
/// `manifest_text` is the content of `progress.toml`. In workspace
/// layout, coverage is enforced over `crates/lockfree/src` and the
/// vendored `epoch.rs`; in fixture layout (no `crates/`), over every
/// scanned file.
///
/// # Errors
///
/// I/O errors from the scan, or the manifest parse error string.
pub fn analyze(root: &Path, manifest_text: &str) -> Result<Analysis, String> {
    let manifest = manifest::parse(manifest_text)?;
    let sources = collect_sources(root).map_err(|e| format!("scan failed: {e}"))?;
    let workspace_layout = root.join("crates").is_dir();

    // Flat function list across all files.
    let mut fns: Vec<FnInfo> = Vec::new();
    let mut fn_files: Vec<String> = Vec::new();
    let mut files = Vec::new();
    let mut per_fn_source: Vec<usize> = Vec::new();
    for (si, sf) in sources.iter().enumerate() {
        for info in scan::scan_file(sf) {
            fns.push(info);
            fn_files.push(sf.rel_path.clone());
            per_fn_source.push(si);
        }
        files.push(sf.rel_path.clone());
    }
    let graph = Graph::build(&fns);

    // Coverage: declared set == public-fn set in scope, exactly.
    let in_scope = |rel: &str| {
        if workspace_layout {
            workspace_coverage(rel)
        } else {
            true
        }
    };
    let mut public: Vec<&str> = fns
        .iter()
        .zip(&fn_files)
        .filter(|(f, rel)| f.is_pub && in_scope(rel))
        .map(|(f, _)| f.qname.as_str())
        .collect();
    public.sort_unstable();
    public.dedup();
    let undeclared: Vec<String> = public
        .iter()
        .filter(|q| manifest.op(q).is_none())
        .map(|q| q.to_string())
        .collect();
    let unresolved: Vec<String> = manifest
        .ops
        .iter()
        .filter(|o| !public.contains(&o.name.as_str()))
        .map(|o| o.name.clone())
        .collect();

    // Per-op root functions (empty for unresolved ops; rules skip them
    // gracefully, the coverage failure reports them).
    let op_roots: HashMap<String, Vec<usize>> = manifest
        .ops
        .iter()
        .map(|o| (o.name.clone(), graph.by_qname(&o.name).to_vec()))
        .collect();

    let lines = |fn_idx: usize, offset: usize| sources[per_fn_source[fn_idx]].line_of(offset);
    let ctx = rules::Ctx {
        fns: &fns,
        files: &fn_files,
        lines: &lines,
        graph: &graph,
        manifest: &manifest,
        op_roots: &op_roots,
    };
    let findings = rules::run_rules(&ctx);
    let matched = manifest::apply(findings, &manifest.baseline);

    Ok(Analysis {
        root: root.display().to_string(),
        files,
        functions: fns.len(),
        ops: manifest
            .ops
            .iter()
            .map(|o| OpReport {
                name: o.name.clone(),
                class: o.class.name().to_string(),
                no_alloc: o.no_alloc,
            })
            .collect(),
        undeclared,
        unresolved,
        matched,
    })
}

/// The workspace root this crate was built in (two levels above the crate
/// manifest) — the default `--root`.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

/// Enumerates the public ops the manifest must cover for a workspace
/// checkout at `root` — the independent enumeration used by the
/// manifest-sync test.
///
/// # Errors
///
/// Propagates scan I/O errors as strings.
pub fn enumerate_public_ops(root: &Path) -> Result<Vec<String>, String> {
    let sources = collect_sources(root).map_err(|e| format!("scan failed: {e}"))?;
    let mut out = Vec::new();
    for sf in &sources {
        if !workspace_coverage(&sf.rel_path) {
            continue;
        }
        for f in scan::scan_file(sf) {
            if f.is_pub {
                out.push(f.qname);
            }
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}
