use lfrt_sim::{Decision, JobId, SchedulerContext, UaScheduler};

use crate::ops::OpsCounter;
use crate::pud::chain_pud;

/// LBESA — Locke's Best Effort Scheduling Algorithm, the other classic
/// utility-accrual scheduler from the TUF literature the paper builds on
/// (Locke, CMU 1986; surveyed in the paper's reference \[22\]).
///
/// Where RUA *greedily inserts* jobs in decreasing potential-utility-density
/// order and rejects an insertion that breaks feasibility, LBESA starts from
/// the full deadline-ordered schedule and *sheds* the lowest-density job
/// until the remainder is feasible. Both default to EDF during underloads;
/// during overloads they can shed different jobs, which makes LBESA a
/// valuable cross-check for the RUA results.
///
/// This implementation considers each job independently (no dependency
/// chains), matching its use with lock-free or ideal object sharing.
///
/// Cost: `O(n log n)` for the initial sort plus `O(n)` feasibility passes
/// per shed job — `O(n²)` in the worst case, like lock-free RUA.
///
/// # Examples
///
/// ```
/// use lfrt_core::Lbesa;
/// use lfrt_sim::UaScheduler;
///
/// assert_eq!(Lbesa::new().name(), "lbesa");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Lbesa {
    _private: (),
}

impl Lbesa {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl UaScheduler for Lbesa {
    fn name(&self) -> &str {
        "lbesa"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        let mut ops = OpsCounter::new();
        // Deadline-ordered tentative schedule of every live job.
        let mut order: Vec<JobId> = ctx.jobs.iter().map(|j| j.id).collect();
        order.sort_by(|&a, &b| {
            ops.tick();
            let ka = ctx.job(a).map(|j| j.absolute_critical_time);
            let kb = ctx.job(b).map(|j| j.absolute_critical_time);
            ka.cmp(&kb).then(a.cmp(&b))
        });
        // Shed the lowest-utility-density job until feasible.
        while !feasible(ctx, &order, &mut ops) {
            let Some(worst) = order
                .iter()
                .copied()
                .map(|id| (chain_pud(ctx, &[id], &mut ops), id))
                .min_by(|a, b| {
                    a.0.partial_cmp(&b.0)
                        .expect("finite PUDs")
                        .then(b.1.cmp(&a.1))
                })
            else {
                break;
            };
            order.retain(|&id| id != worst.1);
            ops.charge_log(order.len());
        }
        Decision {
            order,
            ops: ops.total(),
            aborts: Vec::new(),
        }
    }
}

fn feasible(ctx: &SchedulerContext<'_>, order: &[JobId], ops: &mut OpsCounter) -> bool {
    let mut elapsed = 0u64;
    for &id in order {
        ops.tick();
        let Some(view) = ctx.job(id) else { continue };
        elapsed += view.remaining;
        if ctx.now + elapsed > view.absolute_critical_time {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfrt_sim::{JobView, TaskId};
    use lfrt_tuf::Tuf;

    fn ctx_of<'a>(tufs: &'a [Tuf], jobs: &[(u64, u64)]) -> SchedulerContext<'a> {
        // jobs: (critical, remaining) — one per tuf.
        SchedulerContext {
            now: 0,
            jobs: jobs
                .iter()
                .enumerate()
                .map(|(i, &(critical, remaining))| JobView {
                    id: JobId::new(i),
                    task: TaskId::new(i),
                    arrival: 0,
                    absolute_critical_time: critical,
                    window: critical,
                    tuf: &tufs[i],
                    remaining,
                    blocked_on: None,
                    holds: Vec::new(),
                })
                .collect(),
        }
    }

    #[test]
    fn underload_is_plain_edf() {
        let tufs = vec![
            Tuf::step(1.0, 1_000).expect("valid"),
            Tuf::step(1.0, 500).expect("valid"),
        ];
        let ctx = ctx_of(&tufs, &[(1_000, 100), (500, 100)]);
        let d = Lbesa::new().schedule(&ctx);
        assert_eq!(d.order, vec![JobId::new(1), JobId::new(0)]);
    }

    #[test]
    fn overload_sheds_lowest_density_job() {
        // Three jobs, only two fit. Job 1 has the lowest utility density.
        let tufs = vec![
            Tuf::step(10.0, 1_000).expect("valid"),
            Tuf::step(1.0, 1_100).expect("valid"),
            Tuf::step(10.0, 1_200).expect("valid"),
        ];
        let ctx = ctx_of(&tufs, &[(1_000, 600), (1_100, 600), (1_200, 600)]);
        let d = Lbesa::new().schedule(&ctx);
        assert_eq!(d.order, vec![JobId::new(0), JobId::new(2)]);
    }

    #[test]
    fn sheds_repeatedly_until_feasible() {
        let tufs: Vec<Tuf> = (0..4)
            .map(|i| Tuf::step(1.0 + i as f64, 1_000).expect("valid"))
            .collect();
        // Each needs 600; only one fits by t=1000.
        let ctx = ctx_of(
            &tufs,
            &[(1_000, 600), (1_000, 600), (1_000, 600), (1_000, 600)],
        );
        let d = Lbesa::new().schedule(&ctx);
        assert_eq!(d.order.len(), 1);
        // The highest-density job (utility 4) survives.
        assert_eq!(d.order[0], JobId::new(3));
    }

    #[test]
    fn empty_context_yields_empty_schedule() {
        let tufs: Vec<Tuf> = Vec::new();
        let ctx = ctx_of(&tufs, &[]);
        let d = Lbesa::new().schedule(&ctx);
        assert!(d.order.is_empty());
    }
}
