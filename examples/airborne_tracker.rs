//! The airborne tracker scenario from the paper's motivation (its Figure 1
//! TUFs come from the AWACS surveillance application [8]): track
//! association jobs arrive in bursts as radar returns come in, share a
//! track database (queues), and carry heterogeneous TUFs — a step TUF for
//! intercept-critical tracks and a parabolic TUF for association quality,
//! which degrades the later a plot is correlated.
//!
//! The example runs the same sensor-overload scenario under lock-based and
//! lock-free RUA and prints the side-by-side utility accrual — the paper's
//! headline tradeoff, on the paper's motivating workload.
//!
//! Run with: `cargo run --release --example airborne_tracker`

use lockfree_rt::core::{RuaLockBased, RuaLockFree};
use lockfree_rt::sim::{
    AccessKind, Engine, ObjectId, OverheadModel, Segment, SharingMode, SimConfig, SimOutcome,
    TaskSpec, UaScheduler,
};
use lockfree_rt::tuf::Tuf;
use lockfree_rt::uam::{ArrivalGenerator, ArrivalTrace, RandomUamArrivals, Uam};

/// One tick = 1 µs; windows in the tens of milliseconds, like the paper's
/// "milliseconds to minutes" application class.
const HORIZON: u64 = 2_000_000; // 2 s of surveillance

fn track_db_access(object: usize) -> Segment {
    Segment::Access {
        object: ObjectId::new(object),
        kind: AccessKind::Write,
    }
}

fn build_scenario() -> Result<(Vec<TaskSpec>, Vec<ArrivalTrace>), Box<dyn std::error::Error>> {
    let mut tasks = Vec::new();
    let mut traces = Vec::new();

    // Four radar sectors produce track-association bursts: up to 3 plots
    // per 12 ms sweep; association quality decays parabolically (Figure
    // 1(b) of the paper).
    for sector in 0..4 {
        let uam = Uam::new(1, 3, 12_000)?;
        tasks.push(
            TaskSpec::builder(format!("associate-sector{sector}"))
                .tuf(Tuf::parabolic(8.0, 10_000)?)
                .uam(uam)
                .segments(vec![
                    Segment::Compute(400),
                    track_db_access(sector),
                    Segment::Compute(300),
                    track_db_access(4), // shared correlation table
                    Segment::Compute(300),
                ])
                .build()?,
        );
        traces.push(
            RandomUamArrivals::new(uam, 100 + sector as u64)
                .with_intensity(4.0)
                .generate(HORIZON),
        );
    }

    // Two intercept-critical trackers: hard steps, high importance.
    for lane in 0..2 {
        let uam = Uam::new(1, 2, 20_000)?;
        tasks.push(
            TaskSpec::builder(format!("intercept{lane}"))
                .tuf(Tuf::step(40.0, 6_000)?)
                .uam(uam)
                .segments(vec![
                    Segment::Compute(800),
                    track_db_access(4),
                    Segment::Compute(800),
                ])
                .build()?,
        );
        traces.push(
            RandomUamArrivals::new(uam, 200 + lane as u64)
                .with_intensity(4.0)
                .generate(HORIZON),
        );
    }

    // A display/update task: linearly-decreasing utility (stale pictures
    // are worth less), low importance.
    let uam = Uam::periodic(25_000);
    tasks.push(
        TaskSpec::builder("display")
            .tuf(Tuf::linear_decreasing(4.0, 24_000)?)
            .uam(uam)
            .segments(vec![
                Segment::Compute(1_500),
                track_db_access(4),
                Segment::Compute(1_500),
            ])
            .build()?,
    );
    traces.push(RandomUamArrivals::new(uam, 300).generate(HORIZON));

    Ok((tasks, traces))
}

fn run<S: UaScheduler>(
    sharing: SharingMode,
    scheduler: S,
) -> Result<SimOutcome, Box<dyn std::error::Error>> {
    let (tasks, traces) = build_scenario()?;
    Ok(Engine::new(
        tasks,
        traces,
        SimConfig::new(sharing).overhead(OverheadModel::per_op(0.2)),
    )?
    .run(scheduler))
}

fn report(label: &str, outcome: &SimOutcome) {
    println!("\n== {label} ==");
    println!(
        "released {:4}  completed {:4}  aborted {:4}",
        outcome.metrics.released(),
        outcome.metrics.completed(),
        outcome.metrics.aborted()
    );
    println!(
        "AUR {:.3}   CMR {:.3}   retries {}   blockings {}",
        outcome.metrics.aur(),
        outcome.metrics.cmr(),
        outcome.metrics.retries(),
        outcome.metrics.blockings()
    );
    // Intercept tracks are what matter most: report their meet ratio.
    let (mut met, mut released) = (0u64, 0u64);
    for (i, tm) in outcome.metrics.per_task().iter().enumerate() {
        if (4..6).contains(&i) {
            met += tm.completed;
            released += tm.released;
        }
    }
    println!(
        "intercept-critical critical-time meets: {met}/{released} ({:.1}%)",
        100.0 * met as f64 / released.max(1) as f64
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Airborne tracker: 4 association sectors + 2 intercept lanes + display");
    println!("sharing a track database, 2 s of bursty UAM arrivals (1 tick = 1 µs).");

    let lock_based = run(
        SharingMode::LockBased { access_ticks: 400 },
        RuaLockBased::new(),
    )?;
    report("lock-based RUA (r = 400 µs)", &lock_based);

    let lock_free = run(
        SharingMode::LockFree { access_ticks: 10 },
        RuaLockFree::new(),
    )?;
    report("lock-free RUA (s = 10 µs)", &lock_free);

    println!(
        "\nlock-free accrues {:.0}% more utility than lock-based on this scenario.",
        100.0 * (lock_free.metrics.aur() - lock_based.metrics.aur())
            / lock_based.metrics.aur().max(1e-9)
    );
    Ok(())
}
