//! `--trace` support: turns the flight recorder ([`lfrt_trace`]) on for a
//! run and exports its drain snapshot through the [`crate::json`] report
//! schema, so every experiment binary grows the flag for free.
//!
//! Usage inside a binary:
//!
//! ```no_run
//! let args = lfrt_bench::Args::from_env();
//! let trace = lfrt_bench::trace::Session::from_args(&args, "fig8_access_times");
//! // ... run the experiment ...
//! trace.finish(args.threads(), args.quick());
//! ```
//!
//! Everything the recorder measures is host wall-clock, so the exported
//! points put **all** data under `timing` — the report stays compatible
//! with the determinism contract (`payload()` strips it entirely) and the
//! trace document can be merged by `paper_all` like any other.

use std::path::PathBuf;
use std::time::Instant;

use lfrt_trace::TraceSnapshot;

use crate::json::{self, Json, Report};

/// A per-run recorder session driven by the shared `--trace <path>` flag.
///
/// Constructing it from args with the flag present enables the recorder;
/// [`Session::finish`] disables it, drains every ring, and writes a
/// standalone report document at the path. Without the flag both calls are
/// no-ops, so binaries can call them unconditionally.
#[derive(Debug)]
pub struct Session {
    path: Option<PathBuf>,
    experiment: String,
    started: Instant,
}

impl Session {
    /// Starts recording if `--trace <path>` was given.
    pub fn from_args(args: &crate::Args, experiment: &str) -> Session {
        let path = args.trace_path();
        if path.is_some() {
            lfrt_trace::set_enabled(true);
        }
        Session {
            path,
            experiment: experiment.to_string(),
            started: Instant::now(),
        }
    }

    /// Whether the recorder is on for this session.
    pub fn active(&self) -> bool {
        self.path.is_some()
    }

    /// Stops recording and writes the drained histograms (if active).
    ///
    /// # Panics
    ///
    /// Panics if the report cannot be written.
    pub fn finish(self, threads: usize, quick: bool) {
        let Some(path) = self.path else { return };
        lfrt_trace::set_enabled(false);
        let snap = lfrt_trace::snapshot();
        let report = report_from_snapshot(&self.experiment, &snap);
        let meta = json::RunMeta::capture(threads, quick);
        json::write_reports(&path, &[report], meta, self.started).expect("write trace report");
    }
}

fn hist_fields(prefix: &str, h: &lfrt_trace::Histogram) -> Vec<(String, Json)> {
    vec![
        (format!("{prefix}mean"), h.mean().into()),
        (format!("{prefix}min"), h.min().into()),
        (format!("{prefix}p50"), h.percentile(50.0).into()),
        (format!("{prefix}p90"), h.percentile(90.0).into()),
        (format!("{prefix}p99"), h.percentile(99.0).into()),
        (format!("{prefix}max"), h.max().into()),
        (
            format!("{prefix}buckets"),
            Json::Arr(
                h.nonzero_buckets()
                    .into_iter()
                    .map(|(ceiling, count)| Json::Arr(vec![ceiling.into(), count.into()]))
                    .collect(),
            ),
        ),
    ]
}

/// Renders a drained [`TraceSnapshot`] as one `experiments[i]` report named
/// `<experiment>_trace`: a `drain` accounting point, one point per event
/// kind, and one per instrumentation site with completed operations. All
/// numbers live under `timing` (they are host wall-clock by nature).
pub fn report_from_snapshot(experiment: &str, snap: &TraceSnapshot) -> Report {
    let mut report = Report::new(
        format!("{experiment}_trace"),
        "trace",
        format!("Flight-recorder histograms for {experiment}"),
    )
    .config("ring_capacity", lfrt_trace::RING_CAPACITY)
    .config("value_bits", u64::from(lfrt_trace::VALUE_BITS));

    report.points.push(json::Point {
        params: vec![("section".into(), "drain".into())],
        timing: vec![
            ("rings".into(), snap.rings.into()),
            ("events".into(), snap.events.into()),
            ("overwritten".into(), snap.overwritten.into()),
            ("discarded".into(), snap.discarded.into()),
        ],
        ..Default::default()
    });

    for kind in &snap.kinds {
        let mut timing: Vec<(String, Json)> = vec![("count".into(), kind.count.into())];
        // For cas_success the value histogram holds the unpacked latency.
        let prefix = if kind.retries.is_some() {
            "latency_ns_"
        } else {
            "value_"
        };
        timing.extend(hist_fields(prefix, &kind.value));
        if let Some(retries) = &kind.retries {
            timing.extend(hist_fields("retries_", retries));
        }
        report.points.push(json::Point {
            params: vec![
                ("section".into(), "kind".into()),
                ("kind".into(), kind.kind.name().into()),
            ],
            timing,
            ..Default::default()
        });
    }

    for site in &snap.sites {
        let mut timing: Vec<(String, Json)> = vec![("ops".into(), site.ops.into())];
        timing.extend(hist_fields("latency_ns_", &site.latency_ns));
        timing.extend(hist_fields("retries_", &site.retries));
        report.points.push(json::Point {
            params: vec![
                ("section".into(), "site".into()),
                ("site".into(), site.site.name().into()),
            ],
            timing,
            ..Default::default()
        });
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfrt_trace::{CasOp, EventKind, Site};

    #[test]
    fn snapshot_renders_drain_kind_and_site_points() {
        let _guard = lfrt_trace::tests_serialize();
        lfrt_trace::set_enabled(true);
        lfrt_trace::drain();
        let mut op = CasOp::start(Site::QueueEnqueue);
        op.attempt();
        op.retry();
        op.attempt();
        op.success();
        lfrt_trace::emit(EventKind::EpochPin, Site::Epoch, 1);
        lfrt_trace::set_enabled(false);
        let snap = lfrt_trace::snapshot();

        let report = report_from_snapshot("unit", &snap);
        assert_eq!(report.experiment, "unit_trace");
        let rendered = report.to_json().to_string_pretty();
        assert!(rendered.contains("\"section\": \"drain\""));
        assert!(rendered.contains("\"kind\": \"cas_success\""));
        assert!(rendered.contains("\"kind\": \"cas_retry\""));
        assert!(rendered.contains("\"kind\": \"epoch_pin\""));
        assert!(rendered.contains("\"site\": \"queue_enqueue\""));
        assert!(rendered.contains("latency_ns_p99"));
        assert!(rendered.contains("retries_max"));
        // Everything trace-derived is under timing: the deterministic
        // payload of a trace report must be timing-free.
        let doc = json::document(
            &[report],
            &json::RunMeta {
                git_rev: "test".into(),
                threads: 1,
                quick: true,
                duration_secs: 0.0,
            },
        );
        let payload = json::payload(&doc).to_string_pretty();
        assert!(!payload.contains("latency_ns_p99"));
        assert!(!payload.contains("\"count\""));
    }
}
