use crate::{Uam, UamViolation};

/// A concrete, sorted sequence of arrival times for one task.
///
/// Traces are the bridge between the analytic model and the simulator: a
/// generator produces a trace, [`ArrivalTrace::conforms_to`] certifies it
/// against a [`Uam`], and only then do the paper's analytic bounds
/// legitimately apply to a simulation driven by it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ArrivalTrace {
    times: Vec<u64>,
}

impl ArrivalTrace {
    /// Creates a trace from arrival times, sorting them.
    pub fn new(mut times: Vec<u64>) -> Self {
        times.sort_unstable();
        Self { times }
    }

    /// An empty trace.
    pub fn empty() -> Self {
        Self::default()
    }

    /// The sorted arrival times.
    pub fn times(&self) -> &[u64] {
        &self.times
    }

    /// Number of arrivals in the trace.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the trace holds no arrivals.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Checks the *maximum* constraint of the UAM: every **consecutive**
    /// window `[k·W, (k+1)·W)` contains at most `a` arrivals.
    ///
    /// The paper's Theorem 2 proof counts interference per consecutive
    /// window (`W_j^1`, `W_j^2`, …): the adversary may place `a` arrivals at
    /// the end of one window and `a` more at the start of the next, which is
    /// why `⌈C_i/W_j⌉ + 1` windows can each contribute a full burst. That
    /// pattern is legal under consecutive windows but not under sliding
    /// ones, so this — the consecutive-window check — is the model the
    /// bounds are proved against. Use [`ArrivalTrace::conforms_sliding`] for
    /// the strictly stronger sliding-window interpretation.
    ///
    /// # Errors
    ///
    /// Returns the first [`UamViolation`] found.
    pub fn conforms_to(&self, uam: &Uam) -> Result<(), UamViolation> {
        let w = uam.window();
        let a = uam.max_arrivals();
        let mut idx = 0usize;
        while idx < self.times.len() {
            let window_start = (self.times[idx] / w) * w;
            let window_end = window_start + w;
            let hi = self.times.partition_point(|&t| t < window_end);
            let observed = u32::try_from(hi - idx).unwrap_or(u32::MAX);
            if observed > a {
                return Err(UamViolation {
                    window_start,
                    observed,
                    allowed: a,
                });
            }
            idx = hi;
        }
        Ok(())
    }

    /// Checks the sliding-window interpretation of the UAM maximum: **any**
    /// window of length `W` contains at most `a` arrivals.
    ///
    /// Only windows anchored at arrival times need checking: the count of a
    /// window `[t, t + W)` can only reach a local maximum when `t` is an
    /// arrival time, so a two-pointer sweep over arrivals is exhaustive.
    /// Every trace passing this check also passes [`ArrivalTrace::conforms_to`].
    ///
    /// # Errors
    ///
    /// Returns the first [`UamViolation`] found.
    pub fn conforms_sliding(&self, uam: &Uam) -> Result<(), UamViolation> {
        let w = uam.window();
        let a = uam.max_arrivals();
        let mut lo = 0usize;
        for hi in 0..self.times.len() {
            // Maintain the window [times[hi] - W + 1, times[hi]] — equivalently
            // all arrivals t with times[hi] - t < W.
            while self.times[hi] - self.times[lo] >= w {
                lo += 1;
            }
            let observed = u32::try_from(hi - lo + 1).unwrap_or(u32::MAX);
            if observed > a {
                return Err(UamViolation {
                    window_start: self.times[lo],
                    observed,
                    allowed: a,
                });
            }
        }
        Ok(())
    }

    /// Checks the *minimum* constraint of the UAM over `[0, horizon)`: every
    /// aligned window `[k·W, (k+1)·W)` fully inside the horizon contains at
    /// least `l` arrivals.
    ///
    /// The minimum constraint is a liveness property; per the paper it is
    /// used only to lower-bound long-run job counts (Lemma 4), so checking
    /// aligned windows suffices.
    pub fn satisfies_min(&self, uam: &Uam, horizon: u64) -> bool {
        let w = uam.window();
        let l = u64::from(uam.min_arrivals());
        if l == 0 {
            return true;
        }
        let full_windows = horizon / w;
        for k in 0..full_windows {
            let start = k * w;
            let end = start + w;
            let lo = self.times.partition_point(|&t| t < start);
            let hi = self.times.partition_point(|&t| t < end);
            if ((hi - lo) as u64) < l {
                return false;
            }
        }
        true
    }

    /// Counts arrivals within `[start, end)`.
    pub fn count_in(&self, start: u64, end: u64) -> usize {
        let lo = self.times.partition_point(|&t| t < start);
        let hi = self.times.partition_point(|&t| t < end);
        hi - lo
    }

    /// Writes the arrival times as one-per-line text (a single-column CSV).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`.
    pub fn write_csv<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<()> {
        for &t in &self.times {
            writeln!(writer, "{t}")?;
        }
        Ok(())
    }

    /// Parses a trace from one-arrival-per-line text, as written by
    /// [`ArrivalTrace::write_csv`]. Blank lines are skipped; times are
    /// re-sorted.
    ///
    /// # Errors
    ///
    /// Returns `io::ErrorKind::InvalidData` on non-numeric lines.
    pub fn read_csv<R: std::io::BufRead>(reader: R) -> std::io::Result<Self> {
        let mut times = Vec::new();
        for line in reader.lines() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            times.push(trimmed.parse::<u64>().map_err(|_| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("not an arrival time: {trimmed:?}"),
                )
            })?);
        }
        Ok(Self::new(times))
    }

    /// Merges another trace into this one, keeping times sorted.
    pub fn merge(&mut self, other: &ArrivalTrace) {
        self.times.extend_from_slice(&other.times);
        self.times.sort_unstable();
    }
}

impl FromIterator<u64> for ArrivalTrace {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

impl Extend<u64> for ArrivalTrace {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        self.times.extend(iter);
        self.times.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uam(a: u32, w: u64) -> Uam {
        Uam::new(0, a, w).expect("valid")
    }

    #[test]
    fn empty_trace_conforms() {
        assert!(ArrivalTrace::empty().conforms_to(&uam(1, 10)).is_ok());
        assert!(ArrivalTrace::empty().conforms_sliding(&uam(1, 10)).is_ok());
    }

    #[test]
    fn burst_within_limit_conforms() {
        let t = ArrivalTrace::new(vec![0, 0, 0]);
        assert!(t.conforms_to(&uam(3, 10)).is_ok());
        assert!(t.conforms_to(&uam(2, 10)).is_err());
        assert!(t.conforms_sliding(&uam(3, 10)).is_ok());
        assert!(t.conforms_sliding(&uam(2, 10)).is_err());
    }

    #[test]
    fn violation_reports_window() {
        let t = ArrivalTrace::new(vec![0, 5, 9, 20]);
        let v = t.conforms_to(&uam(2, 10)).unwrap_err();
        assert_eq!(v.window_start, 0);
        assert_eq!(v.observed, 3);
        assert_eq!(v.allowed, 2);
    }

    #[test]
    fn sliding_window_is_half_open() {
        // Arrivals exactly W apart are never in the same sliding window.
        let t = ArrivalTrace::new(vec![0, 10, 20, 30]);
        assert!(t.conforms_sliding(&uam(1, 10)).is_ok());
        // 9 apart: same window.
        let t2 = ArrivalTrace::new(vec![0, 9]);
        assert!(t2.conforms_sliding(&uam(1, 10)).is_err());
    }

    #[test]
    fn back_to_back_burst_separates_the_two_checks() {
        // The adversarial pattern of Theorem 2's proof: a arrivals at the end
        // of window [0, 10) and a at the start of window [10, 20) — 2a
        // arrivals within one tick of each other. Legal per consecutive
        // windows (the model the bounds are proved against), illegal per the
        // sliding interpretation.
        let t = ArrivalTrace::new(vec![9, 9, 10, 10]);
        assert!(t.conforms_to(&uam(2, 10)).is_ok());
        assert!(t.conforms_sliding(&uam(2, 10)).is_err());
    }

    #[test]
    fn sliding_implies_consecutive() {
        let m = uam(2, 10);
        for times in [
            vec![0, 4, 12, 13],
            vec![0, 9, 10, 19, 20],
            vec![3, 3, 13, 13],
        ] {
            let t = ArrivalTrace::new(times);
            if t.conforms_sliding(&m).is_ok() {
                assert!(t.conforms_to(&m).is_ok());
            }
        }
    }

    #[test]
    fn satisfies_min_checks_aligned_windows() {
        let m = Uam::new(1, 3, 10).unwrap();
        let t = ArrivalTrace::new(vec![0, 10, 20]);
        assert!(t.satisfies_min(&m, 30));
        let gap = ArrivalTrace::new(vec![0, 20]);
        assert!(!gap.satisfies_min(&m, 30)); // window [10, 20) empty
        assert!(gap.satisfies_min(&m, 10));
    }

    #[test]
    fn count_in_half_open() {
        let t = ArrivalTrace::new(vec![0, 5, 10]);
        assert_eq!(t.count_in(0, 10), 2);
        assert_eq!(t.count_in(0, 11), 3);
        assert_eq!(t.count_in(5, 5), 0);
    }

    #[test]
    fn merge_keeps_sorted() {
        let mut a = ArrivalTrace::new(vec![5, 1]);
        a.merge(&ArrivalTrace::new(vec![3]));
        assert_eq!(a.times(), &[1, 3, 5]);
    }

    #[test]
    fn csv_round_trip() {
        let trace = ArrivalTrace::new(vec![5, 1, 9, 9]);
        let mut buffer = Vec::new();
        trace.write_csv(&mut buffer).expect("write");
        let parsed = ArrivalTrace::read_csv(buffer.as_slice()).expect("read");
        assert_eq!(parsed, trace);
        assert!(ArrivalTrace::read_csv(
            "12
nope
"
            .as_bytes()
        )
        .is_err());
    }

    #[test]
    fn from_iterator_sorts() {
        let t: ArrivalTrace = [4u64, 2, 9].into_iter().collect();
        assert_eq!(t.times(), &[2, 4, 9]);
    }
}
