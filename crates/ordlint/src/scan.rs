//! Atomic-access-site extraction.
//!
//! A single pass over the cleaned text of one file finds every call of an
//! atomic method (`load`, `store`, `swap`, `compare_exchange[_weak]`,
//! `fetch_*`, and their `_ord` twins from `lfrt-interleave`) plus free
//! `fence`/`compiler_fence` calls, records the enclosing function and the
//! receiver expression, and parses the literal `Ordering` tokens out of the
//! argument list.
//!
//! A call **qualifies as a site only if its arguments contain at least one
//! literal ordering token** (`Relaxed`, `Acquire`, `Release`, `AcqRel`,
//! `SeqCst`). Calls passing orderings through variables — the vendored
//! crossbeam stand-in's internals, the SC-only model operations — carry no
//! local evidence to lint and are skipped by design; the weak-memory
//! explorer covers them dynamically.
//!
//! `#[cfg(test)]` items are skipped entirely: the lint targets production
//! code, and test bodies deliberately exercise odd orderings.

use crate::source::SourceFile;
use lfrt_srcscan::lex::{is_ident_char, matching, prev_sig, receiver_chain};

/// The access class of a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A plain atomic load.
    Load,
    /// A plain atomic store.
    Store,
    /// An unconditional read-modify-write returning the old value.
    Swap,
    /// A compare-and-swap (success + failure orderings).
    Cas,
    /// A `fetch_*` read-modify-write.
    Rmw,
    /// A free `fence`/`compiler_fence` call.
    Fence,
}

impl Kind {
    /// Whether the site can make a value visible to other threads.
    pub fn is_store_like(self) -> bool {
        matches!(self, Kind::Store | Kind::Swap | Kind::Cas | Kind::Rmw)
    }

    /// Whether the site observes values written by other threads.
    pub fn is_load_like(self) -> bool {
        matches!(self, Kind::Load | Kind::Swap | Kind::Cas | Kind::Rmw)
    }

    /// Stable lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Kind::Load => "load",
            Kind::Store => "store",
            Kind::Swap => "swap",
            Kind::Cas => "cas",
            Kind::Rmw => "rmw",
            Kind::Fence => "fence",
        }
    }
}

/// The five literal ordering tokens the scanner recognizes.
pub const ORDER_TOKENS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One qualifying atomic access site.
#[derive(Debug, Clone)]
pub struct Site {
    /// Byte offset of the method/function name in the file.
    pub offset: usize,
    /// 1-based line of the site.
    pub line: usize,
    /// Name of the enclosing function (`""` at item level).
    pub function: String,
    /// Normalized receiver chain (`self.slots[_].sequence`); empty for
    /// fences.
    pub receiver: String,
    /// Leading identifier of the receiver chain (`self`, `node`, ...).
    pub base_ident: String,
    /// The method or function identifier as written.
    pub method: String,
    /// Access class.
    pub kind: Kind,
    /// Literal ordering tokens, in argument order. For CAS sites the first
    /// is the success ordering and the second the failure ordering.
    pub orderings: Vec<String>,
    /// Cleaned argument text (parens stripped).
    pub args: String,
    /// Byte offset just past the closing paren of the call.
    pub args_end: usize,
}

/// Span of one function body in the cleaned text.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Byte offset of the opening `{`.
    pub start: usize,
    /// Byte offset just past the closing `}`.
    pub end: usize,
}

/// Everything the scanner extracts from one file.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// Qualifying sites, in source order.
    pub sites: Vec<Site>,
    /// Function body spans, in order of their closing brace.
    pub functions: Vec<FnSpan>,
}

fn method_kind(name: &str) -> Option<Kind> {
    Some(match name {
        "load" | "load_ord" => Kind::Load,
        "store" | "store_ord" => Kind::Store,
        "swap" | "swap_ord" => Kind::Swap,
        "compare_exchange" | "compare_exchange_weak" | "compare_exchange_ord" => Kind::Cas,
        "fetch_add" | "fetch_sub" | "fetch_and" | "fetch_or" | "fetch_xor" | "fetch_nand"
        | "fetch_max" | "fetch_min" | "fetch_update" | "fetch_add_ord" => Kind::Rmw,
        _ => return None,
    })
}

/// Scans one cleaned file for qualifying sites and function spans.
pub fn scan_file(sf: &SourceFile) -> ScanResult {
    let bytes = sf.clean.as_bytes();
    let mut result = ScanResult::default();
    // Function-body stack: (name, depth of the body's braces).
    let mut fn_stack: Vec<(String, usize, usize)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let mut awaiting_fn_name = false;
    // `#[cfg(test)]` skip: once armed, the next braced item is skipped.
    let mut skip_pending = false;
    let mut skip_depth: Option<usize> = None;
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'{' => {
                depth += 1;
                let pending = pending_fn.take();
                if skip_pending {
                    skip_pending = false;
                    skip_depth = Some(depth);
                } else if let Some(name) = pending {
                    fn_stack.push((name, depth, i));
                }
                i += 1;
            }
            b'}' => {
                if let Some((name, d, start)) = fn_stack.last().cloned() {
                    if d == depth {
                        fn_stack.pop();
                        if skip_depth.is_none() {
                            result.functions.push(FnSpan {
                                name,
                                start,
                                end: i + 1,
                            });
                        }
                    }
                }
                if skip_depth == Some(depth) {
                    skip_depth = None;
                }
                depth = depth.saturating_sub(1);
                i += 1;
            }
            b';' => {
                // A trait method declaration ends without a body.
                pending_fn = None;
                i += 1;
            }
            b'#' if sf.clean[i..].starts_with("#[cfg(test)]") && skip_depth.is_none() => {
                skip_pending = true;
                i += "#[cfg(test)]".len();
            }
            _ if is_ident_char(b) && (i == 0 || !is_ident_char(bytes[i - 1])) => {
                let start = i;
                while i < bytes.len() && is_ident_char(bytes[i]) {
                    i += 1;
                }
                let word = &sf.clean[start..i];
                if awaiting_fn_name {
                    awaiting_fn_name = false;
                    pending_fn = Some(word.to_string());
                    continue;
                }
                if word == "fn" {
                    awaiting_fn_name = true;
                    continue;
                }
                if skip_depth.is_some() {
                    continue;
                }
                let preceded_by_dot = prev_sig(bytes, start) == Some(b'.');
                if let Some(kind) = method_kind(word) {
                    if preceded_by_dot {
                        if let Some(site) = build_site(sf, start, i, word, kind, &fn_stack) {
                            result.sites.push(site);
                        }
                    }
                } else if (word == "fence" || word == "compiler_fence") && !preceded_by_dot {
                    if let Some(site) = build_site(sf, start, i, word, Kind::Fence, &fn_stack) {
                        result.sites.push(site);
                    }
                }
            }
            _ => i += 1,
        }
    }
    result
}

fn build_site(
    sf: &SourceFile,
    name_start: usize,
    name_end: usize,
    method: &str,
    kind: Kind,
    fn_stack: &[(String, usize, usize)],
) -> Option<Site> {
    let bytes = sf.clean.as_bytes();
    // The call's opening paren (generic turbofish never appears on these).
    let mut open = name_end;
    while open < bytes.len() && bytes[open].is_ascii_whitespace() {
        open += 1;
    }
    if bytes.get(open) != Some(&b'(') {
        return None;
    }
    let close = matching(bytes, open, b'(', b')')?;
    let args = sf.clean[open + 1..close].to_string();
    let orderings: Vec<String> = ordering_tokens(&args);
    if orderings.is_empty() {
        return None;
    }
    let (receiver, base_ident) = if kind == Kind::Fence {
        (String::new(), String::new())
    } else {
        receiver_chain(&sf.clean, name_start)
    };
    Some(Site {
        offset: name_start,
        line: sf.line_of(name_start),
        function: fn_stack
            .last()
            .map(|(n, _, _)| n.clone())
            .unwrap_or_default(),
        receiver,
        base_ident,
        method: method.to_string(),
        kind,
        orderings,
        args,
        args_end: close + 1,
    })
}

/// Literal ordering tokens in `text`, in order of appearance.
pub fn ordering_tokens(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if is_ident_char(bytes[i]) && (i == 0 || !is_ident_char(bytes[i - 1])) {
            let start = i;
            while i < bytes.len() && is_ident_char(bytes[i]) {
                i += 1;
            }
            let word = &text[start..i];
            if ORDER_TOKENS.contains(&word) {
                out.push(word.to_string());
            }
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> ScanResult {
        scan_file(&SourceFile::new("t.rs", src))
    }

    #[test]
    fn finds_qualifying_sites_with_receiver_and_function() {
        let src = "
impl S {
    fn push(&self) {
        let top = self.top.load(Acquire, guard);
        self.slots[tail & mask].sequence.store(1, Ordering::Release);
        plain.store_plain(1);
        untracked.load(order);
    }
}
";
        let r = scan(src);
        assert_eq!(r.sites.len(), 2, "{:?}", r.sites);
        assert_eq!(r.sites[0].function, "push");
        assert_eq!(r.sites[0].receiver, "self.top");
        assert_eq!(r.sites[0].base_ident, "self");
        assert_eq!(r.sites[0].kind, Kind::Load);
        assert_eq!(r.sites[0].orderings, ["Acquire"]);
        assert_eq!(r.sites[1].receiver, "self.slots[_].sequence");
        assert_eq!(r.sites[1].orderings, ["Release"]);
        assert_eq!(r.functions.len(), 1);
    }

    #[test]
    fn cas_orderings_in_argument_order() {
        let src = "fn f() { self.top.compare_exchange(top, new, Release, Relaxed, guard); }";
        let r = scan(src);
        assert_eq!(r.sites.len(), 1);
        assert_eq!(r.sites[0].kind, Kind::Cas);
        assert_eq!(r.sites[0].orderings, ["Release", "Relaxed"]);
    }

    #[test]
    fn free_fence_but_not_fn_definition() {
        let src = "
fn fence_helper() { fence(Ordering::Release); }
pub fn fence(order: Ordering) { other(order); }
fn qualified() { std::sync::atomic::fence(Ordering::Acquire); }
";
        let r = scan(src);
        assert_eq!(r.sites.len(), 2, "{:?}", r.sites);
        assert!(r.sites.iter().all(|s| s.kind == Kind::Fence));
        assert_eq!(r.sites[0].function, "fence_helper");
        assert_eq!(r.sites[1].function, "qualified");
    }

    #[test]
    fn multiline_receiver_chain() {
        let src =
            "fn f() { tail_ref\n    .next\n    .compare_exchange(a, b, Release, Relaxed, g); }";
        let r = scan(src);
        assert_eq!(r.sites[0].receiver, "tail_ref.next");
        assert_eq!(r.sites[0].base_ident, "tail_ref");
    }

    #[test]
    fn deref_chain_receiver() {
        let src = "fn f() { node.deref().next.load(Relaxed, guard); }";
        let r = scan(src);
        assert_eq!(r.sites[0].receiver, "node.deref().next");
        assert_eq!(r.sites[0].base_ident, "node");
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let src = "
fn real() { a.load(Relaxed); }
#[cfg(test)]
mod tests {
    fn t() { b.store(1, SeqCst); }
}
fn after() { c.swap(2, AcqRel); }
";
        let r = scan(src);
        let fns: Vec<&str> = r.sites.iter().map(|s| s.function.as_str()).collect();
        assert_eq!(fns, ["real", "after"], "{:?}", r.sites);
    }

    #[test]
    fn path_prefix_is_not_part_of_the_receiver() {
        let src = "fn f() { Ordering::Relaxed; epoch::pin().top.load(Acquire, g); }";
        let r = scan(src);
        assert_eq!(r.sites.len(), 1);
        assert_eq!(r.sites[0].receiver, "pin().top");
    }

    #[test]
    fn comments_and_strings_never_produce_sites() {
        let src = "
// a.load(Relaxed)
fn f() {
    let s = \"b.store(1, SeqCst)\";
    real.load(Acquire);
}
";
        let r = scan(src);
        assert_eq!(r.sites.len(), 1);
        assert_eq!(r.sites[0].receiver, "real");
    }
}
