//! Cross-structure stress tests: several threads hammer every concurrent
//! structure at once for a bounded number of operations, checking global
//! conservation invariants at the end. Catches reclamation and ordering
//! regressions that single-structure tests can miss.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lfrt_lockfree::{
    nbw_register, AtomicSnapshot, BoundedMpmcQueue, CasRegister, LockFreeList, LockFreeQueue,
    TreiberStack,
};

const THREADS: usize = 4;
const OPS_PER_THREAD: u64 = 10_000;

#[test]
fn mixed_structure_stress_conserves_everything() {
    let queue = Arc::new(LockFreeQueue::new());
    let stack = Arc::new(TreiberStack::new());
    let mpmc = Arc::new(BoundedMpmcQueue::new(128));
    let list = Arc::new(LockFreeList::new());
    let counter = Arc::new(CasRegister::new(0));
    let snapshot = Arc::new(AtomicSnapshot::new(THREADS));
    let (mut nbw_writer, nbw_reader) = nbw_register((0u64, 0u64));

    let produced = Arc::new(AtomicU64::new(0));
    let consumed = Arc::new(AtomicU64::new(0));

    let workers: Vec<_> = (0..THREADS)
        .map(|w| {
            let queue = Arc::clone(&queue);
            let stack = Arc::clone(&stack);
            let mpmc = Arc::clone(&mpmc);
            let list = Arc::clone(&list);
            let counter = Arc::clone(&counter);
            let snapshot = Arc::clone(&snapshot);
            let nbw_reader = nbw_reader.clone();
            let produced = Arc::clone(&produced);
            let consumed = Arc::clone(&consumed);
            std::thread::spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    let tag = (w as u64) << 32 | i;
                    match i % 5 {
                        0 => {
                            queue.enqueue(tag);
                            produced.fetch_add(1, Ordering::Relaxed);
                            if queue.dequeue().is_some() {
                                consumed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        1 => {
                            stack.push(tag);
                            produced.fetch_add(1, Ordering::Relaxed);
                            if stack.pop().is_some() {
                                consumed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        2 => {
                            if mpmc.push(tag).is_ok() {
                                produced.fetch_add(1, Ordering::Relaxed);
                            }
                            if mpmc.pop().is_some() {
                                consumed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        3 => {
                            list.insert(tag);
                            // Concurrent removers may already have won the
                            // race, so no outcome is guaranteed — just
                            // exercise both paths.
                            let _ = list.contains(tag);
                            let _ = list.remove(tag);
                            list.remove(tag);
                        }
                        _ => {
                            counter.update(|v| v + 1);
                            snapshot.write(w, i as u32);
                            let view = snapshot.scan();
                            assert_eq!(view.len(), THREADS);
                            let (a, b) = nbw_reader.read();
                            assert_eq!(b, 2 * a, "torn NBW read");
                        }
                    }
                }
            })
        })
        .collect();

    // The NBW writer runs on the main thread concurrently.
    for i in 0..OPS_PER_THREAD {
        nbw_writer.write((i, 2 * i));
    }
    for h in workers {
        h.join().expect("worker panicked");
    }

    // Drain and check conservation of the pipes.
    let mut leftover = 0u64;
    while queue.dequeue().is_some() {
        leftover += 1;
    }
    while stack.pop().is_some() {
        leftover += 1;
    }
    while mpmc.pop().is_some() {
        leftover += 1;
    }
    assert_eq!(
        produced.load(Ordering::Relaxed),
        consumed.load(Ordering::Relaxed) + leftover,
        "every produced element was consumed exactly once or is still queued"
    );
    // Counter: every update of branch 4 landed.
    assert_eq!(
        counter.load(),
        (THREADS as u64) * OPS_PER_THREAD.div_ceil(5)
    );
    // List drained by its own branch.
    assert!(list.is_empty(), "leftover keys: {:?}", list.to_vec());
}
