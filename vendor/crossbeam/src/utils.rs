//! Contention-engineering utilities: [`CachePadded`] and [`Backoff`],
//! mirroring `crossbeam_utils`.
//!
//! Both exist to shave cycles off the lock-free hot paths the paper's
//! Theorem 3 trades against lock-based access times: `CachePadded` stops
//! false sharing (two hot atomics on one line ping-ponging between cores),
//! and `Backoff` stops contended CAS loops from hammering a line that a
//! winner is about to release.

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes so it occupies its own cache
/// line(s).
///
/// 128 rather than 64 because modern x86 prefetches cache lines in pairs
/// (and Apple/ARM big cores use 128-byte lines outright); this is the same
/// constant `crossbeam_utils::CachePadded` uses on those targets.
///
/// # Examples
///
/// ```
/// use crossbeam::utils::CachePadded;
/// use std::sync::atomic::AtomicUsize;
///
/// let head = CachePadded::new(AtomicUsize::new(0));
/// let tail = CachePadded::new(AtomicUsize::new(0));
/// assert!(std::mem::align_of_val(&head) >= 128);
/// assert_eq!(*head.into_inner().get_mut(), 0);
/// let _ = tail;
/// ```
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

/// Exponential spin-then-yield backoff for contended retry loops.
///
/// `spin()` busy-waits `2^step` pauses (capped at `2^SPIN_LIMIT`);
/// `snooze()` does the same but switches to `thread::yield_now` once
/// spinning stops paying — the crossbeam policy. The backoff performs **no
/// atomic accesses on shared algorithm state**, so inserting it between two
/// passes of a CAS loop is invisible to the interleaving explorer's step
/// structure (DESIGN.md §6b): it changes *when* a retry happens, never
/// *what* it does. (Each step does check the flight recorder's enable flag
/// and, when tracing is on, logs a `backoff_spin`/`backoff_yield` event to
/// the thread's private ring — trace-local state, outside every model;
/// DESIGN.md §7.)
///
/// # Examples
///
/// ```
/// use crossbeam::utils::Backoff;
///
/// let backoff = Backoff::new();
/// for _ in 0..12 {
///     backoff.spin(); // bounded: saturates at 2^6 pauses, never completes
/// }
/// assert!(!backoff.is_completed());
/// for _ in 0..12 {
///     backoff.snooze(); // escalates past spinning to yield_now
/// }
/// assert!(backoff.is_completed());
/// ```
#[derive(Debug, Default)]
pub struct Backoff {
    step: std::cell::Cell<u32>,
}

impl Backoff {
    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;

    /// Fresh backoff at step zero (first `spin` pauses once).
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets to step zero.
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Busy-waits `2^step` pauses, bounded by `2^6`, and advances the step.
    ///
    /// Use in lock-free retry loops where another thread's *progress* (not
    /// its descheduling) unblocks us: the wait stays on-core and bounded.
    #[inline]
    pub fn spin(&self) {
        let step = self.step.get().min(Self::SPIN_LIMIT);
        for _ in 0..1u32 << step {
            std::hint::spin_loop();
        }
        lfrt_trace::emit(
            lfrt_trace::EventKind::BackoffSpin,
            lfrt_trace::Site::Other,
            1u64 << step,
        );
        if self.step.get() <= Self::SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Like [`Backoff::spin`] up to the spin limit, then yields the thread.
    ///
    /// Use when waiting on another thread that may need our core to make
    /// progress (e.g. a full/empty bounded queue).
    #[inline]
    pub fn snooze(&self) {
        let step = self.step.get();
        if step <= Self::SPIN_LIMIT {
            for _ in 0..1u32 << step {
                std::hint::spin_loop();
            }
            lfrt_trace::emit(
                lfrt_trace::EventKind::BackoffSpin,
                lfrt_trace::Site::Other,
                1u64 << step,
            );
        } else {
            std::thread::yield_now();
            lfrt_trace::emit(
                lfrt_trace::EventKind::BackoffYield,
                lfrt_trace::Site::Other,
                step as u64,
            );
        }
        if step <= Self::YIELD_LIMIT {
            self.step.set(step + 1);
        }
    }

    /// Whether backoff has saturated (callers blocking on external progress
    /// should switch to parking/OS waiting instead of spinning further).
    pub fn is_completed(&self) -> bool {
        self.step.get() > Self::YIELD_LIMIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::mem;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn cache_padded_is_line_aligned_and_sized() {
        assert_eq!(mem::align_of::<CachePadded<u8>>(), 128);
        assert_eq!(mem::size_of::<CachePadded<u8>>(), 128);
        assert_eq!(mem::align_of::<CachePadded<[u8; 200]>>(), 128);
        assert_eq!(mem::size_of::<CachePadded<[u8; 200]>>(), 256);
    }

    #[test]
    fn cache_padded_derefs_transparently() {
        let mut padded = CachePadded::new(AtomicUsize::new(7));
        assert_eq!(*padded.get_mut(), 7);
        *padded.get_mut() = 9;
        assert_eq!(padded.into_inner().into_inner(), 9);
    }

    #[test]
    fn adjacent_padded_values_share_no_line() {
        let pair = [CachePadded::new(0u8), CachePadded::new(0u8)];
        let a = &pair[0].value as *const u8 as usize;
        let b = &pair[1].value as *const u8 as usize;
        assert!(b.abs_diff(a) >= 128);
    }

    #[test]
    fn backoff_spin_is_bounded_and_snooze_completes() {
        let b = Backoff::new();
        for _ in 0..64 {
            b.spin(); // saturates at 2^SPIN_LIMIT pauses; never "completed"
        }
        assert!(!b.is_completed());
        b.reset();
        for _ in 0..64 {
            b.snooze();
        }
        assert!(b.is_completed());
    }

    /// The elimination layer's entry trigger (PR 10) and its exchanger spin
    /// window are calibrated against these exact limits; a vendor edit that
    /// moves them must also revisit `lockfree/src/elimination.rs`.
    #[test]
    fn backoff_limits_are_pinned() {
        assert_eq!(Backoff::SPIN_LIMIT, 6);
        assert_eq!(Backoff::YIELD_LIMIT, 10);
    }

    /// `is_completed` flips on exactly the `YIELD_LIMIT + 1`-th snooze:
    /// steps 0..=YIELD_LIMIT each advance, so the step counter first
    /// exceeds the limit after that many calls and never before.
    #[test]
    fn snooze_completes_exactly_past_yield_limit() {
        let b = Backoff::new();
        for i in 0..=Backoff::YIELD_LIMIT {
            assert!(!b.is_completed(), "completed too early at snooze {i}");
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed(), "reset must re-arm the threshold");
    }

    /// `spin` saturates at `SPIN_LIMIT + 1` and stops advancing, so a
    /// spin-only loop can never reach the completion threshold — completion
    /// is a *snooze* signal. Saturated spin history must not shorten the
    /// snooze threshold's remaining distance by more than its step count.
    #[test]
    fn spin_alone_never_completes() {
        let b = Backoff::new();
        for _ in 0..4 * (Backoff::YIELD_LIMIT + 1) {
            b.spin();
        }
        assert!(!b.is_completed());
        // From spin saturation (step = SPIN_LIMIT + 1), the remaining
        // snoozes to completion are YIELD_LIMIT - SPIN_LIMIT.
        for _ in 0..(Backoff::YIELD_LIMIT - Backoff::SPIN_LIMIT) {
            b.snooze();
        }
        assert!(b.is_completed());
    }
}
