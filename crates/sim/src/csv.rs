//! Plain-CSV export/import for experiment pipelines — job records out,
//! arrival traces in/out — with no dependency beyond `std`.

use std::io::{self, BufRead, Write};

use crate::ids::{JobId, TaskId};
use crate::job::JobRecord;

/// Writes job records as CSV with a header row.
///
/// Columns: `job,task,arrival,resolved_at,completed,utility,retries,blockings,preemptions`.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
///
/// # Examples
///
/// ```
/// use lfrt_sim::csv::write_records;
///
/// # fn main() -> std::io::Result<()> {
/// let mut out = Vec::new();
/// write_records(&mut out, &[])?;
/// assert!(String::from_utf8(out).expect("utf8").starts_with("job,task,"));
/// # Ok(())
/// # }
/// ```
pub fn write_records<W: Write>(mut writer: W, records: &[JobRecord]) -> io::Result<()> {
    writeln!(
        writer,
        "job,task,arrival,resolved_at,completed,utility,retries,blockings,preemptions"
    )?;
    for r in records {
        writeln!(
            writer,
            "{},{},{},{},{},{},{},{},{}",
            r.id.index(),
            r.task.index(),
            r.arrival,
            r.resolved_at,
            r.completed,
            r.utility,
            r.retries,
            r.blockings,
            r.preemptions
        )?;
    }
    Ok(())
}

/// Parses job records from the CSV produced by [`write_records`].
///
/// # Errors
///
/// Returns `io::ErrorKind::InvalidData` on malformed rows, besides
/// propagating reader errors.
pub fn read_records<R: BufRead>(reader: R) -> io::Result<Vec<JobRecord>> {
    let mut records = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if lineno == 0 || line.trim().is_empty() {
            continue; // header / trailing newline
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 9 {
            return Err(bad(lineno, "expected 9 fields"));
        }
        let parse_u64 = |i: usize| {
            fields[i]
                .trim()
                .parse::<u64>()
                .map_err(|_| bad(lineno, "integer"))
        };
        let parse_usize = |i: usize| {
            fields[i]
                .trim()
                .parse::<usize>()
                .map_err(|_| bad(lineno, "index"))
        };
        records.push(JobRecord {
            id: JobId::new(parse_usize(0)?),
            task: TaskId::new(parse_usize(1)?),
            arrival: parse_u64(2)?,
            resolved_at: parse_u64(3)?,
            completed: match fields[4].trim() {
                "true" => true,
                "false" => false,
                _ => return Err(bad(lineno, "bool")),
            },
            utility: fields[5]
                .trim()
                .parse::<f64>()
                .map_err(|_| bad(lineno, "float"))?,
            retries: parse_u64(6)?,
            blockings: parse_u64(7)?,
            preemptions: parse_u64(8)?,
        });
    }
    Ok(records)
}

fn bad(lineno: usize, what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("csv line {}: malformed {what}", lineno + 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: usize) -> JobRecord {
        JobRecord {
            id: JobId::new(id),
            task: TaskId::new(id % 3),
            arrival: id as u64 * 10,
            resolved_at: id as u64 * 10 + 7,
            completed: id.is_multiple_of(2),
            utility: id as f64 * 1.5,
            retries: id as u64,
            blockings: 0,
            preemptions: 1,
        }
    }

    #[test]
    fn round_trip() {
        let records: Vec<JobRecord> = (0..20).map(rec).collect();
        let mut buffer = Vec::new();
        write_records(&mut buffer, &records).expect("write");
        let parsed = read_records(buffer.as_slice()).expect("read");
        assert_eq!(parsed, records);
    }

    #[test]
    fn empty_round_trip() {
        let mut buffer = Vec::new();
        write_records(&mut buffer, &[]).expect("write");
        assert_eq!(read_records(buffer.as_slice()).expect("read"), vec![]);
    }

    #[test]
    fn malformed_rows_rejected() {
        let bad_field = "job,task,arrival,resolved_at,completed,utility,retries,blockings,preemptions\n1,2,3,4,maybe,5,6,7,8\n";
        assert!(read_records(bad_field.as_bytes()).is_err());
        let short = "header\n1,2,3\n";
        assert!(read_records(short.as_bytes()).is_err());
    }
}
