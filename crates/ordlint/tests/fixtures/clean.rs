//! Clean fixture: tuned orderings that fire no rule.

fn publish(top: &Atomic) {
    let node = Box::new(Node::default());
    node.next.store(existing, Relaxed);
    let _ = top.compare_exchange(existing, node, Release, Relaxed, guard);
}

fn consume(top: &Atomic) {
    let node = top.load(Acquire, guard);
    let _ = node.deref();
}
