//! Elimination-exchanger exploration: the two seeded exchange bugs must be
//! caught with deterministically replayable schedules, and the faithful
//! exchanger must survive the same scenarios under every memory mode —
//! the elimination layer's safety argument ("the claim CAS transfers node
//! ownership; the cancel CAS proves no claim happened") is a weak-memory
//! claim as much as an interleaving one.

use std::sync::{Arc, Mutex};

use lfrt_interleave::models::ModelElimStack;
use lfrt_interleave::{explore, replay, Config, FailureKind, MemoryMode, Plan};

type Cell = Arc<Mutex<Vec<u64>>>;

fn cell() -> Cell {
    Arc::new(Mutex::new(Vec::new()))
}

fn conservation_check(pushed: Vec<u64>, popped: Vec<Cell>, remaining: Vec<u64>) {
    let mut seen: Vec<u64> = popped
        .iter()
        .flat_map(|c| c.lock().unwrap().clone())
        .chain(remaining)
        .collect();
    seen.sort_unstable();
    let mut expected = pushed;
    expected.sort_unstable();
    assert_eq!(seen, expected, "elements lost or duplicated");
}

/// The CHESS preemption bound for the cross-mode faithful runs (see
/// `tests/pool_model.rs` for why 3).
const BOUND: Option<usize> = Some(3);

fn config(name: &'static str, memory: MemoryMode) -> Config {
    Config {
        memory,
        preemption_bound: BOUND,
        ..Config::exhaustive(name)
    }
}

fn all_modes() -> [(&'static str, MemoryMode); 3] {
    [
        ("sc", MemoryMode::Sc),
        (
            "tso",
            MemoryMode::StoreBuffer {
                bound: MemoryMode::DEFAULT_BOUND,
            },
        ),
        (
            "relaxed",
            MemoryMode::Relaxed {
                bound: MemoryMode::DEFAULT_BOUND,
                window: MemoryMode::DEFAULT_WINDOW,
            },
        ),
    ]
}

/// Exchange-slot ABA. Scenario: t0 takes from the slot; t1 offers 1, then
/// offers 2, then falls back to plain pushes for whichever offers were
/// cancelled. The hazardous schedule: t1 installs node `n` with value 1;
/// t0 probes the slot (D1) and parks; t1 cancels, recycles `n` directly
/// (eliminated nodes owe no grace), and re-offers the *same node* with
/// value 2; t0's claim CAS (D2) now succeeds against the re-offer. The
/// pre-read twin returns the stale 1 — value 2 evaporates while t1
/// believes it was taken — where the faithful popper, reading strictly
/// after the claim, returns 2.
mod exchange_slot_aba {
    use super::*;

    fn scenario(preread: bool) -> Plan {
        let stack = Arc::new(if preread {
            ModelElimStack::preread_aba()
        } else {
            ModelElimStack::new()
        });
        let pop0 = cell();
        let s0 = Arc::clone(&stack);
        let r0 = Arc::clone(&pop0);
        let s1 = Arc::clone(&stack);
        Plan::new()
            .thread(move || {
                r0.lock().unwrap().extend(s0.take_pop());
            })
            .thread(move || {
                // Both offers run before the fallbacks so a cancelled
                // node is still in the cache when the second offer
                // allocates — the direct-recycle path under test.
                let ok1 = s1.offer_push(1);
                let ok2 = s1.offer_push(2);
                if !ok1 {
                    s1.push(1);
                }
                if !ok2 {
                    s1.push(2);
                }
            })
            .check(move || {
                conservation_check(vec![1, 2], vec![pop0.clone()], stack.drain_plain());
            })
    }

    #[test]
    fn preread_is_caught_and_replayable() {
        let report = explore(&Config::exhaustive("elim-preread-aba"), || scenario(true));
        let failure = report.assert_fails();
        assert_eq!(failure.kind, FailureKind::Panic);
        assert!(
            failure.message.contains("lost or duplicated"),
            "{failure:?}"
        );
        let schedule = failure.schedule.clone();
        let err = std::panic::catch_unwind(move || replay(&schedule, || scenario(true)))
            .expect_err("replay must reproduce the exchange-slot ABA");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lost or duplicated"), "{msg}");
    }

    #[test]
    fn claim_then_read_survives_every_memory_mode() {
        for (mode_name, memory) in all_modes() {
            explore(
                &config(
                    Box::leak(format!("elim-aba-{mode_name}").into_boxed_str()),
                    memory,
                ),
                || scenario(false),
            )
            .assert_ok();
        }
    }
}

/// Lost-elimination double-return. Scenario: t1 offers 1 and falls back to
/// a plain push if the offer reports cancelled; t0 takes from the slot.
/// The hazardous schedule: t1 installs, t0 claims (D2 wins, returns 1),
/// t1's blind-store twin overwrites the BUSY marker with EMPTY anyway and
/// reports the offer cancelled — so 1 is returned through the exchange
/// *and* pushed onto the stack. The faithful cancel CAS fails against
/// BUSY, proving the claim, and reports the push complete.
mod lost_elimination {
    use super::*;

    fn scenario(blind: bool) -> Plan {
        let stack = Arc::new(if blind {
            ModelElimStack::blind_cancel()
        } else {
            ModelElimStack::new()
        });
        let pop0 = cell();
        let s0 = Arc::clone(&stack);
        let r0 = Arc::clone(&pop0);
        let s1 = Arc::clone(&stack);
        Plan::new()
            .thread(move || {
                r0.lock().unwrap().extend(s0.take_pop());
            })
            .thread(move || {
                if !s1.offer_push(1) {
                    s1.push(1);
                }
            })
            .check(move || {
                conservation_check(vec![1], vec![pop0.clone()], stack.drain_plain());
            })
    }

    #[test]
    fn blind_cancel_is_caught_and_replayable() {
        let report = explore(&Config::exhaustive("elim-blind-cancel"), || scenario(true));
        let failure = report.assert_fails();
        assert_eq!(failure.kind, FailureKind::Panic);
        assert!(
            failure.message.contains("lost or duplicated"),
            "{failure:?}"
        );
        let schedule = failure.schedule.clone();
        let err = std::panic::catch_unwind(move || replay(&schedule, || scenario(true)))
            .expect_err("replay must reproduce the double-return");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lost or duplicated"), "{msg}");
    }

    #[test]
    fn cas_cancel_survives_every_memory_mode() {
        for (mode_name, memory) in all_modes() {
            explore(
                &config(
                    Box::leak(format!("elim-cancel-{mode_name}").into_boxed_str()),
                    memory,
                ),
                || scenario(false),
            )
            .assert_ok();
        }
    }
}

/// The composed fast path: exchanges racing ordinary stack traffic. Both
/// sides of an elimination bypass the head entirely, so the stack's own
/// LIFO protocol must stay sound around them under every memory mode.
mod exchange_with_stack_traffic {
    use super::*;

    fn scenario() -> Plan {
        let stack = Arc::new(ModelElimStack::new());
        stack.push(1);
        let (pop0, pop1) = (cell(), cell());
        let s0 = Arc::clone(&stack);
        let r0 = Arc::clone(&pop0);
        let s1 = Arc::clone(&stack);
        let r1 = Arc::clone(&pop1);
        Plan::new()
            .thread(move || {
                let mut out = Vec::new();
                out.extend(s0.take_pop());
                out.extend(s0.pop());
                r0.lock().unwrap().extend(out);
            })
            .thread(move || {
                if !s1.offer_push(2) {
                    s1.push(2);
                }
                r1.lock().unwrap().extend(s1.pop());
            })
            .check(move || {
                conservation_check(
                    vec![1, 2],
                    vec![pop0.clone(), pop1.clone()],
                    stack.drain_plain(),
                );
            })
    }

    #[test]
    fn mixed_traffic_survives_every_memory_mode() {
        for (mode_name, memory) in all_modes() {
            explore(
                &config(
                    Box::leak(format!("elim-mixed-{mode_name}").into_boxed_str()),
                    memory,
                ),
                scenario,
            )
            .assert_ok();
        }
    }
}
