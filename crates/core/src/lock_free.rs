use lfrt_sim::{Decision, SchedulerContext, UaScheduler};

use crate::construct::{build_schedule, sort_by_pud, RankedChain};
use crate::ops::OpsCounter;
use crate::pud::chain_pud;

/// Lock-free RUA: the paper's primary contribution (§5).
///
/// With lock-free object sharing, jobs never block, so dependency chains
/// collapse to the job itself. Of lock-based RUA's five steps, chain
/// computation and deadlock detection vanish, PUD computation drops to
/// `O(n)`, and schedule construction — one ECF insertion plus one
/// feasibility walk per job — drops to `O(n²)`, which dominates. The
/// scheduler also fires on fewer events: only arrivals and departures, never
/// lock/unlock requests.
///
/// The reported operation count grows as `O(n²)`, an asymptotic factor
/// `log n` below lock-based RUA — and with a much smaller constant, which is
/// what the paper's Figure 9 CML separation measures.
///
/// # Examples
///
/// ```
/// use lfrt_core::RuaLockFree;
/// use lfrt_sim::UaScheduler;
///
/// let rua = RuaLockFree::new();
/// assert_eq!(rua.name(), "rua-lock-free");
/// ```
#[derive(Debug, Clone, Default)]
pub struct RuaLockFree {
    _private: (),
}

impl RuaLockFree {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl UaScheduler for RuaLockFree {
    fn name(&self) -> &str {
        "rua-lock-free"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        let mut ops = OpsCounter::new();
        // Every chain is the job alone: dependencies cannot arise.
        let mut chains: Vec<RankedChain> = ctx
            .jobs
            .iter()
            .map(|view| {
                let chain = vec![view.id];
                let pud = chain_pud(ctx, &chain, &mut ops);
                RankedChain {
                    job: view.id,
                    chain,
                    pud,
                }
            })
            .collect();
        sort_by_pud(&mut chains, &mut ops);
        let schedule = build_schedule(ctx, &chains, &mut ops);
        Decision {
            order: schedule.jobs(),
            ops: ops.total(),
            aborts: Vec::new(),
        }
    }
}
