//! Model of the Michael–Scott queue, mirroring
//! `crates/lockfree/src/queue.rs`.

use crate::arena::{Arena, NIL};
use crate::atomic::Atomic;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};

/// A queue node. `value` is meaningless on the sentinel, exactly like the
/// real node's `data: UnsafeCell<Option<T>>` being `None` there.
pub struct QueueNode {
    /// The element (ignored on the sentinel).
    pub value: u64,
    /// Index of the successor node, or [`NIL`].
    pub next: Atomic<usize>,
}

/// Michael–Scott FIFO queue over arena indices, with the lagging-tail help
/// protocol of the real implementation.
pub struct ModelMsQueue {
    head: Atomic<usize>,
    tail: Atomic<usize>,
    arena: Arena<QueueNode>,
}

impl ModelMsQueue {
    /// An empty queue (head and tail on a fresh sentinel).
    pub fn new() -> Self {
        let arena = Arena::new();
        // Construction happens outside any model execution (the factory
        // runs on the controller), so this alloc is not a scheduled step —
        // matching the real constructor's unprotected sentinel store.
        let sentinel = arena.alloc(QueueNode {
            value: 0,
            next: Atomic::new(NIL),
        });
        Self {
            head: Atomic::new(sentinel),
            tail: Atomic::new(sentinel),
            arena,
        }
    }

    /// Mirrors `LockFreeQueue::enqueue`.
    pub fn enqueue(&self, value: u64) {
        // `Owned::new(..)` — node allocation (step).
        let idx = self.arena.alloc(QueueNode {
            value,
            next: Atomic::new(NIL),
        });
        loop {
            // E1: `self.tail.load(Acquire)`.
            let tail = self.tail.load_ord(Acquire);
            let tail_node = self.arena.get(tail);
            // E2: `tail_ref.next.load(Acquire)`.
            let next = tail_node.next.load_ord(Acquire);
            if next != NIL {
                // E3: tail lags — help: `self.tail.compare_exchange(tail,
                // next, Release, Relaxed)`, failure benign.
                let _ = self.tail.compare_exchange_ord(tail, next, Release, Relaxed);
                continue;
            }
            // E4: `tail_ref.next.compare_exchange(null, new, Release,
            // Relaxed)`.
            if tail_node
                .next
                .compare_exchange_ord(NIL, idx, Release, Relaxed)
                .is_ok()
            {
                // E5: swing the tail; failure means someone helped.
                let _ = self.tail.compare_exchange_ord(tail, idx, Release, Relaxed);
                return;
            }
        }
    }

    /// Mirrors `LockFreeQueue::dequeue`.
    pub fn dequeue(&self) -> Option<u64> {
        loop {
            // D1: `self.head.load(Acquire)`.
            let head = self.head.load_ord(Acquire);
            let head_node = self.arena.get(head);
            // D2: `head_ref.next.load(Acquire)`.
            let next = head_node.next.load_ord(Acquire);
            // `unsafe { next.as_ref() }?` — empty check.
            if next == NIL {
                return None;
            }
            // D3: `self.tail.load(Acquire)`.
            let tail = self.tail.load_ord(Acquire);
            if tail == head {
                // D4: tail lags behind a non-empty queue — help advance.
                let _ = self.tail.compare_exchange_ord(tail, next, Release, Relaxed);
            }
            // D5: `self.head.compare_exchange(head, next, Release, Relaxed)`.
            if self
                .head
                .compare_exchange_ord(head, next, Release, Relaxed)
                .is_ok()
            {
                // `(*next_ref.data.get()).take()` after winning the CAS:
                // exclusive by protocol, not a step.
                return Some(self.arena.get(next).value);
            }
        }
    }

    /// Mirrors `LockFreeQueue::enqueue_batch`: one guard spans the batch,
    /// each element runs the ordinary enqueue protocol. The pin itself adds
    /// no shared step, so the mirror is the element loop — batching changes
    /// amortization, not the protocol.
    pub fn enqueue_batch(&self, values: &[u64]) {
        for &value in values {
            self.enqueue(value);
        }
    }

    /// Mirrors `LockFreeQueue::dequeue_batch`: up to `n` ordinary dequeues
    /// under one guard, stopping early at empty.
    pub fn dequeue_batch(&self, n: usize) -> Vec<u64> {
        let mut out = Vec::new();
        for _ in 0..n {
            match self.dequeue() {
                Some(value) => out.push(value),
                None => break,
            }
        }
        out
    }

    /// Post-check helper: the elements still queued, head to tail, without
    /// scheduling (single-threaded use only).
    pub fn drain_plain(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cursor = self.arena.get(self.head.load_plain()).next.load_plain();
        while cursor != NIL {
            let node = self.arena.get(cursor);
            out.push(node.value);
            cursor = node.next.load_plain();
        }
        out
    }
}

impl Default for ModelMsQueue {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_single_threaded() {
        let q = ModelMsQueue::new();
        assert_eq!(q.dequeue(), None);
        q.enqueue(1);
        q.enqueue(2);
        q.enqueue(3);
        assert_eq!(q.drain_plain(), vec![1, 2, 3]);
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), Some(3));
        assert_eq!(q.dequeue(), None);
    }
}
