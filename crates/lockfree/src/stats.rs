use std::sync::atomic::{AtomicU64, Ordering};

/// Attempt/retry counters for a lock-free object.
///
/// A *retry* is a failed pass through an operation's CAS loop — the quantity
/// the paper bounds per job in Theorem 2. An *attempt* counts every pass, so
/// `attempts == successes + retries` and a contention-free run has
/// `retries == 0`.
///
/// Counters use relaxed atomics: they are monotone statistics, not
/// synchronization.
#[derive(Debug, Default)]
pub struct OpStats {
    attempts: AtomicU64,
    retries: AtomicU64,
}

impl OpStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one pass through an operation loop.
    #[inline]
    pub fn attempt(&self) {
        self.attempts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one failed pass (the operation will retry).
    #[inline]
    pub fn retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Total passes through operation loops so far.
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// Total failed passes (retries) so far.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Total successful operations so far.
    pub fn successes(&self) -> u64 {
        self.attempts().saturating_sub(self.retries())
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            attempts: self.attempts(),
            retries: self.retries(),
        }
    }

    /// Resets both counters to zero.
    pub fn reset(&self) {
        self.attempts.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`OpStats`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Total passes through operation loops.
    pub attempts: u64,
    /// Total failed passes.
    pub retries: u64,
}

impl StatsSnapshot {
    /// Successful operations in this snapshot.
    pub fn successes(&self) -> u64 {
        self.attempts.saturating_sub(self.retries)
    }

    /// Mean retries per successful operation, or zero if none succeeded.
    pub fn retries_per_op(&self) -> f64 {
        let ok = self.successes();
        if ok == 0 {
            0.0
        } else {
            self.retries as f64 / ok as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = OpStats::new();
        s.attempt();
        s.attempt();
        s.retry();
        assert_eq!(s.attempts(), 2);
        assert_eq!(s.retries(), 1);
        assert_eq!(s.successes(), 1);
    }

    #[test]
    fn snapshot_and_reset() {
        let s = OpStats::new();
        s.attempt();
        s.retry();
        let snap = s.snapshot();
        assert_eq!(
            snap,
            StatsSnapshot {
                attempts: 1,
                retries: 1
            }
        );
        assert_eq!(snap.successes(), 0);
        assert_eq!(snap.retries_per_op(), 0.0);
        s.reset();
        assert_eq!(s.attempts(), 0);
        assert_eq!(s.retries(), 0);
    }

    #[test]
    fn retries_per_op() {
        let snap = StatsSnapshot {
            attempts: 30,
            retries: 10,
        };
        assert!((snap.retries_per_op() - 0.5).abs() < 1e-12);
    }
}
