//! Human-readable and JSON rendering of an analysis.
//!
//! The JSON document (schema below) reuses `lfrt_bench::json`'s canonical
//! printer, so CI can archive `ordlint-report.json` as an artifact and diff
//! it across commits byte for byte.
//!
//! ```text
//! {
//!   "schema_version": 1,
//!   "root": "...",                // scan root as given
//!   "files_scanned": N,
//!   "sites": [ {file, line, function, receiver, kind, method,
//!               orderings: [...]} ],
//!   "publication_graph": [ {file, receiver,
//!                           writers: [{function, line, kind, ordering}],
//!                           readers: [...]} ],
//!   "findings": [ {rule, severity, file, line, function, receiver,
//!                  message, baselined, justification?} ],
//!   "stale_baseline": [ {rule, file, function, receiver} ],
//!   "summary": {sites, findings, baselined, unbaselined, stale}
//! }
//! ```

use std::fmt::Write as _;

use lfrt_bench::json::Json;

use crate::baseline::MatchResult;
use crate::graph::{Access, GraphEntry};
use crate::rules::Finding;
use crate::scan::Site;
use crate::Analysis;

fn finding_json(f: &Finding, baselined: bool, justification: Option<&str>) -> Json {
    let mut fields = vec![
        ("rule".into(), f.rule.into()),
        ("severity".into(), f.severity.into()),
        ("file".into(), f.file.as_str().into()),
        ("line".into(), f.line.into()),
        ("function".into(), f.function.as_str().into()),
        ("receiver".into(), f.receiver.as_str().into()),
        ("message".into(), f.message.as_str().into()),
        ("baselined".into(), baselined.into()),
    ];
    if let Some(j) = justification {
        fields.push(("justification".into(), j.into()));
    }
    Json::Obj(fields)
}

fn site_json(s: &Site, file: &str) -> Json {
    Json::Obj(vec![
        ("file".into(), file.into()),
        ("line".into(), s.line.into()),
        ("function".into(), s.function.as_str().into()),
        ("receiver".into(), s.receiver.as_str().into()),
        ("kind".into(), s.kind.name().into()),
        ("method".into(), s.method.as_str().into()),
        (
            "orderings".into(),
            Json::Arr(s.orderings.iter().map(|o| o.as_str().into()).collect()),
        ),
    ])
}

fn access_json(a: &Access) -> Json {
    Json::Obj(vec![
        ("function".into(), a.function.as_str().into()),
        ("line".into(), a.line.into()),
        ("kind".into(), a.kind.into()),
        ("ordering".into(), a.ordering.as_str().into()),
    ])
}

fn graph_json(g: &GraphEntry) -> Json {
    Json::Obj(vec![
        ("file".into(), g.file.as_str().into()),
        ("receiver".into(), g.receiver.as_str().into()),
        (
            "writers".into(),
            Json::Arr(g.writers.iter().map(access_json).collect()),
        ),
        (
            "readers".into(),
            Json::Arr(g.readers.iter().map(access_json).collect()),
        ),
    ])
}

/// The full JSON document for an analysis.
pub fn to_json(analysis: &Analysis) -> Json {
    let m = &analysis.matched;
    let mut findings: Vec<Json> = m
        .unbaselined
        .iter()
        .map(|f| finding_json(f, false, None))
        .collect();
    findings.extend(
        m.baselined
            .iter()
            .map(|(f, j)| finding_json(f, true, Some(j))),
    );
    Json::Obj(vec![
        ("schema_version".into(), 1u64.into()),
        ("root".into(), analysis.root.as_str().into()),
        ("files_scanned".into(), analysis.files.len().into()),
        (
            "sites".into(),
            Json::Arr(
                analysis
                    .sites
                    .iter()
                    .map(|(file, s)| site_json(s, file))
                    .collect(),
            ),
        ),
        (
            "publication_graph".into(),
            Json::Arr(analysis.graph.iter().map(graph_json).collect()),
        ),
        ("findings".into(), Json::Arr(findings)),
        (
            "stale_baseline".into(),
            Json::Arr(
                m.stale
                    .iter()
                    .map(|e| {
                        Json::Obj(vec![
                            ("rule".into(), e.rule.as_str().into()),
                            ("file".into(), e.file.as_str().into()),
                            ("function".into(), e.function.as_str().into()),
                            ("receiver".into(), e.receiver.as_str().into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("summary".into(), summary_json(analysis)),
    ])
}

fn summary_json(analysis: &Analysis) -> Json {
    let m = &analysis.matched;
    Json::Obj(vec![
        ("sites".into(), analysis.sites.len().into()),
        (
            "findings".into(),
            (m.baselined.len() + m.unbaselined.len()).into(),
        ),
        ("baselined".into(), m.baselined.len().into()),
        ("unbaselined".into(), m.unbaselined.len().into()),
        ("stale".into(), m.stale.len().into()),
    ])
}

/// The human-readable report. `list_sites` additionally dumps the full
/// site inventory and publication graph.
pub fn render_text(analysis: &Analysis, list_sites: bool) -> String {
    let mut out = String::new();
    let m = &analysis.matched;
    let _ = writeln!(
        out,
        "ordlint: {} files, {} atomic sites with literal orderings",
        analysis.files.len(),
        analysis.sites.len()
    );
    if list_sites {
        render_inventory(&mut out, analysis);
    }
    for f in &m.unbaselined {
        let _ = writeln!(
            out,
            "{}:{}: {} [{}] in `{}` on `{}`: {}",
            f.file, f.line, f.rule, f.severity, f.function, f.receiver, f.message
        );
    }
    for (f, justification) in &m.baselined {
        let _ = writeln!(
            out,
            "{}:{}: {} baselined: {}",
            f.file, f.line, f.rule, justification
        );
    }
    for e in &m.stale {
        let _ = writeln!(
            out,
            "ordlint.toml:{}: stale [[allow]] entry ({} {} `{}` `{}`) matches no \
             finding — remove it",
            e.line, e.rule, e.file, e.function, e.receiver
        );
    }
    let _ = writeln!(
        out,
        "{} finding(s): {} baselined, {} unbaselined; {} stale baseline entr{}",
        m.baselined.len() + m.unbaselined.len(),
        m.baselined.len(),
        m.unbaselined.len(),
        m.stale.len(),
        if m.stale.len() == 1 { "y" } else { "ies" },
    );
    out
}

fn render_inventory(out: &mut String, analysis: &Analysis) {
    for (file, s) in &analysis.sites {
        let _ = writeln!(
            out,
            "  site {}:{} {} `{}`.{}({})",
            file,
            s.line,
            s.kind.name(),
            s.receiver,
            s.method,
            s.orderings.join(", ")
        );
    }
    for g in &analysis.graph {
        if g.writers.is_empty() || g.readers.is_empty() {
            continue;
        }
        let _ = writeln!(out, "  publish {} `{}`:", g.file, g.receiver);
        for w in &g.writers {
            let _ = writeln!(
                out,
                "    writer {}:{} {} {}",
                w.function, w.line, w.kind, w.ordering
            );
        }
        for r in &g.readers {
            let _ = writeln!(
                out,
                "    reader {}:{} {} {}",
                r.function, r.line, r.kind, r.ordering
            );
        }
    }
}

/// Exit status for the run: success only when nothing is unbaselined and
/// nothing is stale.
pub fn is_clean(m: &MatchResult) -> bool {
    m.unbaselined.is_empty() && m.stale.is_empty()
}
