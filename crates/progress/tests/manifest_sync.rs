//! Satellite contract: `progress.toml` and the public API can only move
//! together. This test enumerates the public fns of `crates/lockfree`
//! and the vendored epoch API straight from source and asserts the
//! manifest declares exactly that set — so adding a pub fn without
//! classifying its progress guarantee (or orphaning a declaration) fails
//! `cargo test` as well as the `progress` CI job.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use lfrt_progress::{enumerate_public_ops, manifest};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

fn manifest_ops() -> BTreeSet<String> {
    let text = std::fs::read_to_string(repo_root().join("progress.toml")).expect("progress.toml");
    let m = manifest::parse(&text).expect("progress.toml parses");
    m.ops.iter().map(|o| o.name.clone()).collect()
}

#[test]
fn manifest_covers_the_public_op_set_exactly() {
    let declared = manifest_ops();
    let public: BTreeSet<String> = enumerate_public_ops(&repo_root())
        .expect("source enumeration")
        .into_iter()
        .collect();
    let undeclared: Vec<&String> = public.difference(&declared).collect();
    let orphaned: Vec<&String> = declared.difference(&public).collect();
    assert!(
        undeclared.is_empty(),
        "public ops missing a progress.toml [[op]] declaration: {undeclared:?}"
    );
    assert!(
        orphaned.is_empty(),
        "progress.toml declares ops that no longer exist: {orphaned:?}"
    );
}

#[test]
fn the_op_inventory_does_not_shrink_silently() {
    // 98 lockfree ops + 21 vendored-epoch ops after the contention layer
    // (elimination exchanger + sharded MPMC) landed. Growing is fine (the
    // sync test above forces a classification); shrinking means public API
    // was deleted — update deliberately.
    assert!(
        manifest_ops().len() >= 119,
        "op inventory shrank below the seeded 119"
    );
}
