use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{ArrivalTrace, SlidingWindowCounter, Uam};

/// Produces arrival traces over a finite horizon.
///
/// Implementations must produce traces conformant to the model they were
/// configured with; the paper's analytic bounds only apply to conformant
/// traces. Traces can always be re-checked with
/// [`ArrivalTrace::conforms_to`].
pub trait ArrivalGenerator {
    /// Generates all arrivals in `[0, horizon)`.
    fn generate(&mut self, horizon: u64) -> ArrivalTrace;
}

/// Strictly periodic arrivals — the UAM special case `⟨1, 1, W⟩`.
///
/// # Examples
///
/// ```
/// use lfrt_uam::{ArrivalGenerator, PeriodicArrivals};
///
/// let trace = PeriodicArrivals::new(100).generate(350);
/// assert_eq!(trace.times(), &[0, 100, 200, 300]);
/// ```
#[derive(Debug, Clone)]
pub struct PeriodicArrivals {
    period: u64,
    phase: u64,
}

impl PeriodicArrivals {
    /// Arrivals at `0, period, 2·period, …`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: u64) -> Self {
        Self::with_phase(period, 0)
    }

    /// Arrivals at `phase, phase + period, …`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn with_phase(period: u64, phase: u64) -> Self {
        assert!(period > 0, "period must be positive");
        Self { period, phase }
    }
}

impl ArrivalGenerator for PeriodicArrivals {
    fn generate(&mut self, horizon: u64) -> ArrivalTrace {
        (self.phase..horizon)
            .step_by(self.period as usize)
            .collect()
    }
}

/// The maximal-pressure pattern: a simultaneous burst of `a` arrivals at the
/// start of every window.
///
/// This realises the per-window maximum of the UAM and is the Case 1
/// worst-case in the proof of Theorem 2 (all instances of a window released
/// as early as possible).
#[derive(Debug, Clone)]
pub struct FrontLoadedArrivals {
    uam: Uam,
}

impl FrontLoadedArrivals {
    /// Creates the generator for the given model.
    pub fn new(uam: Uam) -> Self {
        Self { uam }
    }
}

impl ArrivalGenerator for FrontLoadedArrivals {
    fn generate(&mut self, horizon: u64) -> ArrivalTrace {
        let w = self.uam.window();
        let a = self.uam.max_arrivals() as usize;
        let mut times = Vec::new();
        let mut t = 0;
        while t < horizon {
            times.extend(std::iter::repeat_n(t, a));
            t += w;
        }
        ArrivalTrace::new(times)
    }
}

/// The adversarial back-to-back burst: `a` arrivals at the *end* of each even
/// window immediately followed by `a` arrivals at the *start* of the next —
/// `2a` arrivals packed within two ticks, repeating every `2W`.
///
/// This is the interference pattern assumed by the Theorem 2 proof (all of
/// window `W_j^1` released right after `t_0`, all of `W_j^3` released right
/// before `t_0 + C_i`), and is the trace on which measured retry counts
/// approach the analytic bound most closely.
#[derive(Debug, Clone)]
pub struct BackToBackBurst {
    uam: Uam,
}

impl BackToBackBurst {
    /// Creates the generator for the given model.
    pub fn new(uam: Uam) -> Self {
        Self { uam }
    }
}

impl ArrivalGenerator for BackToBackBurst {
    fn generate(&mut self, horizon: u64) -> ArrivalTrace {
        let w = self.uam.window();
        let a = self.uam.max_arrivals() as usize;
        let mut times = Vec::new();
        // Pattern per 2W period: burst at (k·2W + W − 1), the last tick of an
        // even window, and at (k·2W + W), the first tick of the next. Each
        // consecutive window holds exactly one burst of `a`, so the trace is
        // UAM-conformant, yet 2a arrivals land within one tick of each other.
        // Pairs must be spaced 2W apart: chaining a pair at every boundary
        // would put two bursts inside one window.
        let mut t = w.saturating_sub(1);
        while t < horizon {
            times.extend(std::iter::repeat_n(t, a));
            if t + 1 < horizon {
                times.extend(std::iter::repeat_n(t + 1, a));
            }
            t += 2 * w;
        }
        ArrivalTrace::new(times)
    }
}

/// Periodic arrivals with bounded release jitter: job `k` arrives at
/// `k·period + jitter_k` with `jitter_k` drawn uniformly from
/// `[0, max_jitter]`.
///
/// This is the classic "periodic with release jitter" model sitting between
/// [`PeriodicArrivals`] and the full UAM on the paper's Figure 2 regularity
/// spectrum. The trace conforms to `⟨1, 1, period⟩` under the
/// consecutive-window check whenever `max_jitter < period`.
#[derive(Debug)]
pub struct JitteredPeriodic {
    period: u64,
    max_jitter: u64,
    rng: StdRng,
}

impl JitteredPeriodic {
    /// Creates a seeded generator.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `max_jitter >= period`.
    pub fn new(period: u64, max_jitter: u64, seed: u64) -> Self {
        assert!(period > 0, "period must be positive");
        assert!(max_jitter < period, "jitter must stay inside the period");
        Self {
            period,
            max_jitter,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl ArrivalGenerator for JitteredPeriodic {
    fn generate(&mut self, horizon: u64) -> ArrivalTrace {
        let mut times = Vec::new();
        let mut base = 0u64;
        while base < horizon {
            let jitter = if self.max_jitter == 0 {
                0
            } else {
                self.rng.random_range(0..=self.max_jitter)
            };
            let t = base + jitter;
            if t < horizon {
                times.push(t);
            }
            base += self.period;
        }
        ArrivalTrace::new(times)
    }
}

/// Random arrivals shaped to the UAM via an online sliding-window admission
/// filter.
///
/// Candidate arrivals are drawn from a Poisson-like process with mean rate
/// `a / W`; any candidate that would exceed the per-window maximum is
/// dropped. The result is UAM-conformant by construction while remaining
/// irregular — the "arbitrary arrivals" of a dynamic system.
#[derive(Debug)]
pub struct RandomUamArrivals {
    uam: Uam,
    rng: StdRng,
    /// Mean candidate rate as a multiple of the UAM max rate (default 1.0).
    intensity: f64,
}

impl RandomUamArrivals {
    /// Creates a seeded generator with candidate rate equal to the UAM's
    /// maximum long-run rate.
    pub fn new(uam: Uam, seed: u64) -> Self {
        Self {
            uam,
            rng: StdRng::seed_from_u64(seed),
            intensity: 1.0,
        }
    }

    /// Scales the candidate arrival rate: values above 1.0 push the process
    /// against the UAM ceiling (more bursty), below 1.0 leave slack.
    #[must_use]
    pub fn with_intensity(mut self, intensity: f64) -> Self {
        assert!(
            intensity > 0.0 && intensity.is_finite(),
            "intensity must be positive"
        );
        self.intensity = intensity;
        self
    }
}

impl ArrivalGenerator for RandomUamArrivals {
    fn generate(&mut self, horizon: u64) -> ArrivalTrace {
        let rate = self.uam.max_rate() * self.intensity; // candidates per tick
        let mut counter = SlidingWindowCounter::new(self.uam.window());
        let mut times = Vec::new();
        let mut t = 0.0f64;
        loop {
            // Exponential inter-arrival with mean 1/rate.
            let u: f64 = self.rng.random::<f64>().max(f64::MIN_POSITIVE);
            t += -u.ln() / rate;
            if t >= horizon as f64 {
                break;
            }
            let tick = t as u64;
            if counter.admits(tick, self.uam.max_arrivals()) {
                counter.record(tick);
                times.push(tick);
            }
        }
        ArrivalTrace::new(times)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_conforms_to_its_uam() {
        let trace = PeriodicArrivals::new(100).generate(10_000);
        assert!(trace.conforms_to(&Uam::periodic(100)).is_ok());
        assert_eq!(trace.len(), 100);
    }

    #[test]
    fn periodic_with_phase() {
        let trace = PeriodicArrivals::with_phase(100, 30).generate(250);
        assert_eq!(trace.times(), &[30, 130, 230]);
    }

    #[test]
    fn front_loaded_conforms_and_is_maximal() {
        let uam = Uam::new(1, 4, 100).unwrap();
        let trace = FrontLoadedArrivals::new(uam).generate(1_000);
        assert!(trace.conforms_to(&uam).is_ok());
        assert_eq!(trace.len(), 40); // 10 windows × 4 arrivals
        assert_eq!(trace.count_in(0, 1), 4);
    }

    #[test]
    fn back_to_back_burst_conforms() {
        let uam = Uam::new(1, 3, 100).unwrap();
        let trace = BackToBackBurst::new(uam).generate(10_000);
        assert!(trace.conforms_to(&uam).is_ok());
        // 2a arrivals within 2 ticks of each other exist.
        assert_eq!(trace.count_in(99, 101), 6);
    }

    #[test]
    fn jittered_periodic_conforms_to_its_uam() {
        for seed in 0..10 {
            let trace = JitteredPeriodic::new(1_000, 400, seed).generate(50_000);
            assert!(
                trace.conforms_to(&Uam::periodic(1_000)).is_ok(),
                "seed {seed}"
            );
            assert_eq!(trace.len(), 50);
        }
    }

    #[test]
    fn jittered_periodic_zero_jitter_is_periodic() {
        let jittered = JitteredPeriodic::new(500, 0, 1).generate(5_000);
        let periodic = PeriodicArrivals::new(500).generate(5_000);
        assert_eq!(jittered, periodic);
    }

    #[test]
    #[should_panic(expected = "inside the period")]
    fn jitter_must_stay_inside_period() {
        let _ = JitteredPeriodic::new(100, 100, 0);
    }

    #[test]
    fn random_uam_conforms_for_many_seeds() {
        let uam = Uam::new(1, 3, 500).unwrap();
        for seed in 0..20 {
            let trace = RandomUamArrivals::new(uam, seed)
                .with_intensity(3.0)
                .generate(50_000);
            assert!(trace.conforms_to(&uam).is_ok(), "seed {seed} violated UAM");
            assert!(!trace.is_empty(), "seed {seed} produced no arrivals");
        }
    }

    #[test]
    fn random_uam_is_deterministic_per_seed() {
        let uam = Uam::new(1, 2, 100).unwrap();
        let a = RandomUamArrivals::new(uam, 7).generate(10_000);
        let b = RandomUamArrivals::new(uam, 7).generate(10_000);
        assert_eq!(a, b);
        let c = RandomUamArrivals::new(uam, 8).generate(10_000);
        assert_ne!(a, c);
    }
}
